"""How robust are the paper's conclusions to the workload?

The reproduction's numbers come from one calibrated workload; a careful
reader asks how they move when the workload's character changes.  This
example sweeps three generator knobs — traversal predictability
(``jump_probability``), popularity skew (``popularity_alpha``) and page
richness (``mean_embedded``) — and reports the speculation trade-off at
each setting.

Run:  python examples/sensitivity_analysis.py
"""

from repro.api import Session
from repro.core import format_table
from repro.speculation import ThresholdPolicy
from repro.workload import GeneratorConfig

BASE = GeneratorConfig(
    seed=3, n_pages=120, n_clients=120, n_sessions=1200, duration_days=20,
    mean_links=3.0,
)
POLICY = ThresholdPolicy(threshold=0.25)

SWEEPS = {
    "jump_probability": [0.0, 0.3, 0.7],
    "popularity_alpha": [0.6, 1.2, 1.8],
    "mean_embedded": [0.0, 0.5, 2.0],
}


def main() -> None:
    session = Session(workload=BASE)
    for parameter, values in SWEEPS.items():
        points = session.sensitivity(parameter, values, policy=POLICY).detail
        rows = [
            [
                f"{point.value:g}",
                f"{point.n_requests:,}",
                f"{point.ratios.traffic_increase:+.1%}",
                f"{point.ratios.server_load_reduction:.1%}",
                f"{point.ratios.service_time_reduction:.1%}",
            ]
            for point in points
        ]
        print(
            format_table(
                [parameter, "requests", "traffic", "load red.", "time red."],
                rows,
                title=f"\nsensitivity to {parameter} (T_p = 0.25)",
            )
        )
    print(
        "\nreading: gains track how predictable the workload is — more "
        "random jumps erode them,\nstronger popularity skew and richer "
        "pages (more embedded objects) amplify them."
    )


if __name__ == "__main__":
    main()
