"""Chaos drill: the live runtime under a scripted fault plan.

``examples/live_loadtest.py`` shows the happy path; this script breaks
it on purpose.  :meth:`repro.api.Session.chaos` first measures a
fault-free baseline/speculative pair, then replays the *same* pair under one
scripted fault timeline — here a proxy crash (its disseminated
holdings are lost until the daemon re-pushes them), a global 2 % frame
drop, and a brief origin brownout — and checks the paper's four ratios
still match the fault-free run.

That is the resilience claim in one number: retries with seeded
backoff, per-upstream circuit breakers, stale service from holdings,
and anti-entropy re-push change *when* things happen, not *what* the
protocols deliver.  Everything is seeded (the injector even rolls its
drops on a separate RNG stream), so every run prints the same numbers.

Run:  python examples/chaos_drill.py
"""

from repro.api import Session
from repro.runtime import ChaosSettings, LiveSettings


def main() -> None:
    settings = ChaosSettings(
        live=LiveSettings(seed=0, request_timeout=2.0, retries=3),
        crash_proxy=0,       # first proxy dies at 20% of the run...
        crash_at=0.2,
        restart_at=0.5,      # ...and comes back empty-handed at 50%
        drop_rate=0.02,      # 2% of frames vanish for the whole run
        latency_extra=0.05,  # +50 ms one-way to the origin...
        latency_target="origin",
        latency_from=0.6,    # ...for the 60-80% window (a brownout)
        latency_until=0.8,
    )
    report = Session(seed=0, chaos=settings).chaos().detail

    print("fault timeline (virtual seconds):")
    for time, label in report.fault_events:
        print(f"  t={time:8.3f}s  {label[len('fault:'):]}")

    print("ratios, faulted run vs fault-free run:")
    print(f"  clean  : {report.clean.ratios.format()}")
    print(f"  faulted: {report.faulted.ratios.format()}")
    print(f"  divergence: {report.max_ratio_divergence():.2%} (max of 4)")
    report.require_resilience(0.05)  # raises if the faults changed the story

    counters = report.faulted.speculative["counters"]
    crashed = sorted(
        name.split(".")[1]
        for name in counters
        if name.startswith("proxy.") and name.endswith(".crashes")
    )[0]
    print("what the resilience machinery did:")
    print(f"  frames dropped   : {counters['network.frames_dropped']:,.0f}")
    print(f"  client retries   : {counters['retries']:,.0f}")
    print(
        "  duplicate serves : "
        f"{counters.get('origin.duplicate_requests', 0):,.0f} at the origin"
    )
    print(
        f"  crash recovery   : {crashed} lost "
        f"{counters[f'proxy.{crashed}.holdings_lost']:,.0f} holdings; "
        f"daemon re-pushed {counters.get('daemon.repushes', 0):,.0f} time(s)"
    )


if __name__ == "__main__":
    main()
