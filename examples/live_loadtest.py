"""Live loadtest: both protocols running as an online system.

The batch simulators replay a trace against the cost model; the
``repro.runtime`` package runs the same protocols *live* — an asyncio
origin server, one proxy per region of the clientele tree, and a load
generator driving real request/response traffic over a deterministic
in-memory network with a virtual clock.  Ten simulated days replay in
about a second, and because the network is seeded and the clock is
virtual, every run of this script prints exactly the same numbers.

The run self-verifies: the live-measured ratios are compared against a
batch replay of the same serving window through
``repro.core.combined`` and must agree within 5 %.

The entry point is :class:`repro.api.Session` — the same front door the
CLI and the other examples use for every kind of run.

Run:  python examples/live_loadtest.py
"""

from repro.api import Session
from repro.runtime import LiveSettings


def main() -> None:
    settings = LiveSettings(
        seed=0,
        budget_bytes=300_000.0,  # proxy storage for disseminated documents
        concurrency=32,          # admission control: requests in flight
    )
    report = Session(seed=0, settings=settings).loadtest(verify_batch=True).detail

    print("live run (speculation + dissemination vs demand-only baseline)")
    print(f"  ratios     : {report.ratios.format()}")
    assert report.batch_ratios is not None
    print(f"  batch check: {report.batch_ratios.format()}")
    print(f"  divergence : {report.max_divergence():.2%}")
    report.require_convergence(0.05)  # raises if live drifts off batch

    counters = report.speculative["counters"]
    latency = report.speculative["histograms"]["request_latency"]
    print("speculative run, client's eye view:")
    print(f"  accesses        : {counters['accesses']:,}")
    print(f"  cache hits      : {counters['cache_hits']:,}")
    print(f"  served by proxy : {counters['proxy_requests']:,}")
    print(f"  served by origin: {counters['origin_requests']:,}")
    print(
        "  request latency : "
        f"p50 {latency['p50'] * 1000:.2f} ms, "
        f"p99 {latency['p99'] * 1000:.2f} ms (virtual time)"
    )
    print(f"  disseminated    : {report.disseminated_documents:,} documents")


if __name__ == "__main__":
    main()
