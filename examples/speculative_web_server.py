"""A speculative web server in operation.

Shows the :class:`repro.core.SpeculativeServer` facade the way a
deployment would drive it:

* train from the access log (with aging, so stale link structure fades),
* answer requests — each response bundles the demand document, the
  speculative push set, and a prefetch hint list,
* serve a cooperative client that piggybacks its cache digest, and
* compare the hint lists before and after the site's link structure
  changes.

Run:  python examples/speculative_web_server.py
"""

from repro.config import BaselineConfig
from repro.core import SpeculativeServer, format_table
from repro.trace import Trace
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


def main() -> None:
    generator = SyntheticTraceGenerator(
        GeneratorConfig(
            seed=7, n_pages=120, n_clients=150, n_sessions=1200, duration_days=30
        )
    )
    log = generator.generate()
    catalog = log.documents
    config = BaselineConfig(threshold=0.3)

    server = SpeculativeServer(catalog, config, decay_per_day=0.9)
    server.fit(log)
    print(f"trained on {len(log):,} logged accesses, {len(catalog):,} documents\n")

    # Pick a popular page to inspect.
    popular_page = generator.site.pages[0].doc_id
    response = server.respond(popular_page)

    print(f"GET {popular_page}")
    print(f"  speculatively pushed: {list(response.speculated) or '(nothing)'}")
    rows = [
        [hint.doc_id, f"{hint.probability:.2f}", catalog[hint.doc_id].size]
        for hint in response.hints[:8]
        if hint.doc_id in catalog
    ]
    print(format_table(["hinted document", "p*", "bytes"], rows, title="\nprefetch hints"))

    # A cooperative client that already caches some of the push set.
    digest = frozenset(response.speculated[:1])
    cooperative = server.respond(popular_page, cache_digest=digest)
    print(
        f"\ncooperative client (caches {len(digest)} of them) now receives: "
        f"{list(cooperative.speculated) or '(nothing new)'}"
    )

    # Site behaviour changes: keep observing and the model follows.
    followup = generator.generate()  # fresh traffic, same site
    server.observe(
        Trace(list(followup), catalog.values(), sort=True)
    )
    refreshed = server.respond(popular_page)
    print(
        f"\nafter observing {len(followup):,} more accesses the push set is "
        f"{list(refreshed.speculated) or '(nothing)'}"
    )


if __name__ == "__main__":
    main()
