"""Capacity planning for a cluster of servers behind one proxy.

The section-2 scenario: a service proxy fronts several home servers of
very different popularity and skew.  This example

* builds four synthetic servers (a hot multimedia site, two mid-sized
  department servers, one cold archive),
* estimates each server's (R, λ) from its logs,
* divides several proxy storage budgets optimally (eqs. 4-5) and shows
  who gets what,
* checks the closed-form sizing rule of eq. 10 ("how much storage for a
  90% bandwidth reduction?") against the general allocator.

Run:  python examples/capacity_planning.py
"""

from repro.core import DisseminationPlanner, format_table
from repro.dissemination import symmetric_storage_for_reduction
from repro.popularity.expmodel import PAPER_LAMBDA
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


SERVER_SPECS = {
    # name: (seed, pages, sessions, popularity skew)
    "media": (1, 150, 4000, 1.6),
    "cs-dept": (2, 200, 1500, 1.1),
    "physics": (3, 150, 1200, 1.1),
    "archive": (4, 300, 300, 0.7),
}


def build_cluster() -> DisseminationPlanner:
    planner = DisseminationPlanner()
    for name, (seed, pages, sessions, alpha) in SERVER_SPECS.items():
        generator = SyntheticTraceGenerator(
            GeneratorConfig(
                seed=seed,
                n_pages=pages,
                n_clients=200,
                n_sessions=sessions,
                duration_days=30,
                popularity_alpha=alpha,
            )
        )
        planner.add_server(name, generator.generate())
    return planner


def main() -> None:
    planner = build_cluster()

    rows = []
    for name in planner.servers:
        model = planner.server_model(name)
        rows.append(
            [name, f"{model.rate / 1e6:.1f} MB/day", f"{model.lam:.2e} /byte"]
        )
    print(format_table(["server", "remote rate R", "lambda"], rows,
                       title="estimated server parameters"))

    for budget_mb in (2, 8, 32):
        plan = planner.plan(budget_mb * 1e6)
        rows = [
            [
                name,
                f"{plan.allocations[name] / 1e6:.2f} MB",
                len(plan.documents[name]),
            ]
            for name in planner.servers
        ]
        print()
        print(
            format_table(
                ["server", "granted storage", "documents pushed"],
                rows,
                title=(
                    f"budget {budget_mb} MB -> intercepts "
                    f"{plan.expected_alpha:.1%} of remote requests "
                    f"(empirical {plan.empirical_alpha:.1%})"
                ),
            )
        )

    # Equation 10 sanity check with the paper's lambda.
    print("\nclosed-form sizing (eq. 10, paper lambda):")
    for n_servers, reduction in ((10, 0.90), (100, 0.96)):
        budget = symmetric_storage_for_reduction(n_servers, PAPER_LAMBDA, reduction)
        print(
            f"  shield {n_servers:>3} symmetric servers by {reduction:.0%}: "
            f"{budget / 1e6:.0f} MB of proxy storage"
        )


if __name__ == "__main__":
    main()
