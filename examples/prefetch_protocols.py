"""Comparing the four delivery protocols on one workload.

Section 3.4 of the paper sketches a design space; this example runs all
four corners on the same trace and prints the trade-offs side by side:

* **baseline**        — plain request/response with client caching,
* **speculation**     — server pushes likely documents (T_p threshold),
* **server-assisted** — server hints, client prefetches (each prefetch
  is its own request),
* **hybrid**          — push near-certain embeddings, hint the rest,
* **user profiles**   — pure client-side prefetching from each user's
  own history (the paper's reference [5]).

Run:  python examples/prefetch_protocols.py
"""

from repro.config import BASELINE
from repro.core import Experiment, format_table
from repro.speculation import (
    ClientPrefetcher,
    HybridProtocol,
    ThresholdPolicy,
    UserProfilePrefetcher,
    compare,
)
from repro.workload import GeneratorConfig, SyntheticTraceGenerator

LEVEL = 0.25


def main() -> None:
    generator = SyntheticTraceGenerator(
        GeneratorConfig(
            seed=5,
            n_pages=150,
            n_clients=80,
            n_sessions=1600,
            duration_days=40,
            mean_links=3.0,
        )
    )
    trace = generator.generate()
    experiment = Experiment(trace, BASELINE, train_days=20)
    print(f"workload: {trace}; replaying {len(experiment.test):,} accesses\n")

    runs = {}
    runs["speculation"] = experiment.evaluate(ThresholdPolicy(threshold=LEVEL))
    runs["server-assisted prefetch"] = experiment.evaluate(
        None, prefetcher=ClientPrefetcher(threshold=LEVEL)
    )
    hybrid = HybridProtocol.with_thresholds(prefetch_threshold=LEVEL)
    runs["hybrid"] = experiment.evaluate(
        hybrid.policy, prefetcher=hybrid.prefetcher
    )

    profile_prefetcher = UserProfilePrefetcher(threshold=0.4, min_support=2)
    for request in experiment.train:
        profile_prefetcher.observe(
            request.client, request.doc_id, request.timestamp
        )
    runs["user profiles"] = experiment.evaluate(
        None, prefetcher=profile_prefetcher
    )

    rows = []
    for name, (ratios, run) in runs.items():
        rows.append(
            [
                name,
                f"{ratios.traffic_increase:+.1%}",
                f"{ratios.server_load_reduction:+.1%}",
                f"{ratios.service_time_reduction:.1%}",
                f"{ratios.miss_rate_reduction:.1%}",
                run.prefetch_requests,
            ]
        )
    print(
        format_table(
            ["protocol", "traffic", "load red.", "time red.", "miss red.", "prefetches"],
            rows,
            title="protocol comparison (vs the no-speculation baseline)",
        )
    )
    print(
        "\nreading: speculation piggybacks pushes (no request cost);"
        "\nprefetching pays per document but lets the client choose;"
        "\nthe hybrid pushes only the certain part; user profiles only"
        "\nhelp where the same user re-treads their own paths."
    )


if __name__ == "__main__":
    main()
