"""Quickstart: both protocols on a synthetic trace in ~30 lines each.

Generates a calibrated synthetic server trace, then:

1. runs the speculative-service experiment (estimate P/P* on the first
   20 days, replay the rest with the baseline threshold policy), and
2. plans popularity-based dissemination for a proxy fronting the server.

Run:  python examples/quickstart.py
"""

from repro.config import BASELINE
from repro.core import DisseminationPlanner, Experiment, format_table
from repro.speculation import ThresholdPolicy
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


def main() -> None:
    # --- a synthetic three-month server trace --------------------------------
    generator = SyntheticTraceGenerator(
        GeneratorConfig(
            seed=42, n_pages=200, n_clients=300, n_sessions=3000, duration_days=45
        )
    )
    trace = generator.generate()
    print(f"workload: {trace}\n")

    # --- protocol 1: speculative service --------------------------------------
    experiment = Experiment(trace, BASELINE, train_days=20)
    rows = []
    for threshold in (0.9, 0.5, 0.25, 0.1):
        ratios, __ = experiment.evaluate(ThresholdPolicy(threshold=threshold))
        rows.append(
            [
                f"{threshold:.2f}",
                f"{ratios.traffic_increase:+.1%}",
                f"{ratios.server_load_reduction:.1%}",
                f"{ratios.service_time_reduction:.1%}",
                f"{ratios.miss_rate_reduction:.1%}",
            ]
        )
    print(
        format_table(
            ["T_p", "extra traffic", "load saved", "time saved", "misses saved"],
            rows,
            title="speculative service (vs. no-speculation baseline)",
        )
    )

    # --- protocol 2: data dissemination ---------------------------------------
    planner = DisseminationPlanner()
    planner.add_server("www", trace)
    model = planner.server_model("www")
    print(
        f"\ndissemination model: R = {model.rate / 1e6:.1f} MB/day, "
        f"lambda = {model.lam:.3g} /byte"
    )
    rows = []
    for budget_mb in (1, 4, 16, 64):
        plan = planner.plan(budget_mb * 1e6)
        rows.append(
            [
                f"{budget_mb} MB",
                f"{plan.expected_alpha:.1%}",
                f"{plan.empirical_alpha:.1%}",
                len(plan.documents["www"]),
            ]
        )
    print(
        format_table(
            ["proxy storage", "alpha (model)", "alpha (empirical)", "documents"],
            rows,
            title="dissemination plan for one proxy",
        )
    )


if __name__ == "__main__":
    main()
