"""Operating a speculative server under real-world constraints.

The paper shows what speculation *can* buy; an operator has to buy it
under constraints: a bandwidth budget, digest overhead on every
request, and a server with finite capacity.  This example runs the
production-shaped configuration end to end:

* the self-tuning policy holds a stated traffic budget,
* cooperative clients piggyback Bloom-filter digests (bytes counted),
* the M/M/1 lens translates the load reduction into response-time
  headroom at several utilizations.

Run:  python examples/operating_under_constraints.py
"""

from repro.config import BASELINE
from repro.core import Experiment, format_table
from repro.speculation import (
    AdaptiveBudgetPolicy,
    MM1Server,
    digest_size_bytes,
    latency_impact,
)
from repro.workload import SyntheticTraceGenerator, preset


def main() -> None:
    generator = SyntheticTraceGenerator(preset("small", 13))
    trace = generator.generate()
    experiment = Experiment(trace, BASELINE, train_days=18)
    print(f"workload: {trace}\n")

    # --- hold a 5% bandwidth budget, cooperatively, with Bloom digests ---
    rows = []
    for budget in (0.03, 0.08, 0.20):
        policy = AdaptiveBudgetPolicy(
            target_traffic_increase=budget,
            warmup_bytes=20_000,
            window_bytes=300_000,
            adjust_rate=0.05,
        )
        ratios, run = experiment.evaluate(
            policy, cooperative=True, digest_fp_rate=0.01
        )
        rows.append(
            [
                f"{budget:.0%}",
                f"{ratios.traffic_increase:+.1%}",
                f"{ratios.server_load_reduction:.1%}",
                f"{policy.threshold:.2f}",
            ]
        )
    print(
        format_table(
            ["stated budget", "achieved traffic", "load reduction", "final T_p"],
            rows,
            title="self-tuning speculation with Bloom-digest cooperation",
        )
    )

    # --- what does the digest itself cost? -----------------------------------
    mean_cache = 60  # typical documents per client cache in this workload
    print(
        f"\ndigest overhead at ~{mean_cache} cached documents: "
        f"exact list {digest_size_bytes(mean_cache):.0f} B/request, "
        f"Bloom(1%) {digest_size_bytes(mean_cache, fp_rate=0.01):.0f} B/request"
    )

    # --- capacity story: what the load cut is worth ----------------------------
    policy = AdaptiveBudgetPolicy(
        target_traffic_increase=0.08,
        warmup_bytes=20_000,
        window_bytes=300_000,
    )
    ratios, __ = experiment.evaluate(policy)
    server = MM1Server(capacity=100.0)
    rows = []
    for utilization in (0.3, 0.6, 0.9):
        impact = latency_impact(server, ratios, arrival_rate=100.0 * utilization)
        rows.append(
            [
                f"{utilization:.0%}",
                f"{impact.baseline_response * 1000:.1f} ms",
                f"{impact.speculative_response * 1000:.1f} ms",
                f"{impact.speedup:.2f}x",
            ]
        )
    print()
    print(
        format_table(
            ["server utilization", "response (baseline)", "response (speculative)", "speedup"],
            rows,
            title=(
                f"M/M/1 view of a {ratios.server_load_reduction:.0%} "
                "load reduction"
            ),
        )
    )


if __name__ == "__main__":
    main()
