"""Hierarchical dissemination: answering the proxy-bottleneck question.

Section 2.3 of the paper: a single proxy shielding 100 servers from 96%
of their remote traffic concentrates that traffic on one machine.  The
paper's answer — "disseminate for another level" — is quantified here:

1. size a single proxy for 100 symmetric servers (eq. 10),
2. show the per-machine load imbalance it creates,
3. add an outer level of smaller proxies and watch the peak load fall,
4. show the alternative remedy: dynamic shielding, where the proxy
   sheds load by shrinking its budget when overloaded.

Run:  python examples/hierarchical_dissemination.py
"""

from repro.core import format_table
from repro.dissemination import (
    DynamicShield,
    HierarchicalShielding,
    ProxyLevel,
    symmetric_storage_for_reduction,
)
from repro.popularity.expmodel import PAPER_LAMBDA

N_SERVERS = 100
OFFERED = 1_000_000.0  # requests/day offered by remote clients


def show(title: str, shielding: HierarchicalShielding) -> None:
    outcomes = shielding.distribute(OFFERED)
    rows = [
        [
            o.label,
            o.n_nodes,
            f"{o.absorbed_fraction:.1%}",
            f"{o.load_per_node:,.0f}",
        ]
        for o in outcomes
    ]
    print(format_table(["tier", "machines", "absorbs", "load/machine"], rows,
                       title=title))
    print(f"  peak per-machine load: {shielding.peak_node_load(OFFERED):,.0f}\n")


def main() -> None:
    # One 500 MB proxy in front of 100 servers (the paper's example).
    single = HierarchicalShielding(
        [ProxyLevel(n_nodes=1, storage_per_node=500e6, servers_fronted=N_SERVERS)],
        lam=PAPER_LAMBDA,
        n_home_servers=N_SERVERS,
    )
    show("one proxy, 500 MB (the bottleneck)", single)

    # Another level: ten 100 MB proxies closer to the clients.
    layered = HierarchicalShielding(
        [
            ProxyLevel(n_nodes=10, storage_per_node=100e6, servers_fronted=N_SERVERS),
            ProxyLevel(n_nodes=1, storage_per_node=500e6, servers_fronted=N_SERVERS),
        ],
        lam=PAPER_LAMBDA,
        n_home_servers=N_SERVERS,
    )
    show("two levels: 10 outer proxies + the same inner proxy", layered)

    # Sizing rule of thumb (eq. 10).
    for reduction in (0.90, 0.96):
        budget = symmetric_storage_for_reduction(N_SERVERS, PAPER_LAMBDA, reduction)
        print(
            f"eq. 10: shielding {N_SERVERS} servers by {reduction:.0%} needs "
            f"{budget / 1e6:.0f} MB at one proxy"
        )

    # The other remedy: dynamic shielding under a load spike.
    print("\ndynamic shielding through a 5-day overload spike:")
    shield = DynamicShield(
        n_servers=N_SERVERS,
        lam=PAPER_LAMBDA,
        max_budget=500e6,
        capacity=500_000.0,
    )
    offered = [400_000.0, 900_000.0, 1_500_000.0, 1_200_000.0, 400_000.0]
    rows = [
        [
            s.period,
            f"{s.offered_requests:,.0f}",
            f"{s.budget / 1e6:.0f} MB",
            f"{s.alpha:.1%}",
            f"{s.proxy_load:,.0f}",
        ]
        for s in shield.run(offered)
    ]
    print(
        format_table(
            ["day", "offered", "budget in force", "alpha", "proxy load"], rows
        )
    )


if __name__ == "__main__":
    main()
