"""HTTP log analysis: the section-2 measurement pipeline on CLF logs.

Everything the paper derives from its ``cs-www.bu.edu`` logs, run
against a Common Log Format file:

* parse and clean the log (footnote 6: drop errors/scripts, resolve
  aliases),
* classify documents into remotely / globally / locally popular,
* run the 256 KB block analysis of Figure 1,
* fit the exponential popularity model and report λ.

The example writes a synthetic CLF log first (so it is self-contained),
but ``analyze()`` accepts any iterable of CLF lines — point it at a real
access log to reproduce the analysis on your own server.

Run:  python examples/log_analysis.py
"""

import tempfile
from pathlib import Path

from repro.core import format_table
from repro.popularity import (
    PopularityProfile,
    analyze_blocks,
    classify_documents,
    count_classes,
    fit_lambda,
)
from repro.trace import TraceCleaner, read_clf, write_clf
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


def make_log_file(path: Path) -> None:
    """Write a synthetic server log in Common Log Format."""
    generator = SyntheticTraceGenerator(
        GeneratorConfig(
            seed=11,
            n_pages=150,
            n_clients=200,
            n_sessions=1500,
            duration_days=30,
            local_fraction=0.4,
        )
    )
    trace = generator.generate()
    with path.open("w") as handle:
        for line in write_clf(trace):
            handle.write(line + "\n")


def analyze(lines, local_domains=("campus",)) -> None:
    """The full measurement pipeline over CLF lines."""
    raw = read_clf(lines, local_domains=local_domains)
    cleaned, report = TraceCleaner().clean(raw)
    print(
        f"parsed {len(raw):,} accesses; kept {report.kept:,} "
        f"(dropped {report.dropped}, renamed {report.aliases_renamed})\n"
    )

    profile = PopularityProfile.from_trace(cleaned)
    counts = count_classes(classify_documents(profile))
    print(
        format_table(
            [
                "remotely popular (>85% remote)",
                "globally popular",
                "locally popular (<15% remote)",
            ],
            [[counts.remote, counts.global_, counts.local]],
            title="document classification (paper: 99 / 365 / 510)",
        )
    )

    analysis = analyze_blocks(cleaned)
    print(
        f"\nblock analysis ({analysis.block_bytes // 1024} KB blocks, "
        f"{len(analysis.blocks)} blocks):"
    )
    print(f"  top block holds {analysis.top_block_request_share:.1%} of requests")
    print(
        f"  top 10% of blocks hold {analysis.share_of_top_fraction(0.10):.1%} "
        "of requests (paper: 91%)"
    )

    curve_bytes, coverage = profile.coverage_curve()
    lam = fit_lambda(curve_bytes, coverage)
    print(
        f"\nexponential popularity fit: lambda = {lam:.3g} /byte "
        "(paper: 6.247e-07)"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "access_log"
        make_log_file(log_path)
        with log_path.open() as handle:
            analyze(handle)


if __name__ == "__main__":
    main()
