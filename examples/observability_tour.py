"""A tour of the observability layer through the front-door API.

One :class:`repro.api.Session` run, observed four ways:

1. **Event trace** — every request, speculation, push and dissemination
   as a deterministic JSONL stream on the virtual clock (same seed ⇒
   byte-identical bytes, so traces diff cleanly across code changes).
2. **Windowed time-series** — the live counters sampled cumulatively
   per virtual-time window, turning the paper's four headline ratios
   into curves; the final window reproduces the headline exactly.
3. **Prometheus export** — the end-of-run counter snapshot in text
   exposition format, ready for scraping dashboards.
4. **Run manifest** — seed, configuration digest and git revision, so
   any trace file can be tied back to the run that produced it.

Run:  python examples/observability_tour.py
"""

import json

from repro.api import Session
from repro.obs import ObsConfig, prometheus_text


def main() -> None:
    session = Session(seed=0, obs=ObsConfig.full(window=86_400.0))
    report = session.loadtest()

    print("headline ratios:", report.ratios.format())

    # 1. The deterministic event trace (first and last events shown).
    lines = report.trace_jsonl().splitlines()
    print(f"\nevent trace: {len(lines)} events (JSONL, virtual-clock)")
    for line in lines[:3]:
        print("  " + line)
    print(f"  ... {len(lines) - 4} more ...")
    print("  " + lines[-1])

    # 2. The four ratios as per-day curves instead of one number.
    print("\nratio curve (1-day windows):")
    print("  day  bandwidth  load    time    miss")
    for start, ratios in report.ratio_curve():
        print(
            f"  {start / 86_400.0:3.0f}  "
            f"{ratios.bandwidth_ratio:9.4f}  "
            f"{ratios.server_load_ratio:.4f}  "
            f"{ratios.service_time_ratio:.4f}  "
            f"{ratios.miss_rate_ratio:.4f}"
        )

    # 3. A Prometheus text snapshot of the speculative arm.
    snapshot = report.detail.speculative
    excerpt = prometheus_text(snapshot).splitlines()
    print(f"\nprometheus export ({len(excerpt)} lines):")
    for line in excerpt[:6]:
        print("  " + line)
    print("  ...")

    # 4. Provenance: enough to reproduce or audit this exact run.
    print("\nrun manifest:")
    print("  " + json.dumps(report.manifest, indent=2).replace("\n", "\n  "))

    # The trace really is deterministic: same spec, same bytes.
    again = session.loadtest().trace_jsonl()
    identical = report.trace_jsonl() == again
    print(f"\nsame seed re-run byte-identical: {identical}")


if __name__ == "__main__":
    main()
