"""Descriptive statistics of clientele trees.

Proxy placement and the bytes×hops accounting both hinge on the tree's
shape: how deep the clients sit, how demand concentrates across
subtrees.  :func:`tree_statistics` summarizes a tree (optionally
demand-weighted) the way the paper characterizes its 34,000-node
record-route tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError
from .tree import RoutingTree


@dataclass(frozen=True)
class TreeStatistics:
    """Shape summary of a clientele tree.

    Attributes:
        n_nodes: All nodes including the root.
        n_leaves: Client leaves.
        n_internal: Candidate proxy locations.
        max_depth: Deepest leaf's hop count.
        mean_leaf_depth: Average client hop count (unweighted).
        demand_weighted_depth: Average hops per requested byte — the
            baseline bytes×hops cost per byte.  0 when no demand given.
        top_subtree_demand_share: Fraction of demand under the busiest
            depth-1 subtree (how lopsided the clientele is).
    """

    n_nodes: int
    n_leaves: int
    n_internal: int
    max_depth: int
    mean_leaf_depth: float
    demand_weighted_depth: float
    top_subtree_demand_share: float

    def format(self) -> str:
        """Aligned multi-line rendering of the summary."""
        return "\n".join(
            [
                f"nodes                 {self.n_nodes:>10,}",
                f"leaves (clients)      {self.n_leaves:>10,}",
                f"internal (proxies)    {self.n_internal:>10,}",
                f"max depth             {self.max_depth:>10}",
                f"mean leaf depth       {self.mean_leaf_depth:>10.2f}",
                f"demand-weighted depth {self.demand_weighted_depth:>10.2f}",
                f"busiest subtree share {self.top_subtree_demand_share:>10.1%}",
            ]
        )


def tree_statistics(
    tree: RoutingTree,
    demand_by_client: dict[str, float] | None = None,
) -> TreeStatistics:
    """Summarize a clientele tree's shape.

    Args:
        tree: The tree to summarize.
        demand_by_client: Optional bytes per leaf; enables the
            demand-weighted fields.

    Raises:
        TopologyError: If demand references a non-leaf node.
    """
    leaves = tree.leaves
    demand = demand_by_client or {}
    unknown = set(demand) - leaves
    if unknown:
        raise TopologyError(f"demand for non-leaf nodes: {sorted(unknown)[:3]}")

    leaf_depths = [tree.depth(leaf) for leaf in sorted(leaves)]
    total_demand = sum(demand.values())

    weighted_depth = 0.0
    if total_demand > 0:
        weighted_depth = (
            sum(demand.get(leaf, 0.0) * tree.depth(leaf) for leaf in leaves)
            / total_demand
        )

    top_share = 0.0
    if total_demand > 0:
        for child in tree.children(tree.root):
            subtree_demand = sum(
                demand.get(leaf, 0.0) for leaf in tree.subtree_leaves(child)
            )
            top_share = max(top_share, subtree_demand / total_demand)

    return TreeStatistics(
        n_nodes=len(tree),
        n_leaves=len(leaves),
        n_internal=len(tree.internal_nodes()),
        max_depth=max(leaf_depths, default=0),
        mean_leaf_depth=(
            sum(leaf_depths) / len(leaf_depths) if leaf_depths else 0.0
        ),
        demand_weighted_depth=weighted_depth,
        top_subtree_demand_share=top_share,
    )
