"""Choosing service-proxy locations on the clientele tree.

Two strategies from the paper:

* :func:`greedy_tree_placement` — the log-driven approach of section
  2.1: choose internal tree nodes that maximize demand-weighted hop
  savings (each client is shielded by its deepest selected ancestor).
  Greedy selection gives the classic (1 − 1/e) approximation to this
  submodular coverage objective.
* :func:`geographic_placement` — the Gwertzman–Seltzer alternative:
  place proxies in the geographic regions generating the most demand,
  ignoring finer tree structure.
"""

from __future__ import annotations

from ..errors import TopologyError
from .tree import RoutingTree


def _savings_per_node(
    tree: RoutingTree,
    demand_by_client: dict[str, float],
    chosen: set[str],
) -> dict[str, float]:
    """Marginal bytes×hops saving of adding each unchosen internal node."""
    best_shield: dict[str, int] = {}
    for client in demand_by_client:
        depth = 0
        for node in tree.path_from_root(client):
            if node in chosen:
                depth = max(depth, tree.depth(node))
        best_shield[client] = depth

    gains: dict[str, float] = {}
    for node in tree.internal_nodes() - chosen:
        node_depth = tree.depth(node)
        gain = 0.0
        for client in tree.subtree_leaves(node):
            demand = demand_by_client.get(client, 0.0)
            if demand <= 0:
                continue
            gain += demand * max(0, node_depth - best_shield.get(client, 0))
        gains[node] = gain
    return gains


def greedy_tree_placement(
    tree: RoutingTree,
    demand_by_client: dict[str, float],
    n_proxies: int,
) -> list[str]:
    """Pick up to ``n_proxies`` internal nodes by greedy hop-savings.

    Args:
        tree: The clientele tree.
        demand_by_client: Bytes requested per client (leaf id).
        n_proxies: Number of proxies to place.

    Returns:
        Selected node ids in selection order (may be shorter than
        ``n_proxies`` when no node adds savings or the tree runs out of
        internal nodes).

    Raises:
        TopologyError: If ``n_proxies`` is negative or a demand key is
            not a leaf of the tree.
    """
    if n_proxies < 0:
        raise TopologyError("n_proxies must be non-negative")
    unknown = set(demand_by_client) - tree.leaves
    if unknown:
        raise TopologyError(f"demand for non-leaf nodes: {sorted(unknown)[:3]}")

    chosen: list[str] = []
    chosen_set: set[str] = set()
    for _ in range(n_proxies):
        gains = _savings_per_node(tree, demand_by_client, chosen_set)
        if not gains:
            break
        node, gain = max(gains.items(), key=lambda item: (item[1], item[0]))
        if gain <= 0:
            break
        chosen.append(node)
        chosen_set.add(node)
    return chosen


def geographic_placement(
    tree: RoutingTree,
    demand_by_client: dict[str, float],
    n_proxies: int,
    *,
    region_prefix: str = "region-",
) -> list[str]:
    """Place proxies at the highest-demand geographic regions.

    Regions are the internal nodes named ``region-*`` by the builder
    (they sit below any backbone chain).  This mirrors Gwertzman &
    Seltzer's geographical push-caching: location choice by geography
    alone, without the per-subtree optimization of the log-driven
    placement.
    """
    if n_proxies < 0:
        raise TopologyError("n_proxies must be non-negative")
    region_demand: dict[str, float] = {}
    for node in tree.internal_nodes():
        if not node.startswith(region_prefix):
            continue
        total = sum(
            demand_by_client.get(leaf, 0.0) for leaf in tree.subtree_leaves(node)
        )
        region_demand[node] = total
    ranked = sorted(region_demand.items(), key=lambda item: (-item[1], item[0]))
    return [node for node, demand in ranked[:n_proxies] if demand > 0]
