"""Clusters and cluster hierarchies.

A *cluster* (paper section 2.1) is a service proxy ``S_0`` together with
the home servers ``S_1 .. S_n`` it represents.  The mapping between
servers and proxies is many-to-many — one server may be fronted by
several proxies along different routes — and proxies may themselves use
higher-level proxies, forming a hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError


@dataclass(frozen=True)
class Cluster:
    """A service proxy and the home servers it fronts.

    Attributes:
        proxy: Identifier of the service proxy (``S_0``).
        servers: Identifiers of the member home servers (``S_1..S_n``).
        capacity_bytes: Total dissemination storage ``B_0`` at the proxy.
    """

    proxy: str
    servers: tuple[str, ...]
    capacity_bytes: float

    def __post_init__(self) -> None:
        if not self.proxy:
            raise TopologyError("cluster proxy id must be non-empty")
        if not self.servers:
            raise TopologyError("cluster needs at least one server")
        if len(set(self.servers)) != len(self.servers):
            raise TopologyError("duplicate server in cluster")
        if self.proxy in self.servers:
            raise TopologyError("proxy cannot be its own member server")
        if self.capacity_bytes < 0:
            raise TopologyError("capacity must be non-negative")

    @property
    def n_servers(self) -> int:
        return len(self.servers)


class ClusterHierarchy:
    """A multi-level hierarchy of clusters.

    Level 0 clusters front home servers directly; a level ``k+1``
    cluster's "servers" are the proxies of level ``k`` clusters,
    modelling the paper's "disseminating popular information continues
    for another level, and so on".

    The same server may appear in several clusters of one level
    (many-to-many mapping), but a proxy id may head only one cluster.
    """

    def __init__(self, levels: list[list[Cluster]]):
        if not levels or not any(levels):
            raise TopologyError("hierarchy needs at least one cluster")
        seen_proxies: set[str] = set()
        for level in levels:
            for cluster in level:
                if cluster.proxy in seen_proxies:
                    raise TopologyError(
                        f"proxy {cluster.proxy!r} heads more than one cluster"
                    )
                seen_proxies.add(cluster.proxy)
        for lower, upper in zip(levels, levels[1:]):
            lower_proxies = {c.proxy for c in lower}
            for cluster in upper:
                missing = set(cluster.servers) - lower_proxies
                if missing:
                    raise TopologyError(
                        f"level-up cluster {cluster.proxy!r} fronts unknown "
                        f"proxies {sorted(missing)}"
                    )
        self._levels = [list(level) for level in levels]

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    def level(self, index: int) -> list[Cluster]:
        """Clusters at one level (0 = closest to home servers)."""
        try:
            return list(self._levels[index])
        except IndexError:
            raise TopologyError(f"no level {index}") from None

    def clusters_of_server(self, server: str) -> list[Cluster]:
        """All level-0 clusters that front a given home server."""
        return [c for c in self._levels[0] if server in c.servers]

    def all_proxies(self) -> set[str]:
        """Every proxy id in the hierarchy."""
        return {c.proxy for level in self._levels for c in level}
