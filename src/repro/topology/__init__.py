"""Network topology: routing trees, clusters, and proxy placement.

Section 2.1 of the paper views the clientele of a home server as a tree
rooted at the server, with clients at the leaves and potential service
proxies at the internal nodes; the Internet at large is modelled as a
hierarchy of clusters (a service proxy plus the home servers it
represents).

* :mod:`repro.topology.tree` — the rooted routing tree with hop counts.
* :mod:`repro.topology.clusters` — clusters and cluster hierarchies.
* :mod:`repro.topology.builder` — build a clientele tree from a trace
  (the analog of the paper's ``record route`` technique).
* :mod:`repro.topology.placement` — choose proxy locations: demand-
  weighted greedy placement on the tree, and the geographic alternative
  of Gwertzman & Seltzer.
"""

from .tree import RoutingTree, TreeNode
from .clusters import Cluster, ClusterHierarchy
from .builder import build_clientele_tree
from .placement import geographic_placement, greedy_tree_placement
from .stats import TreeStatistics, tree_statistics

__all__ = [
    "RoutingTree",
    "TreeNode",
    "Cluster",
    "ClusterHierarchy",
    "build_clientele_tree",
    "greedy_tree_placement",
    "geographic_placement",
    "TreeStatistics",
    "tree_statistics",
]
