"""Rooted routing trees with hop accounting.

The dissemination experiments measure traffic in **bytes × hops**: a
byte served from the home server to a client costs one unit per edge on
the root→leaf path, and a byte served from a proxy at an internal node
only pays for the edges below that node.  :class:`RoutingTree` stores
the tree, validates it, and answers the path/depth queries those
experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError


@dataclass(frozen=True, slots=True)
class TreeNode:
    """One node of the routing tree.

    Attributes:
        node_id: Unique identifier within the tree.
        kind: ``"root"`` (the home server), ``"internal"`` (a potential
            proxy location), or ``"leaf"`` (a client).
    """

    node_id: str
    kind: str


class RoutingTree:
    """A tree rooted at the home server.

    Construct with the root id and a ``child → parent`` mapping; every
    node other than the root must appear exactly once as a key and reach
    the root.  Leaves (nodes with no children) are the clients.

    Args:
        root: Identifier of the root (home server).
        parents: Mapping from each non-root node to its parent.
    """

    def __init__(self, root: str, parents: dict[str, str]):
        if root in parents:
            raise TopologyError("root must not have a parent")
        self._root = root
        self._parents = dict(parents)

        children: dict[str, list[str]] = {root: []}
        for child, parent in self._parents.items():
            children.setdefault(parent, [])
            children.setdefault(child, [])
            children[parent].append(child)
        self._children = children

        # Validate connectivity and acyclicity while computing depths.
        self._depths: dict[str, int] = {root: 0}
        for node in self._parents:
            self._resolve_depth(node)

        known = set(self._children)
        for parent in set(self._parents.values()):
            if parent != root and parent not in self._parents:
                raise TopologyError(f"parent {parent!r} is not connected to the root")
        self._leaves = frozenset(
            node for node, kids in children.items() if not kids and node != root
        )
        __ = known  # all nodes validated via depth resolution

    def _resolve_depth(self, node: str) -> int:
        depth = self._depths.get(node)
        if depth is not None:
            return depth
        chain: list[str] = []
        current = node
        while current not in self._depths:
            if current in chain:
                raise TopologyError(f"cycle detected at node {current!r}")
            chain.append(current)
            parent = self._parents.get(current)
            if parent is None:
                raise TopologyError(f"node {current!r} does not reach the root")
            current = parent
        base = self._depths[current]
        for offset, member in enumerate(reversed(chain), start=1):
            self._depths[member] = base + offset
        return self._depths[node]

    # -- queries --------------------------------------------------------------

    @property
    def root(self) -> str:
        """The root (home server) node id."""
        return self._root

    @property
    def leaves(self) -> frozenset[str]:
        """All leaf (client) node ids."""
        return self._leaves

    def nodes(self) -> set[str]:
        """All node ids, including the root."""
        return set(self._children)

    def internal_nodes(self) -> set[str]:
        """Candidate proxy locations: non-root, non-leaf nodes."""
        return self.nodes() - self._leaves - {self._root}

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._children

    def __len__(self) -> int:
        return len(self._children)

    def parent(self, node_id: str) -> str | None:
        """Parent of a node; None for the root."""
        if node_id == self._root:
            return None
        try:
            return self._parents[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def children(self, node_id: str) -> list[str]:
        """Children of a node."""
        try:
            return list(self._children[node_id])
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def depth(self, node_id: str) -> int:
        """Edges between the root and a node (root has depth 0)."""
        try:
            return self._depths[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def path_from_root(self, node_id: str) -> list[str]:
        """Node ids on the root→node path, inclusive of both ends."""
        if node_id not in self._children:
            raise TopologyError(f"unknown node {node_id!r}")
        path = [node_id]
        while path[-1] != self._root:
            path.append(self._parents[path[-1]])
        path.reverse()
        return path

    def hops(self, node_id: str) -> int:
        """Hop count from the root to a node — the per-byte cost of
        serving that node from the home server."""
        return self.depth(node_id)

    def hops_from(self, ancestor: str, node_id: str) -> int:
        """Hop count from an ancestor node down to ``node_id``.

        Raises:
            TopologyError: If either node id is unknown (a
                :class:`ValueError` subclass, with the offending id in
                the message), or if ``ancestor`` is a known node that is
                not on the root path of ``node_id`` — a proxy only
                shields clients below it.
        """
        if ancestor not in self._children:
            raise TopologyError(f"unknown node {ancestor!r}")
        path = self.path_from_root(node_id)
        if ancestor not in path:
            raise TopologyError(
                f"{ancestor!r} is not an ancestor of {node_id!r}"
            )
        return self.depth(node_id) - self.depth(ancestor)

    def distance(self, a: str, b: str) -> int:
        """Edges on the unique tree path between two nodes.

        Unlike :meth:`hops_from` neither argument needs to be an
        ancestor of the other: the path climbs to the lowest common
        ancestor and descends.  Used by the fleet runtime to cost
        sibling-to-sibling transfers.

        Raises:
            TopologyError: If either node id is unknown.
        """
        path_a = self.path_from_root(a)
        path_b = self.path_from_root(b)
        common = 0
        for node_a, node_b in zip(path_a, path_b):
            if node_a != node_b:
                break
            common += 1
        return (len(path_a) - common) + (len(path_b) - common)

    def subtree_leaves(self, node_id: str) -> set[str]:
        """All leaves at or below a node."""
        if node_id not in self._children:
            raise TopologyError(f"unknown node {node_id!r}")
        found: set[str] = set()
        stack = [node_id]
        while stack:
            current = stack.pop()
            kids = self._children[current]
            if not kids and current != self._root:
                found.add(current)
            stack.extend(kids)
        return found

    def node_kind(self, node_id: str) -> str:
        """Classify a node as root / internal / leaf."""
        if node_id == self._root:
            return "root"
        if node_id in self._leaves:
            return "leaf"
        if node_id in self._children:
            return "internal"
        raise TopologyError(f"unknown node {node_id!r}")
