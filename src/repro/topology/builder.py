"""Building a clientele tree from an access trace.

The paper builds the server-rooted clientele tree with the TCP/IP
``record route`` option (its 22-week tree had 34,000+ nodes).  Route
recording is unavailable offline, so this builder reconstructs an
equivalent tree from the information a log does carry — client
identities — plus a region assignment:

    root (home server)
      └── bb-R-1 … bb-R-k     (backbone hops toward a geographic region)
            └── region-R      (backbone exit into the region)
                  └── subnet-R-S    (stub network inside the region)
                        └── client  (leaf)

The backbone chain models the long wide-area path a byte travels before
reaching a region — the hops that dissemination saves.

Clients of the synthetic :class:`~repro.workload.clients.ClientPopulation`
carry their region in the id; foreign client ids are hashed.  Subnets
group clients within a region so internal nodes exist at two depths,
giving proxy placement a meaningful choice of levels (as the real
record-route tree does).
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable

from ..errors import TopologyError
from ..trace.records import Trace
from .tree import RoutingTree


def _default_region_of(client_id: str, n_regions: int) -> int:
    """Region from a synthetic client id, hashing for foreign ids."""
    if ".region-" in client_id:
        try:
            return int(client_id.rsplit(".region-", 1)[1])
        except ValueError:
            pass
    if client_id.startswith("local-") or client_id.endswith(".campus"):
        return 0
    digest = hashlib.sha1(client_id.encode()).digest()
    return digest[0] % n_regions


def build_clientele_tree(
    trace: Trace,
    *,
    n_regions: int = 16,
    subnets_per_region: int = 4,
    backbone_hops: int = 2,
    region_of: Callable[[str], int] | None = None,
    root: str = "home-server",
) -> RoutingTree:
    """Build the server-rooted clientele tree for a trace.

    Args:
        trace: The access trace; one leaf is created per client.
        n_regions: Regions used when hashing foreign client ids.
        subnets_per_region: Stub networks per region.
        backbone_hops: Wide-area hops between the root and each region
            (0 attaches regions directly to the root).
        region_of: Override mapping a client id to its region index.
        root: Node id for the home server.

    Returns:
        A :class:`RoutingTree` whose leaves are exactly the trace's
        clients.

    Raises:
        TopologyError: If the trace has no clients.
    """
    clients = sorted(trace.clients())
    if not clients:
        raise TopologyError("cannot build a tree from an empty trace")
    if subnets_per_region <= 0:
        raise TopologyError("subnets_per_region must be positive")
    if backbone_hops < 0:
        raise TopologyError("backbone_hops must be non-negative")

    resolve = region_of or (lambda cid: _default_region_of(cid, n_regions))
    parents: dict[str, str] = {}
    for client in clients:
        region = resolve(client)
        subnet = (
            int(hashlib.sha1(client.encode()).hexdigest(), 16) % subnets_per_region
        )
        region_node = f"region-{region:02d}"
        subnet_node = f"subnet-{region:02d}-{subnet}"
        if region_node not in parents:
            above = root
            for hop in range(1, backbone_hops + 1):
                bb_node = f"bb-{region:02d}-{hop}"
                parents.setdefault(bb_node, above)
                above = bb_node
            parents[region_node] = above
        parents.setdefault(subnet_node, region_node)
        if client in parents:
            raise TopologyError(f"client id {client!r} collides with a tree node")
        parents[client] = subnet_node
    return RoutingTree(root, parents)
