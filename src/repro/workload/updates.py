"""Document update (mutation) processes.

Section 2 of the paper monitored document modification dates for 186
days and found:

* remotely- and globally-popular documents update very rarely
  (< 0.5% probability per document per day);
* locally-popular documents update more often (about 2% per day);
* frequent updates concentrate in a very small "mutable" subset.

:class:`UpdateProcess` reproduces this: each document gets a per-day
update probability from its popularity class, a small fraction is marked
*mutable* with a much higher rate, and :meth:`events` samples the
Bernoulli-per-day update timeline the paper measured (multiple updates
within one day count once, as in the paper's footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError

#: Paper-reported per-day update probabilities by popularity class.
CLASS_UPDATE_RATES = {
    "remote": 0.005,
    "global": 0.005,
    "local": 0.02,
}

#: Per-day update probability of the small "mutable" subset.
MUTABLE_UPDATE_RATE = 0.35


@dataclass(frozen=True, slots=True)
class UpdateEvent:
    """One document update: (day index, document id)."""

    day: int
    doc_id: str


class UpdateProcess:
    """Samples per-day document update events.

    Args:
        doc_classes: Mapping of document id to popularity class
            (``"remote"``, ``"global"`` or ``"local"``).
        rng: Randomness source.
        mutable_fraction: Fraction of documents promoted to the
            fast-updating mutable subset.
        rates: Override of :data:`CLASS_UPDATE_RATES`.
    """

    def __init__(
        self,
        doc_classes: dict[str, str],
        rng: np.random.Generator,
        *,
        mutable_fraction: float = 0.02,
        rates: dict[str, float] | None = None,
    ):
        if not 0.0 <= mutable_fraction <= 1.0:
            raise CalibrationError("mutable_fraction must be in [0, 1]")
        rates = dict(rates or CLASS_UPDATE_RATES)
        unknown = set(doc_classes.values()) - set(rates)
        if unknown:
            raise CalibrationError(f"no update rate for classes {sorted(unknown)}")

        self._rng = rng
        doc_ids = sorted(doc_classes)
        n_mutable = int(round(len(doc_ids) * mutable_fraction))
        mutable = set(
            rng.choice(len(doc_ids), size=n_mutable, replace=False).tolist()
            if n_mutable
            else []
        )
        self._daily_rate: dict[str, float] = {}
        self.mutable_docs: set[str] = set()
        for index, doc_id in enumerate(doc_ids):
            if index in mutable:
                self._daily_rate[doc_id] = MUTABLE_UPDATE_RATE
                self.mutable_docs.add(doc_id)
            else:
                self._daily_rate[doc_id] = rates[doc_classes[doc_id]]

    def daily_rate(self, doc_id: str) -> float:
        """Per-day update probability of one document."""
        try:
            return self._daily_rate[doc_id]
        except KeyError:
            raise CalibrationError(f"unknown document {doc_id!r}") from None

    def events(self, n_days: int) -> list[UpdateEvent]:
        """Sample update events for ``n_days`` consecutive days.

        At most one event per document per day (paper footnote 3).
        Events are ordered by (day, doc_id).
        """
        if n_days < 0:
            raise CalibrationError("n_days must be non-negative")
        events: list[UpdateEvent] = []
        doc_ids = sorted(self._daily_rate)
        rates = np.array([self._daily_rate[d] for d in doc_ids])
        for day in range(n_days):
            hits = self._rng.random(len(doc_ids)) < rates
            for index in np.nonzero(hits)[0]:
                events.append(UpdateEvent(day=day, doc_id=doc_ids[int(index)]))
        return events

    def observed_rates(self, events: list[UpdateEvent], n_days: int) -> dict[str, float]:
        """Empirical per-day update rate of each document from events."""
        if n_days <= 0:
            raise CalibrationError("n_days must be positive")
        counts: dict[str, int] = {doc_id: 0 for doc_id in self._daily_rate}
        for event in events:
            counts[event.doc_id] += 1
        return {doc_id: count / n_days for doc_id, count in counts.items()}
