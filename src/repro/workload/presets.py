"""Named workload presets.

The experiments need workloads with specific properties switched on —
drift for the update-cycle study, regional interests for geographic
dissemination, returning visitors for user-profile prefetching.  Each
preset is a documented, reproducible configuration; get one with
:func:`preset`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from ..errors import CalibrationError
from .generator import GeneratorConfig


def _small(seed: int) -> GeneratorConfig:
    """A quick trace for tests and examples (~10k accesses)."""
    return GeneratorConfig(
        seed=seed, n_pages=120, n_clients=150, n_sessions=1200, duration_days=30
    )


def _paper(seed: int) -> GeneratorConfig:
    """The configuration calibrated to the paper's trace statistics."""
    return GeneratorConfig.paper_scale(seed=seed)


def _drifting(seed: int) -> GeneratorConfig:
    """Paper-like workload with site evolution (for HistoryLength /
    UpdateCycle experiments): 4 %/day link churn, 35 % new pages."""
    return dataclasses.replace(
        GeneratorConfig.paper_scale(seed=seed),
        n_sessions=9_000,
        n_clients=3_000,
        duration_days=80.0,
        link_churn_per_day=0.04,
        new_page_fraction=0.35,
    )


def _geographic(seed: int) -> GeneratorConfig:
    """Strong geographic locality of reference (regions have their own
    interests) — what footnote-5 per-proxy dissemination exploits."""
    return dataclasses.replace(
        _small(seed),
        n_pages=300,
        n_clients=600,
        n_sessions=4_000,
        region_affinity=0.6,
        n_regions=8,
    )


def _returning_visitors(seed: int) -> GeneratorConfig:
    """Few clients with many sessions each: users re-traverse their own
    paths (where user-profile prefetching shines)."""
    return dataclasses.replace(
        _small(seed),
        n_pages=150,
        n_clients=40,
        n_sessions=1_800,
        duration_days=40,
        jump_probability=0.2,
        mean_links=3.0,
    )


def _first_visits(seed: int) -> GeneratorConfig:
    """Many clients with ~one session each: every traversal is new
    (where only server speculation helps)."""
    return dataclasses.replace(
        _returning_visitors(seed),
        n_clients=1_800,
    )


def _diurnal(seed: int) -> GeneratorConfig:
    """Small workload with a strong day/night arrival cycle."""
    return dataclasses.replace(_small(seed), diurnal_amplitude=0.9)


_PRESETS: dict[str, Callable[[int], GeneratorConfig]] = {
    "small": _small,
    "paper": _paper,
    "drifting": _drifting,
    "geographic": _geographic,
    "returning-visitors": _returning_visitors,
    "first-visits": _first_visits,
    "diurnal": _diurnal,
}


def preset_names() -> list[str]:
    """All available preset names."""
    return sorted(_PRESETS)


def preset(name: str, seed: int = 0) -> GeneratorConfig:
    """Look up a named workload preset.

    Args:
        name: One of :func:`preset_names`.
        seed: RNG seed baked into the returned configuration.

    Raises:
        CalibrationError: On an unknown preset name.
    """
    builder = _PRESETS.get(name)
    if builder is None:
        raise CalibrationError(
            f"unknown preset {name!r}; available: {', '.join(preset_names())}"
        )
    return builder(seed)
