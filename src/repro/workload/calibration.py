"""Calibration targets from the paper, and checks against them.

The paper reports these statistics for its traces; a synthetic trace
should land near them for the reproduced experiments to be meaningful:

* Only 656 of 2,000+ files were remotely accessed at least once; the
  accessed set was ~36.5 MB of the server's 50+ MB (73%).
* The most popular 0.5% of 256 KB blocks carried 69% of requests; the
  top 10% of blocks carried 91%.
* The fitted exponential popularity constant was λ ≈ 6.247×10⁻⁷ /byte.
* The simulation trace had 205,925 accesses from 8,474 clients across
  >20,000 sessions over three months.

:func:`check_calibration` measures a trace against configurable targets
and returns pass/fail per target with the observed value, so benchmarks
can print a calibration table before reporting results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.records import Trace
from ..trace.stats import summarize


@dataclass(frozen=True)
class CalibrationTarget:
    """One paper-reported statistic with an acceptance band."""

    name: str
    paper_value: float
    low: float
    high: float

    def check(self, observed: float) -> "CalibrationCheck":
        """Compare an observed value against the acceptance band."""
        return CalibrationCheck(
            name=self.name,
            paper_value=self.paper_value,
            observed=observed,
            passed=self.low <= observed <= self.high,
        )


@dataclass(frozen=True)
class CalibrationCheck:
    """Result of checking one target."""

    name: str
    paper_value: float
    observed: float
    passed: bool

    def format(self) -> str:
        """One-line pass/fail rendering of the check."""
        flag = "ok " if self.passed else "OFF"
        return (
            f"[{flag}] {self.name:<32} paper={self.paper_value:<12.4g} "
            f"observed={self.observed:.4g}"
        )


#: Acceptance bands are deliberately wide: the goal is matching the
#: *shape* of the paper's workload (high concentration, heavy remote
#: share, multi-request sessions), not its exact decimals.
PAPER_TARGETS: dict[str, CalibrationTarget] = {
    "top_half_percent_share": CalibrationTarget(
        "top 0.5% docs' request share", 0.69, 0.03, 0.95
    ),
    "top_ten_percent_share": CalibrationTarget(
        "top 10% docs' request share", 0.91, 0.55, 0.99
    ),
    "remote_fraction": CalibrationTarget(
        "remote request fraction", 0.50, 0.35, 0.98
    ),
    "mean_session_length": CalibrationTarget(
        "mean requests per session", 10.0, 2.0, 40.0
    ),
    "touched_bytes_fraction": CalibrationTarget(
        "fraction of site bytes ever accessed", 0.73, 0.30, 1.0
    ),
}


def touched_bytes_fraction(trace: Trace, site_total_bytes: int) -> float:
    """Bytes of distinct accessed documents over the whole site's bytes."""
    if site_total_bytes <= 0:
        return 0.0
    accessed = {r.doc_id for r in trace}
    touched = sum(trace.documents[d].size for d in accessed)
    return touched / site_total_bytes


def check_calibration(
    trace: Trace,
    *,
    site_total_bytes: int | None = None,
    targets: dict[str, CalibrationTarget] | None = None,
) -> list[CalibrationCheck]:
    """Check a trace against the paper's calibration targets.

    Args:
        trace: The synthetic (or real) trace.
        site_total_bytes: Total site size; enables the touched-bytes
            target when provided.
        targets: Override of :data:`PAPER_TARGETS`.

    Returns:
        One :class:`CalibrationCheck` per applicable target.
    """
    targets = dict(targets or PAPER_TARGETS)
    stats = summarize(trace)
    observations = {
        "top_half_percent_share": stats.top_half_percent_share,
        "top_ten_percent_share": stats.top_ten_percent_share,
        "remote_fraction": stats.remote_fraction,
        "mean_session_length": stats.mean_session_length,
    }
    if site_total_bytes is not None:
        observations["touched_bytes_fraction"] = touched_bytes_fraction(
            trace, site_total_bytes
        )
    checks = []
    for key, observed in observations.items():
        target = targets.get(key)
        if target is not None:
            checks.append(target.check(observed))
    return checks
