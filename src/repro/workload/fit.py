"""Fitting a generator configuration to a real trace.

The shipped ``paper`` preset reproduces the paper's workload; a
deployment reproducing *its own* workload wants the inverse direction:
estimate the generator's parameters from an actual log, then simulate
at scale or explore counterfactuals on the synthetic twin.

:func:`fit_generator_config` estimates the observable knobs —
popularity skew, session structure, think times, client mix, arrival
cycles — from a trace.  Structural parameters a server log cannot
reveal (the link graph, embedding density, region affinity) keep their
defaults; the returned :class:`FittedWorkload` lists per-parameter
diagnostics so the caller knows which values were measured and which
were assumed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError
from ..trace.records import Trace
from ..trace.sessions import split_sessions
from .generator import GeneratorConfig

#: The conventional web session gap used for fitting.
SESSION_GAP_SECONDS = 1800.0


@dataclass(frozen=True)
class FittedWorkload:
    """A fitted configuration with per-parameter provenance.

    Attributes:
        config: The generator configuration.
        measured: Parameter name → the statistic it was fitted from.
        assumed: Parameters left at their defaults (not log-derivable).
    """

    config: GeneratorConfig
    measured: dict[str, str]
    assumed: tuple[str, ...]


def _fit_zipf_alpha(counts: list[int]) -> float:
    """Rank-frequency regression: slope of log(count) on log(rank)."""
    ranked = sorted(counts, reverse=True)
    ranked = [c for c in ranked if c > 0]
    if len(ranked) < 3:
        return 1.0
    ranks = np.log(np.arange(1, len(ranked) + 1, dtype=np.float64))
    freqs = np.log(np.array(ranked, dtype=np.float64))
    slope = np.polyfit(ranks, freqs, 1)[0]
    return float(min(3.0, max(0.0, -slope)))


def _fit_diurnal_amplitude(trace: Trace) -> float:
    """Relative day/night swing of the hourly request histogram."""
    hours = [(r.timestamp % 86_400.0) / 3_600.0 for r in trace]
    counts, __ = np.histogram(hours, bins=24, range=(0.0, 24.0))
    peak, trough = counts.max(), counts.min()
    if peak + trough == 0:
        return 0.0
    return float(min(1.0, (peak - trough) / (peak + trough)))


def fit_generator_config(trace: Trace, *, seed: int = 0) -> FittedWorkload:
    """Estimate a :class:`GeneratorConfig` from a trace.

    Args:
        trace: The (cleaned) access trace to imitate.
        seed: Seed baked into the returned configuration.

    Raises:
        CalibrationError: If the trace is too small to fit (fewer than
            two clients or sessions, or zero duration).
    """
    if len(trace) < 10:
        raise CalibrationError("need at least 10 requests to fit a workload")
    duration_days = trace.duration / 86_400.0
    if duration_days <= 0:
        raise CalibrationError("trace has zero duration")
    clients = trace.clients()
    if len(clients) < 2:
        raise CalibrationError("need at least 2 clients to fit a workload")

    sessions = split_sessions(trace, SESSION_GAP_SECONDS)
    if len(sessions) < 2:
        raise CalibrationError("need at least 2 sessions to fit a workload")

    # Separate page visits from inline (embedded) fetches: an inline
    # object follows its page within fractions of a second, while a
    # click takes seconds.  Requests arriving < 1 s after the previous
    # one are counted as embedded.
    embedded_requests = 0
    think_gaps = []
    for session in sessions:
        for earlier, later in zip(session.requests, session.requests[1:]):
            gap = later.timestamp - earlier.timestamp
            if gap < 1.0:
                embedded_requests += 1
            elif gap > 0:
                think_gaps.append(gap)
    embed_share = embedded_requests / len(trace)
    mean_embedded = min(8.0, embed_share / max(1e-9, 1.0 - embed_share))

    page_visits_per_session = max(
        1.0, (len(trace) / len(sessions)) * (1.0 - embed_share)
    )
    continue_probability = min(
        0.98, max(0.0, 1.0 - 1.0 / page_visits_per_session)
    )

    think_time = float(np.median(think_gaps)) if think_gaps else 4.0
    think_time = max(0.5, min(think_time, 300.0))

    counts = Counter(r.doc_id for r in trace)
    alpha = _fit_zipf_alpha(list(counts.values()))

    local_clients = {r.client for r in trace if not r.remote}
    local_fraction = min(0.95, len(local_clients) / len(clients))

    n_pages = max(2, int(round(len(trace.documents) * (1.0 - embed_share))))
    config = GeneratorConfig(
        seed=seed,
        n_pages=n_pages,
        n_clients=len(clients),
        n_sessions=len(sessions),
        duration_days=duration_days,
        continue_probability=continue_probability,
        mean_embedded=mean_embedded,
        think_time_mean=think_time,
        popularity_alpha=alpha,
        local_fraction=local_fraction,
        diurnal_amplitude=_fit_diurnal_amplitude(trace),
    )
    measured = {
        "n_pages": (
            f"{len(trace.documents)} distinct documents less the "
            f"{embed_share:.0%} embedded share"
        ),
        "n_clients": f"{len(clients)} distinct clients",
        "n_sessions": f"{len(sessions)} sessions at a {SESSION_GAP_SECONDS:.0f}s gap",
        "duration_days": f"{duration_days:.1f} days of trace",
        "continue_probability": (
            f"{page_visits_per_session:.2f} page visits per session"
        ),
        "mean_embedded": f"{embed_share:.0%} of requests arrive sub-second",
        "think_time_mean": "median intra-session inter-click gap",
        "popularity_alpha": "rank-frequency regression slope",
        "local_fraction": f"{len(local_clients)} local clients",
        "diurnal_amplitude": "hourly request histogram swing",
    }
    assumed = (
        "shared_embed_probability",
        "mean_links",
        "jump_probability",
        "popular_link_bias",
        "region_affinity",
        "link_churn_per_day",
        "new_page_fraction",
        "activity_alpha",
        "n_regions",
    )
    return FittedWorkload(config=config, measured=measured, assumed=assumed)
