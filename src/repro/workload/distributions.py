"""Sampling distributions used by the synthetic workload.

Three building blocks drive the generator:

* :class:`BoundedZipf` — Zipf-like popularity over a finite catalog.
  Mid-1990s measurement studies (including the companion BU traces of
  Cunha/Bestavros/Crovella) found web document popularity close to Zipf,
  which also reproduces the paper's "top 0.5% of blocks take 69% of
  requests" concentration.
* :class:`HeavyTailedSizes` — document sizes with a lognormal body and a
  Pareto tail, the standard model for web file sizes from the same
  measurement literature.
* :func:`exponential_gap` — exponential inter-arrival gaps for session
  arrivals and think times.

All sampling goes through an explicit :class:`numpy.random.Generator`,
so every trace is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

from ..errors import CalibrationError


class BoundedZipf:
    """Zipf distribution over ranks ``1..n``: ``P(rank r) ∝ r**-alpha``.

    Args:
        n: Number of items (must be positive).
        alpha: Skew exponent; 0 gives uniform, larger is more skewed.
            Web popularity is typically near 1.0 (classic Zipf).
        rng: Source of randomness.

    The inverse-CDF table is precomputed once, so sampling is O(log n).
    """

    def __init__(self, n: int, alpha: float, rng: np.random.Generator):
        if n <= 0:
            raise CalibrationError("BoundedZipf needs n >= 1")
        if alpha < 0:
            raise CalibrationError("BoundedZipf needs alpha >= 0")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = np.arange(1, n + 1, dtype=np.float64) ** -alpha
        total = float(weights.sum())  # > 0: n >= 1 and every weight > 0
        self._pmf = weights / total
        self._cdf = np.cumsum(self._pmf)
        # Guard against floating-point drift at the top of the table.
        self._cdf[-1] = 1.0

    @property
    def pmf(self) -> np.ndarray:
        """Probability of each rank, index 0 = rank 1 (most popular)."""
        return self._pmf

    def sample(
        self,
        size: int | None = None,
        *,
        rng: np.random.Generator | None = None,
    ) -> int | np.ndarray:
        """Draw rank indices in ``0..n-1`` (0 = most popular).

        Args:
            size: Number of samples; None returns a scalar int.
            rng: Draw from this generator instead of the bound one.
                Callers that maintain domain-separated substreams (the
                trace generator's per-session streams) pass their own
                so the distribution table can be shared without the
                draws coupling through one stream.
        """
        source = self._rng if rng is None else rng
        if size is None:
            u = source.random()
            return int(np.searchsorted(self._cdf, u, side="left"))
        u = source.random(size)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def head_mass(self, top_fraction: float) -> float:
        """Probability mass of the most popular ``top_fraction`` of items.

        Used by calibration: for the paper's trace, the top 10% of
        documents should carry roughly 91% of accesses.
        """
        if not 0.0 < top_fraction <= 1.0:
            raise CalibrationError("top_fraction must be in (0, 1]")
        top_n = max(1, int(np.ceil(self.n * top_fraction)))
        return float(self._pmf[:top_n].sum())


class HeavyTailedSizes:
    """Web document sizes: lognormal body with a Pareto tail.

    With probability ``1 - tail_probability`` a size is drawn lognormal
    (median ``body_median`` bytes, shape ``body_sigma``); otherwise it is
    drawn from a Pareto distribution starting at ``tail_cutoff`` with
    shape ``tail_alpha``.  All draws are clamped to
    ``[min_size, max_size]`` and rounded to whole bytes.

    Defaults approximate the mid-90s BU measurements: a few-KB typical
    document with occasional multi-hundred-KB multimedia objects, giving
    a server of ~2,000 documents roughly the paper's 50+ MB footprint.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        body_median: float = 3_000.0,
        body_sigma: float = 1.3,
        tail_probability: float = 0.08,
        tail_cutoff: float = 30_000.0,
        tail_alpha: float = 1.2,
        min_size: int = 64,
        max_size: int = 4_000_000,
    ):
        if body_median <= 0 or body_sigma <= 0:
            raise CalibrationError("lognormal body parameters must be positive")
        if not 0.0 <= tail_probability < 1.0:
            raise CalibrationError("tail_probability must be in [0, 1)")
        if tail_cutoff <= 0 or tail_alpha <= 0:
            raise CalibrationError("Pareto tail parameters must be positive")
        if min_size <= 0 or max_size < min_size:
            raise CalibrationError("need 0 < min_size <= max_size")
        self._rng = rng
        self._mu = float(np.log(body_median))
        self._sigma = body_sigma
        self._tail_probability = tail_probability
        self._tail_cutoff = tail_cutoff
        self._tail_alpha = tail_alpha
        self._min_size = min_size
        self._max_size = max_size

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` document sizes in bytes (int64 array)."""
        body = self._rng.lognormal(self._mu, self._sigma, size)
        tail = self._tail_cutoff * (
            1.0 + self._rng.pareto(self._tail_alpha, size)
        )
        use_tail = self._rng.random(size) < self._tail_probability
        values = np.where(use_tail, tail, body)
        clamped = np.clip(values, self._min_size, self._max_size)
        return np.rint(clamped).astype(np.int64)


def exponential_gap(rng: np.random.Generator, mean: float) -> float:
    """One exponential inter-arrival gap with the given mean (seconds)."""
    if mean <= 0:
        raise CalibrationError("exponential gap mean must be positive")
    return float(rng.exponential(mean))
