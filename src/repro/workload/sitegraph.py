"""Synthetic web-site structure.

The speculative-service protocol exploits two kinds of document
dependency (section 3.1 of the paper):

* **Embedding** — an inline object is *always* fetched with its page
  (conditional probability 1).
* **Traversal** — a linked page is *sometimes* fetched after its
  referrer; with ``k`` anchors followed uniformly, each link is taken
  with probability about ``1/k``, which is exactly the shape of the
  paper's Figure 4 histogram.

:class:`SiteGraph` builds a site with both dependency kinds: ``n_pages``
HTML pages, each with embedded objects (some drawn from a shared pool,
like a site-wide logo) and hyperlinks to other pages.  Link targets mix
preferential attachment toward popular pages with uniform choice, giving
a connected, popularity-correlated link structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError
from ..trace.records import Document
from .distributions import BoundedZipf, HeavyTailedSizes


@dataclass(frozen=True, slots=True)
class Page:
    """One HTML page of the synthetic site.

    Attributes:
        doc_id: Identifier of the page document itself.
        embedded: Identifiers of inline objects fetched with the page.
        links: Indices (into ``SiteGraph.pages``) of linked pages.
    """

    doc_id: str
    embedded: tuple[str, ...]
    links: tuple[int, ...]


class SiteGraph:
    """A synthetic site: pages, embedded objects, and hyperlinks.

    Args:
        n_pages: Number of HTML pages.
        rng: Randomness source (construction is deterministic per seed).
        mean_embedded: Mean number of inline objects per page (Poisson).
        shared_pool_size: Number of site-wide shared inline objects
            (logos, bullets); 0 disables sharing.
        shared_embed_probability: Probability that an embedded slot
            references a shared object instead of a page-private one.
        mean_links: Mean hyperlink out-degree (Poisson, min 1).
        popular_link_bias: Probability that a link targets a page chosen
            by popularity rank rather than uniformly.
        popularity_alpha: Zipf exponent of page popularity; also used to
            bias link targets.
        sizes: Size distribution; a default :class:`HeavyTailedSizes`
            (seeded from ``rng``) is built when omitted.
        home_server: Home-server label stamped on every document.
    """

    def __init__(
        self,
        n_pages: int,
        rng: np.random.Generator,
        *,
        mean_embedded: float = 1.7,
        shared_pool_size: int = 12,
        shared_embed_probability: float = 0.35,
        mean_links: float = 6.0,
        popular_link_bias: float = 0.55,
        popularity_alpha: float = 1.05,
        sizes: HeavyTailedSizes | None = None,
        home_server: str = "origin",
    ):
        if n_pages <= 1:
            raise CalibrationError("SiteGraph needs at least 2 pages")
        if mean_embedded < 0 or mean_links <= 0:
            raise CalibrationError("mean_embedded/mean_links out of range")
        if not 0.0 <= shared_embed_probability <= 1.0:
            raise CalibrationError("shared_embed_probability must be in [0, 1]")
        if not 0.0 <= popular_link_bias <= 1.0:
            raise CalibrationError("popular_link_bias must be in [0, 1]")

        self.n_pages = n_pages
        self.home_server = home_server
        self._popular_link_bias = popular_link_bias
        self.popularity = BoundedZipf(n_pages, popularity_alpha, rng)
        sizes = sizes or HeavyTailedSizes(rng)

        page_sizes = sizes.sample(n_pages)
        # Embedded objects are mostly small inline images: reuse the size
        # model but cap at 64 KB so pages, not icons, carry the tail.
        def embedded_size() -> int:
            return int(min(sizes.sample(1)[0], 65_536))

        shared_ids: list[str] = []
        documents: dict[str, Document] = {}
        for index in range(shared_pool_size):
            doc_id = f"/shared/common-{index}.gif"
            shared_ids.append(doc_id)
            documents[doc_id] = Document(
                doc_id=doc_id,
                size=embedded_size(),
                kind="embedded",
                home_server=home_server,
            )

        pages: list[Page] = []
        for index in range(n_pages):
            page_id = f"/page/{index:05d}.html"
            documents[page_id] = Document(
                doc_id=page_id,
                size=int(page_sizes[index]),
                kind="page",
                home_server=home_server,
            )

            n_embedded = int(rng.poisson(mean_embedded))
            embedded: list[str] = []
            for slot in range(n_embedded):
                if shared_ids and rng.random() < shared_embed_probability:
                    embedded.append(shared_ids[int(rng.integers(len(shared_ids)))])
                else:
                    doc_id = f"/img/{index:05d}-{slot}.gif"
                    documents[doc_id] = Document(
                        doc_id=doc_id,
                        size=embedded_size(),
                        kind="embedded",
                        home_server=home_server,
                    )
                    embedded.append(doc_id)

            out_degree = max(1, int(rng.poisson(mean_links)))
            links = self._draw_link_targets(index, out_degree, rng)
            pages.append(
                Page(doc_id=page_id, embedded=tuple(embedded), links=tuple(links))
            )

        self.pages: list[Page] = pages
        self._documents = documents

    def _draw_link_targets(
        self, source: int, count: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        links: list[int] = []
        seen = {source}
        attempts = 0
        while len(links) < count and attempts < count * 10:
            attempts += 1
            if rng.random() < self._popular_link_bias:
                # Draw through the caller's rng: during construction it
                # is the same stream the popularity table is bound to,
                # and during link churn it keeps the resample fully on
                # the caller's substream instead of half on the site's.
                target = int(self.popularity.sample(rng=rng))
            else:
                target = int(rng.integers(self.n_pages))
            if target not in seen:
                seen.add(target)
                links.append(target)
        return tuple(links)

    def resample_links(
        self, page_index: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        """Draw a fresh link set for one page (site evolution).

        Used by the generator's link-churn process: the page keeps its
        out-degree but points at newly chosen targets, modelling edits
        that slowly invalidate previously learned traversal
        dependencies (the drift behind the paper's update-cycle study).
        """
        count = max(1, len(self.pages[page_index].links))
        return self._draw_link_targets(page_index, count, rng)

    def documents(self) -> list[Document]:
        """Every document of the site (pages, private and shared objects)."""
        return list(self._documents.values())

    def document(self, doc_id: str) -> Document:
        """Look up one document by id."""
        return self._documents[doc_id]

    def total_bytes(self) -> int:
        """Total size of the site in bytes (the paper's "50+ MB")."""
        return sum(d.size for d in self._documents.values())

    def page_and_embedded_bytes(self, page_index: int) -> int:
        """Bytes fetched by a cold visit to one page (page + inlines)."""
        page = self.pages[page_index]
        total = self._documents[page.doc_id].size
        for doc_id in page.embedded:
            total += self._documents[doc_id].size
        return total
