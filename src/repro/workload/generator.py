"""The synthetic trace generator.

This is the repository's substitute for the paper's ``cs-www.bu.edu``
HTTP logs.  It generates a server-side access trace by simulating
browsing sessions over a :class:`~repro.workload.sitegraph.SiteGraph`:

1. Sessions arrive as a Poisson process over the trace duration; each
   session belongs to a client drawn by activity weight.
2. A session enters at a page drawn from the site's Zipf popularity,
   requests the page and its embedded objects (embedding dependencies),
   then repeatedly follows a uniformly chosen hyperlink of the current
   page with probability ``continue_probability`` (traversal
   dependencies with the 1/k anchor-choice structure of Figure 4).
3. Within a session the client never re-fetches an object it already
   fetched (a browser cache), so shared inline images are requested once
   per session — exactly the effect that makes some dependencies
   "sometimes" rather than "always".
4. Local clients (inside the server's organisation) enter the site
   through a *permuted* popularity ranking: the pages the local audience
   favours differ from the remote audience's favourites.  This produces
   the paper's three-way split into remotely, globally and locally
   popular documents.

Think times are exponential; inline objects follow their page within
fractions of a second, so the paper's ``StrideTimeout = 5 s`` cleanly
separates embedding from cross-page gaps.

**Randomness discipline.**  Construction (site, population, local page
ranking, page birth days) consumes the one classic stream
``default_rng(seed)``.  Everything drawn *during* generation comes from
domain-separated substreams derived with
``np.random.SeedSequence(seed, spawn_key=...)``:

* region page rankings — one substream per region, fixed at
  construction (so the site a region sees never depends on which
  client happens to arrive first);
* the session schedule (arrival times, diurnal thinning, client
  assignment) — one substream per generation epoch;
* daily link churn — one substream per epoch, consumed day by day;
* each session's browsing walk — one substream per ``(epoch, session)``.

Because session *k*'s randomness is a pure function of
``(seed, epoch, k)``, the stream can be **sharded by client hash**:
every shard replays the shared schedule and churn and generates only
its member sessions, and the N shard streams merge back to the exact
unsharded trace (:func:`merge_streams`).

:meth:`SyntheticTraceGenerator.stream` produces the trace as a
time-ordered request iterator with a bounded heap of in-flight
sessions — peak memory holds the site, the schedule and the briefly
overlapping sessions, not the trace.  :meth:`~SyntheticTraceGenerator.generate`
is a materializing wrapper around it.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError
from ..trace.records import Request, Trace
from ..trace.sampling import client_hash
from .clients import Client, ClientPopulation
from .sitegraph import SiteGraph

#: ``SeedSequence`` spawn-key domains for the generator's substreams.
#: Kept distinct so no two kinds of draw can ever alias.
_DOMAIN_REGION = 1
_DOMAIN_SCHEDULE = 2
_DOMAIN_CHURN = 3
_DOMAIN_SESSION = 4


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic workload.

    The defaults produce a small-but-faithful trace (useful in tests);
    :meth:`paper_scale` returns the configuration calibrated to the
    statistics the paper reports for its Jan-Mar 1995 trace.
    """

    seed: int = 0
    #: Number of HTML pages on the site (documents ≈ 3-4× this).
    n_pages: int = 300
    #: Number of distinct clients.
    n_clients: int = 200
    #: Number of browsing sessions over the trace.
    n_sessions: int = 2_000
    #: Trace duration in days.
    duration_days: float = 30.0
    #: Probability of following another link after each page visit.
    continue_probability: float = 0.72
    #: Given the session continues, probability the next page is a fresh
    #: jump (bookmark, search, typed URL) instead of a followed link —
    #: jumps are what the dependency model cannot predict.
    jump_probability: float = 0.15
    #: Mean inline objects per page (embedding dependencies).
    mean_embedded: float = 1.7
    #: Probability an inline slot reuses a site-wide shared object.
    shared_embed_probability: float = 0.35
    #: Mean hyperlink out-degree of a page (traversal dependencies).
    mean_links: float = 6.0
    #: Per-day probability that a page's links are rewritten (site
    #: evolution).  0 keeps the dependency structure stationary; the
    #: paper's update-cycle experiments need slow drift (~0.02-0.05).
    link_churn_per_day: float = 0.0
    #: Fraction of pages that do not exist at trace start and appear at
    #: uniform-random days during the trace (new content — the other
    #: drift mechanism behind the paper's update-cycle findings).
    new_page_fraction: float = 0.0
    #: Geographic locality of reference: probability that a remote
    #: client enters/jumps through its *region's own* page ranking
    #: instead of the global one.  0 disables the property; positive
    #: values make nearby clients share interests, which is what the
    #: footnote-5 per-proxy dissemination exploits.
    region_affinity: float = 0.0
    #: Strength of the day/night cycle in session arrivals: 0 is a
    #: homogeneous Poisson process; 1 silences the quietest hour
    #: completely.  Real server logs show strong diurnal cycles.
    diurnal_amplitude: float = 0.0
    #: Mean think time between page visits (seconds, exponential).
    think_time_mean: float = 4.0
    #: Gap between a page and each of its inline objects (seconds).
    embedded_gap: float = 0.15
    #: Fraction of clients inside the server's organisation.
    local_fraction: float = 0.15
    #: Zipf exponent of page popularity.
    popularity_alpha: float = 1.05
    #: Probability a hyperlink targets a popularity-ranked page.
    popular_link_bias: float = 0.55
    #: Zipf exponent of per-client activity weights.
    activity_alpha: float = 0.9
    #: Geographic regions for the client population.
    n_regions: int = 16

    def __post_init__(self) -> None:
        if self.n_sessions <= 0:
            raise CalibrationError("n_sessions must be positive")
        if self.duration_days <= 0:
            raise CalibrationError("duration_days must be positive")
        if not 0.0 <= self.continue_probability < 1.0:
            raise CalibrationError("continue_probability must be in [0, 1)")
        if not 0.0 <= self.jump_probability <= 1.0:
            raise CalibrationError("jump_probability must be in [0, 1]")
        if not 0.0 <= self.link_churn_per_day <= 1.0:
            raise CalibrationError("link_churn_per_day must be in [0, 1]")
        if not 0.0 <= self.new_page_fraction < 1.0:
            raise CalibrationError("new_page_fraction must be in [0, 1)")
        if not 0.0 <= self.region_affinity <= 1.0:
            raise CalibrationError("region_affinity must be in [0, 1]")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise CalibrationError("diurnal_amplitude must be in [0, 1]")
        if self.think_time_mean <= 0 or self.embedded_gap < 0:
            raise CalibrationError("timing parameters out of range")

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "GeneratorConfig":
        """Configuration calibrated to the paper's trace statistics.

        Targets: ~2,000+ documents, thousands of active clients,
        >20,000 sessions, roughly the paper's 205,925 accesses over
        three months (90 days), the top 10% of documents carrying ~91%
        of requests, all three popularity classes populated, and the
        speculative-service knee near the paper's "+5% traffic buys a
        ~30% load reduction".  Calibrated empirically:

        * alpha = 1.8 with a 0.7 popular-link bias lands the top-10%
          share at ~0.93;
        * a 0.5 local client fraction with the permuted local page
          ranking yields the remote/global/local class split;
        * a text-heavy page mix (0.2 inline objects/page), out-degree 3
          links and a 0.3 jump probability land the speculation
          trade-off curve near the paper's (ours: +4.6% traffic →
          −25% server load, −25% service time, −24% miss rate).
        """
        return cls(
            seed=seed,
            n_pages=950,
            n_clients=8_474,
            n_sessions=28_000,
            duration_days=90.0,
            continue_probability=0.84,
            jump_probability=0.3,
            mean_embedded=0.2,
            shared_embed_probability=0.3,
            mean_links=3.0,
            popularity_alpha=1.8,
            popular_link_bias=0.7,
            activity_alpha=0.6,
            local_fraction=0.5,
        )


class SyntheticTraceGenerator:
    """Generates server traces from a site graph and client population.

    Args:
        config: Workload parameters.
        site: Site structure; built from ``config`` when omitted.
        population: Client population; built from ``config`` when
            omitted.  Passing these explicitly lets cluster experiments
            share one population across several servers.
    """

    def __init__(
        self,
        config: GeneratorConfig = GeneratorConfig(),
        *,
        site: SiteGraph | None = None,
        population: ClientPopulation | None = None,
    ):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.site = site or SiteGraph(
            config.n_pages,
            self._rng,
            popularity_alpha=config.popularity_alpha,
            popular_link_bias=config.popular_link_bias,
            mean_embedded=config.mean_embedded,
            shared_embed_probability=config.shared_embed_probability,
            mean_links=config.mean_links,
        )
        self.population = population or ClientPopulation(
            config.n_clients,
            self._rng,
            n_regions=config.n_regions,
            local_fraction=config.local_fraction,
            activity_alpha=config.activity_alpha,
        )
        # Local clients rank pages differently from remote clients: a
        # fixed permutation maps the shared Zipf ranks onto the local
        # audience's own favourites.
        self._local_page_order = self._rng.permutation(self.site.n_pages)
        # Live link table (mutated by churn); starts as the site's links.
        self._links: list[tuple[int, ...]] = [p.links for p in self.site.pages]
        # Birth day per page (0 = exists from the start).
        self._birth_day = np.zeros(self.site.n_pages, dtype=np.int64)
        if config.new_page_fraction > 0:
            n_new = min(
                self.site.n_pages - 1,
                int(round(self.site.n_pages * config.new_page_fraction)),
            )
            newborn = self._rng.choice(self.site.n_pages, size=n_new, replace=False)
            self._birth_day[newborn] = self._rng.integers(
                1, max(2, int(config.duration_days)), size=n_new
            )
        self._born = self._birth_day == 0
        # Per-region page rankings (geographic locality).  Each region's
        # permutation comes from its own SeedSequence substream, fixed
        # at construction: the ranking a region sees is a pure function
        # of (seed, region), never of which client arrives first — the
        # property client-sampled and sharded generation depend on.
        self._region_page_order: dict[int, np.ndarray] = {
            region: self._substream(_DOMAIN_REGION, region).permutation(
                self.site.n_pages
            )
            for region in range(self.population.n_regions)
        }
        # Generation epoch: repeated stream()/generate() calls on one
        # instance produce fresh (but reproducible) traffic.
        self._epoch = 0

    def _substream(self, *key: int) -> np.random.Generator:
        """A domain-separated RNG substream of the generator's seed."""
        return np.random.default_rng(
            np.random.SeedSequence(self.config.seed, spawn_key=tuple(key))
        )

    def _region_order(self, region: int) -> np.ndarray:
        order = self._region_page_order.get(region)
        if order is None:
            # Foreign region index (only possible with an explicitly
            # passed population): derive it the same seeded way.
            order = self._substream(_DOMAIN_REGION, region).permutation(
                self.site.n_pages
            )
            self._region_page_order[region] = order
        return order

    def _sample_entry_page(
        self, client: Client, rng: np.random.Generator
    ) -> int:
        """An entry page that already exists (born)."""
        affinity = self.config.region_affinity
        for __ in range(64):
            page_index = int(self.site.popularity.sample(rng=rng))
            if client.local:
                page_index = int(self._local_page_order[page_index])
            elif affinity > 0 and rng.random() < affinity:
                page_index = int(self._region_order(client.region)[page_index])
            if self._born[page_index]:
                return page_index
        born_indices = np.nonzero(self._born)[0]
        return int(born_indices[int(rng.integers(len(born_indices)))])

    def _apply_daily_churn(self, rng: np.random.Generator) -> None:
        """Rewire a random subset of pages' links (one day of evolution)."""
        churn = self.config.link_churn_per_day
        if churn <= 0:
            return
        hits = rng.random(self.site.n_pages) < churn
        for page_index in np.nonzero(hits)[0]:
            self._links[int(page_index)] = self.site.resample_links(
                int(page_index), rng
            )

    def _session_requests(
        self,
        client: Client,
        start_time: float,
        rng: np.random.Generator | None = None,
    ) -> list[Request]:
        """Generate one browsing session's requests.

        Args:
            client: The session's client.
            start_time: Virtual start time of the session.
            rng: The session's dedicated substream; defaults to the
                construction stream (convenient for structural tests).
        """
        config = self.config
        rng = self._rng if rng is None else rng
        site = self.site
        requests: list[Request] = []
        fetched: set[str] = set()
        now = start_time
        page_index = self._sample_entry_page(client, rng)

        while True:
            page = site.pages[page_index]
            if page.doc_id not in fetched:
                fetched.add(page.doc_id)
                requests.append(
                    Request(
                        timestamp=now,
                        client=client.client_id,
                        doc_id=page.doc_id,
                        size=site.document(page.doc_id).size,
                        remote=not client.local,
                    )
                )
            inline_time = now
            for doc_id in page.embedded:
                if doc_id in fetched:
                    continue
                fetched.add(doc_id)
                inline_time += config.embedded_gap
                requests.append(
                    Request(
                        timestamp=inline_time,
                        client=client.client_id,
                        doc_id=doc_id,
                        size=site.document(doc_id).size,
                        remote=not client.local,
                    )
                )

            links = [t for t in self._links[page_index] if self._born[t]]
            if not links or rng.random() >= config.continue_probability:
                break
            if rng.random() < config.jump_probability:
                page_index = self._sample_entry_page(client, rng)
            else:
                page_index = links[int(rng.integers(len(links)))]
            now = inline_time + rng.exponential(config.think_time_mean)
        return requests

    def _session_schedule(self, rng: np.random.Generator) -> np.ndarray:
        """Sorted session start times for one generation epoch.

        The schedule is drawn entirely from the epoch's schedule
        substream, so every shard of the same epoch reproduces it
        bit-identically.  This array is the one O(n_sessions) buffer a
        streamed generation keeps (8 bytes per session).
        """
        config = self.config
        duration = config.duration_days * 86_400.0
        if config.diurnal_amplitude <= 0:
            return np.sort(rng.random(config.n_sessions) * duration)
        # Thin homogeneous arrivals against a sinusoidal daily
        # intensity (peak mid-afternoon), then resample rejected
        # sessions to keep the configured volume.
        amplitude = config.diurnal_amplitude
        kept: list[float] = []
        while len(kept) < config.n_sessions:
            candidates = rng.random(config.n_sessions) * duration
            hour = (candidates % 86_400.0) / 3_600.0
            intensity = 1.0 + amplitude * np.sin(
                (hour - 9.0) / 24.0 * 2.0 * np.pi
            )
            accept = rng.random(len(candidates)) * (1.0 + amplitude) < intensity
            kept.extend(candidates[accept].tolist())
        return np.sort(np.array(kept[: config.n_sessions]))

    def stream(
        self,
        *,
        shard_index: int = 0,
        shard_count: int = 1,
        epoch: int | None = None,
    ) -> Iterator[Request]:
        """The trace as a time-ordered request iterator, constant memory.

        Sessions are generated in start order; their requests sit in a
        small heap until no earlier-starting session can still emit
        before them, so the iterator yields in exact timestamp order
        (ties broken by generation order — the order a stable sort of
        the materialized trace produces).  Peak memory holds the site,
        the schedule array and the briefly overlapping sessions, not
        the trace: it is flat in ``n_sessions`` up to the 8-byte-per-
        session schedule.

        Args:
            shard_index: This shard's index in ``0..shard_count-1``.
            shard_count: Partition the client population into this many
                hash buckets (:func:`~repro.trace.sampling.client_hash`)
                and generate only sessions of bucket ``shard_index``'s
                clients.  Every shard replays the shared schedule,
                churn and client assignment, so the ``shard_count``
                streams of the same epoch merge back
                (:func:`merge_streams`) to the exact unsharded trace.
            epoch: Generation epoch; None uses (and advances) the
                instance's epoch counter, so repeated calls produce
                fresh traffic.  Shards of one logical trace must be
                generated from fresh instances (or pass the same epoch
                explicitly), since all shards must replay the same
                schedule.

        Yields:
            :class:`~repro.trace.records.Request` records in timestamp
            order.

        Note:
            Iteration mutates the instance's site-evolution state
            (links, born pages) — run one stream of an instance at a
            time, and read ``_links``/``_born`` only after exhaustion.
        """
        if shard_count < 1:
            raise CalibrationError("shard_count must be at least 1")
        if not 0 <= shard_index < shard_count:
            raise CalibrationError(
                "shard_index must be in [0, shard_count)"
            )
        if epoch is None:
            epoch = self._epoch
            self._epoch += 1
        return self._stream(shard_index, shard_count, epoch)

    def _stream(
        self, shard_index: int, shard_count: int, epoch: int
    ) -> Iterator[Request]:
        """Generator body behind :meth:`stream` (epoch already fixed)."""
        schedule_rng = self._substream(_DOMAIN_SCHEDULE, epoch)
        churn_rng = self._substream(_DOMAIN_CHURN, epoch)
        starts = self._session_schedule(schedule_rng)

        # Start from the site's original link structure and birth state.
        self._links = [p.links for p in self.site.pages]
        self._born = self._birth_day == 0
        # In-flight requests: (timestamp, generation order, request).
        # The sequence number reproduces the tie order of a stable sort
        # over session-major generation order.
        pending: list[tuple[float, int, Request]] = []
        sequence = 0
        current_day = 0
        for index in range(len(starts)):
            start = float(starts[index])
            day = int(start // 86_400.0)
            while current_day < day:
                current_day += 1
                self._apply_daily_churn(churn_rng)
                self._born |= self._birth_day <= current_day
            # The client draw is part of the shared schedule: every
            # shard consumes it so session k's client is shard-invariant.
            client = self.population.sample_client(rng=schedule_rng)
            # Everything timestamped at or before this session's start
            # can no longer be preceded by anything: emit it.
            while pending and pending[0][0] <= start:
                yield heapq.heappop(pending)[2]
            if (
                shard_count > 1
                and client_hash(client.client_id) % shard_count != shard_index
            ):
                continue
            session_rng = self._substream(_DOMAIN_SESSION, epoch, index)
            for request in self._session_requests(client, start, session_rng):
                heapq.heappush(pending, (request.timestamp, sequence, request))
                sequence += 1
        while pending:
            yield heapq.heappop(pending)[2]

    def _generate_batch(self, *, epoch: int | None = None) -> Trace:
        """Reference implementation: materialize every session, then sort.

        This is the pre-streaming algorithm, kept (non-public) so the
        property tests can prove :meth:`stream` bit-identical to it
        without the two sides sharing the ordering logic under test.
        """
        if epoch is None:
            epoch = self._epoch
            self._epoch += 1
        schedule_rng = self._substream(_DOMAIN_SCHEDULE, epoch)
        churn_rng = self._substream(_DOMAIN_CHURN, epoch)
        starts = self._session_schedule(schedule_rng)
        self._links = [p.links for p in self.site.pages]
        self._born = self._birth_day == 0
        all_requests: list[Request] = []
        current_day = 0
        for index in range(len(starts)):
            start = float(starts[index])
            day = int(start // 86_400.0)
            while current_day < day:
                current_day += 1
                self._apply_daily_churn(churn_rng)
                self._born |= self._birth_day <= current_day
            client = self.population.sample_client(rng=schedule_rng)
            session_rng = self._substream(_DOMAIN_SESSION, epoch, index)
            all_requests.extend(
                self._session_requests(client, start, session_rng)
            )
        return Trace(all_requests, self.site.documents(), sort=True)

    def generate(self) -> Trace:
        """Generate the full trace (sorted by time, catalog attached).

        A materializing wrapper around :meth:`stream`; the output is
        bit-identical to streaming the same epoch.
        """
        requests = list(self.stream())
        return Trace(requests, self.site.documents(), sort=True)


def merge_streams(*streams: Iterable[Request]) -> Iterator[Request]:
    """Merge time-ordered request streams into one time-ordered stream.

    The inverse of sharded generation: merging the ``shard_count``
    shard streams of one epoch yields the exact unsharded trace.  Each
    input must already be sorted by timestamp (what
    :meth:`SyntheticTraceGenerator.stream` produces); the merge is lazy
    and keeps only one pending request per stream.
    """
    return heapq.merge(*streams, key=lambda request: request.timestamp)


def generate_trace(seed: int = 0, **overrides) -> Trace:
    """Convenience wrapper: build a generator and return its trace.

    Keyword overrides are applied to the default
    :class:`GeneratorConfig`, e.g. ``generate_trace(7, n_pages=100)``.
    """
    config = GeneratorConfig(seed=seed, **overrides)
    return SyntheticTraceGenerator(config).generate()
