"""Synthetic workload generation calibrated to the paper's traces.

The paper's evaluation is driven by HTTP logs of ``cs-www.bu.edu``
(Jan-Mar 1995).  Those logs are not available, so this subpackage builds
the closest synthetic equivalent:

* :mod:`repro.workload.distributions` — bounded Zipf popularity,
  lognormal-body/Pareto-tail document sizes, exponential gaps.
* :mod:`repro.workload.sitegraph` — a synthetic web site: pages with
  embedded objects (embedding dependencies, followed with probability 1)
  and hyperlinks (traversal dependencies, followed uniformly among a
  page's anchors — producing the 1/k peaks of the paper's Figure 4).
* :mod:`repro.workload.clients` — a client population with geography
  (used by the topology layer) and skewed per-client activity.
* :mod:`repro.workload.updates` — per-class document update (mutation)
  processes matching the paper's measured update rates.
* :mod:`repro.workload.generator` — the trace generator proper.
* :mod:`repro.workload.calibration` — the paper-reported target
  statistics and checks that a generated trace matches them.
"""

from .distributions import (
    BoundedZipf,
    HeavyTailedSizes,
    exponential_gap,
)
from .sitegraph import Page, SiteGraph
from .clients import ClientPopulation
from .updates import UpdateProcess, UpdateEvent
from .generator import (
    GeneratorConfig,
    SyntheticTraceGenerator,
    generate_trace,
    merge_streams,
)
from .calibration import PAPER_TARGETS, CalibrationCheck, check_calibration
from .presets import preset, preset_names
from .fit import FittedWorkload, fit_generator_config

__all__ = [
    "BoundedZipf",
    "HeavyTailedSizes",
    "exponential_gap",
    "Page",
    "SiteGraph",
    "ClientPopulation",
    "UpdateProcess",
    "UpdateEvent",
    "GeneratorConfig",
    "SyntheticTraceGenerator",
    "generate_trace",
    "merge_streams",
    "PAPER_TARGETS",
    "CalibrationCheck",
    "check_calibration",
    "preset",
    "preset_names",
    "FittedWorkload",
    "fit_generator_config",
]
