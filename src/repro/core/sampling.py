"""Ratio estimation from client-sampled replays, and its validation gate.

The statistics live in :mod:`repro.trace.sampling` (Horvitz–Thompson
ratio estimation over per-client contribution vectors); this module
supplies the contribution vectors by actually replaying the trace.
The decomposition is exact: :class:`SpeculativeServiceSimulator` keeps
strictly per-client state (caches, pending pushes, session clocks), so
replaying each client's sub-trace alone — against the shared dependency
model and the shared catalog — produces byte-identical per-client
totals to one combined replay.

:func:`estimate_ratios` is the driver the loadtest/fleet engines call
on a sampled workload; :func:`execute_sample_check` is the spot-check
gate (``repro sample --check``) that proves, against an exact
full-trace replay, that the estimator's confidence intervals cover the
true four ratios.
"""

from __future__ import annotations

import numpy as np

from ..config import BASELINE, SECONDS_PER_DAY, BaselineConfig
from ..errors import RuntimeProtocolError, SimulationError
from ..speculation.dependency import DependencyModel
from ..speculation.metrics import SpeculationMetrics
from ..speculation.policies import SpeculationPolicy, ThresholdPolicy
from ..speculation.simulator import SpeculativeServiceSimulator
from ..trace.records import Trace
from ..trace.sampling import (
    CONTRIBUTION_COLUMNS,
    RATIO_NAMES,
    SampledRatioReport,
    SamplingConfig,
    sample_clients,
)
from ..trace.sampling import ht_ratio_estimates
from ..workload.generator import GeneratorConfig, SyntheticTraceGenerator
from .experiment import Experiment


def _contribution_row(metrics: SpeculationMetrics) -> list[float]:
    """One client's contribution vector, ordered like CONTRIBUTION_COLUMNS."""
    return [float(getattr(metrics, column)) for column in CONTRIBUTION_COLUMNS]


def client_contributions(
    test: Trace,
    *,
    config: BaselineConfig = BASELINE,
    model: DependencyModel,
    policy: SpeculationPolicy,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Per-client (speculative, baseline) contribution vectors.

    Each client's sub-trace is replayed twice against the shared model
    and the full test catalog — once with the policy, once without.

    Returns:
        ``(client_ids, speculative, baseline)`` where the arrays are
        ``(n_clients, 5)`` ordered like
        :data:`~repro.trace.sampling.CONTRIBUTION_COLUMNS`.

    Raises:
        SimulationError: If the test trace has no clients.
    """
    groups = test.by_client()
    if not groups:
        raise SimulationError("cannot estimate ratios from an empty test trace")
    catalog = list(test.documents.values())
    client_ids = sorted(groups)
    spec_rows: list[list[float]] = []
    base_rows: list[list[float]] = []
    for client_id in client_ids:
        sub = Trace(groups[client_id], catalog)
        simulator = SpeculativeServiceSimulator(sub, config, model=model)
        spec_rows.append(_contribution_row(simulator.run(policy).metrics))
        base_rows.append(_contribution_row(simulator.run(None).metrics))
    return client_ids, np.asarray(spec_rows), np.asarray(base_rows)


def estimate_ratios(
    trace: Trace,
    sampling: SamplingConfig = SamplingConfig(),
    *,
    config: BaselineConfig = BASELINE,
    train_days: float = 60.0,
    policy: SpeculationPolicy | None = None,
    backend: str = "sparse",
) -> SampledRatioReport:
    """Estimate the four ratios from a client-sampled replay.

    The trace is split at the ``train_days`` boundary, the dependency
    model is estimated on the **full** history (the paper's server sees
    every client's history — sampling reduces replay cost, not the
    server's knowledge; a model from a thinned history is also what
    biases the estimates), and the test half is thinned to
    ``sampling.fraction`` of its clients
    (:func:`~repro.trace.sampling.sample_clients`).  Each sampled
    client's stream is replayed with and without speculation; the
    per-client totals feed
    :func:`~repro.trace.sampling.ht_ratio_estimates`.  With the model
    fixed, contributions are fixed per client and equal inclusion
    probabilities cancel — the estimates are consistent for the exact
    full-replay ratios.

    Args:
        trace: The full trace to sample.
        sampling: Fraction, selection seed and bootstrap parameters.
        config: Baseline cost/timeout parameters.
        train_days: History used to estimate the dependency model.
        policy: Speculation policy; defaults to the paper's
            :class:`ThresholdPolicy` at ``config.threshold``.
        backend: Dependency-model backend.

    Raises:
        SimulationError: If the split leaves an empty side or the
            sample holds no test-half requests.
    """
    policy = policy or ThresholdPolicy(config.threshold)
    boundary = trace.start_time + train_days * SECONDS_PER_DAY
    train = trace.window(trace.start_time, boundary)
    full_test = trace.window(boundary, trace.end_time + 1.0)
    if len(train) == 0 or len(full_test) == 0:
        raise SimulationError(
            f"split at {train_days} days leaves train={len(train)} "
            f"test={len(full_test)} requests"
        )
    model = DependencyModel.estimate(
        train, window=config.stride_timeout, backend=backend
    )
    test = sample_clients(full_test, sampling.fraction, seed=sampling.seed)
    client_ids, spec, base = client_contributions(
        test, config=config, model=model, policy=policy
    )
    estimates = ht_ratio_estimates(
        spec,
        base,
        n_boot=sampling.n_boot,
        level=sampling.level,
        seed=sampling.seed,
    )
    return SampledRatioReport(
        fraction=sampling.fraction,
        seed=sampling.seed,
        level=sampling.level,
        n_boot=sampling.n_boot,
        n_clients=len(client_ids),
        n_population=len(full_test.clients()),
        n_requests=len(test),
        estimates=estimates,
    )


def sample_check_workload(seed: int = 0) -> GeneratorConfig:
    """The workload behind the sampling spot-check gate.

    Small enough to replay exactly in seconds, big enough (hundreds of
    clients) that a 5% client sample still holds a few dozen clients —
    the regime where the bootstrap intervals are meaningful.  Client
    activity is kept homogeneous: with a Zipf-heavy population a small
    sample that misses the heavy clients produces too-narrow bootstrap
    intervals (the usual heavy-tail under-coverage), which would make
    the gate flaky for reasons unrelated to the estimator itself.
    """
    return GeneratorConfig(
        seed=seed,
        n_pages=120,
        n_clients=800,
        n_sessions=6_000,
        duration_days=20.0,
        activity_alpha=0.0,
    )


def execute_sample_check(
    seed: int = 0,
    *,
    fraction: float = 0.05,
    train_days: float = 10.0,
    n_boot: int = 400,
    level: float = 0.95,
    config: BaselineConfig = BASELINE,
) -> dict:
    """Spot-check the sampling estimator against an exact replay.

    Generates the :func:`sample_check_workload` trace, computes the
    exact four ratios with a full :class:`~repro.core.experiment.Experiment`
    replay, estimates the same ratios from a ``fraction`` client sample,
    and requires every confidence interval to cover its exact value.

    Returns:
        A JSON-ready report: exact ratios, estimates with intervals,
        and per-ratio coverage.

    Raises:
        RuntimeProtocolError: If any interval misses its exact ratio —
            the estimator (or the sampling machinery feeding it) is
            biased and must not be trusted for sampled runs.
    """
    trace = SyntheticTraceGenerator(sample_check_workload(seed)).generate()
    policy = ThresholdPolicy(config.threshold)

    experiment = Experiment(trace, config, train_days=train_days)
    exact_ratios, _ = experiment.evaluate(policy)
    exact = {
        "bandwidth": exact_ratios.bandwidth_ratio,
        "server_load": exact_ratios.server_load_ratio,
        "service_time": exact_ratios.service_time_ratio,
        "miss_rate": exact_ratios.miss_rate_ratio,
    }

    sampling = SamplingConfig(
        fraction=fraction, seed=seed, n_boot=n_boot, level=level
    )
    report = estimate_ratios(
        trace,
        sampling,
        config=config,
        train_days=train_days,
        policy=policy,
    )
    coverage = report.covers(exact)
    result = {
        "seed": seed,
        "exact": exact,
        "sampled": report.to_dict(),
        "coverage": coverage,
    }
    missed = [name for name in RATIO_NAMES if not coverage.get(name, False)]
    if missed:
        raise RuntimeProtocolError(
            "sampled confidence intervals miss the exact ratio for "
            + ", ".join(missed)
            + " — client sampling cannot be trusted at this fraction"
        )
    return result
