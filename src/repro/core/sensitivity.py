"""Sensitivity analysis over workload parameters.

How robust are the paper's conclusions to the workload?  A reviewer's
natural question, answered by sweeping one generator knob at a time and
re-running the speculation experiment.  :func:`sweep_workload`
automates the loop; results print with
:func:`repro.core.reporting.format_table` or feed further analysis.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

from ..config import BASELINE, BaselineConfig
from ..errors import SimulationError
from ..perf.parallel import parallel_map
from ..speculation.metrics import SpeculationRatios
from ..speculation.policies import SpeculationPolicy, ThresholdPolicy
from ..workload.generator import GeneratorConfig, SyntheticTraceGenerator
from .experiment import Experiment


@dataclass(frozen=True)
class SensitivityPoint:
    """One swept value and its experiment outcome.

    Attributes:
        value: The parameter value for this run.
        ratios: The four speculation ratios against that workload's own
            baseline.
        n_requests: Size of the generated trace (diagnostic).
    """

    value: object
    ratios: SpeculationRatios
    n_requests: int


def sweep_workload(
    parameter: str,
    values: list,
    *,
    base_config: GeneratorConfig | None = None,
    policy: SpeculationPolicy | None = None,
    sim_config: BaselineConfig = BASELINE,
    train_fraction: float = 0.5,
    workers: int | None = None,
) -> list[SensitivityPoint]:
    """Sweep one workload parameter and measure the speculation ratios.

    This is the engine behind :meth:`repro.api.Session.sensitivity`
    (and the deprecated :func:`workload_sensitivity` shim).

    Args:
        parameter: A :class:`GeneratorConfig` field name.
        values: Values to sweep (each produces a fresh workload with
            the same seed, so only the swept knob differs).
        base_config: Starting configuration (default: a small test
            workload).
        policy: Speculation policy (default: the baseline threshold
            policy at the sim config's threshold).
        sim_config: Simulation parameters.
        train_fraction: Fraction of each trace used to estimate P/P*.
        workers: Shard the swept values across this many processes (see
            :func:`repro.perf.parallel.parallel_map`); each value is an
            independent generate-estimate-replay pipeline, so results
            are byte-identical to the serial loop.  ``None`` or ``1``
            stays serial.

    Raises:
        SimulationError: On an unknown parameter name or empty values.
    """
    if not values:
        raise SimulationError("values must be non-empty")
    base_config = base_config or GeneratorConfig(
        seed=0, n_pages=100, n_clients=100, n_sessions=800, duration_days=20
    )
    if parameter not in {f.name for f in dataclasses.fields(base_config)}:
        raise SimulationError(
            f"unknown GeneratorConfig field {parameter!r}"
        )
    policy = policy or ThresholdPolicy(
        threshold=sim_config.threshold, max_size=sim_config.max_size
    )

    def point(value: object) -> SensitivityPoint:
        config = dataclasses.replace(base_config, **{parameter: value})
        trace = SyntheticTraceGenerator(config).generate()
        train_days = trace.duration / 86_400.0 * train_fraction
        experiment = Experiment(trace, sim_config, train_days=train_days)
        ratios, __ = experiment.evaluate(policy)
        return SensitivityPoint(value=value, ratios=ratios, n_requests=len(trace))

    return parallel_map(point, values, workers=workers or 1)


def workload_sensitivity(
    parameter: str,
    values: list,
    *,
    base_config: GeneratorConfig | None = None,
    policy: SpeculationPolicy | None = None,
    sim_config: BaselineConfig = BASELINE,
    train_fraction: float = 0.5,
    workers: int | None = None,
) -> list[SensitivityPoint]:
    """Deprecated shim; use :meth:`repro.api.Session.sensitivity`.

    Delegates unchanged to :func:`sweep_workload`.
    """
    warnings.warn(
        "workload_sensitivity() is deprecated; use "
        "repro.api.Session.sensitivity (see docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return sweep_workload(
        parameter,
        values,
        base_config=base_config,
        policy=policy,
        sim_config=sim_config,
        train_fraction=train_fraction,
        workers=workers,
    )
