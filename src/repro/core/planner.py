"""The dissemination planner facade.

:class:`DisseminationPlanner` packages the section-2 protocol: feed it
each member server's trace, then ask for a plan — how the proxy's
storage splits across servers (eqs. 4–5), which concrete documents each
server should push, and the intercepted-request fraction to expect.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AllocationError
from ..dissemination.allocation import (
    ServerModel,
    exponential_allocation,
    greedy_document_allocation,
)
from ..popularity.expmodel import fit_lambda
from ..popularity.profile import PopularityProfile
from ..trace.records import Trace


@dataclass(frozen=True)
class DisseminationPlan:
    """A concrete dissemination plan for one proxy.

    Attributes:
        budget: The proxy storage that was divided.
        allocations: Bytes granted per server.
        documents: Concrete documents each server pushes (most popular
            first, filling its allocation).
        expected_alpha: Model-predicted intercepted request fraction.
        empirical_alpha: Intercepted fraction measured against the
            training traces (greedy document packing).
    """

    budget: float
    allocations: dict[str, float]
    documents: dict[str, tuple[str, ...]]
    expected_alpha: float
    empirical_alpha: float

    def storage_used(self) -> float:
        """Total bytes the plan actually grants across servers."""
        return sum(self.allocations.values())


class DisseminationPlanner:
    """Plans proxy storage allocation from member servers' logs.

    Usage::

        planner = DisseminationPlanner()
        planner.add_server("cs-www", trace)
        plan = planner.plan(budget_bytes=500e6)
    """

    def __init__(self, *, remote_only: bool = True):
        self._remote_only = remote_only
        self._profiles: dict[str, PopularityProfile] = {}
        self._durations: dict[str, float] = {}

    def add_server(self, name: str, trace: Trace) -> None:
        """Register one member server's access trace.

        Raises:
            AllocationError: On a duplicate name or an empty trace.
        """
        if name in self._profiles:
            raise AllocationError(f"server {name!r} already registered")
        if len(trace) == 0:
            raise AllocationError(f"server {name!r} has an empty trace")
        self._profiles[name] = PopularityProfile.from_trace(trace)
        self._durations[name] = max(trace.duration, 1.0)

    @property
    def servers(self) -> list[str]:
        return sorted(self._profiles)

    def server_model(self, name: str) -> ServerModel:
        """The (R, λ) parameters estimated from a server's log."""
        try:
            profile = self._profiles[name]
        except KeyError:
            raise AllocationError(f"unknown server {name!r}") from None
        rate = profile.total_bytes_served(remote_only=self._remote_only)
        rate /= self._durations[name] / 86_400.0  # bytes per day
        curve_bytes, coverage = profile.coverage_curve(remote_only=self._remote_only)
        if curve_bytes.size == 0:
            raise AllocationError(f"server {name!r} has no countable accesses")
        lam = fit_lambda(curve_bytes, coverage)
        return ServerModel(name=name, rate=rate, lam=lam)

    def plan(self, budget_bytes: float) -> DisseminationPlan:
        """Produce the dissemination plan for a storage budget.

        The byte split follows the exponential closed form; the
        concrete document lists pack each server's most popular
        documents into its granted bytes.

        Raises:
            AllocationError: If no servers are registered.
        """
        if not self._profiles:
            raise AllocationError("no servers registered")
        models = [self.server_model(name) for name in self.servers]
        allocation = exponential_allocation(models, budget_bytes)

        documents: dict[str, tuple[str, ...]] = {}
        for name in self.servers:
            granted = allocation.allocations[name]
            chosen: list[str] = []
            used = 0.0
            for stat in self._profiles[name].ranked(remote_only=self._remote_only):
                hits = stat.remote_requests if self._remote_only else stat.requests
                if hits <= 0:
                    break
                if used + stat.size <= granted:
                    used += stat.size
                    chosen.append(stat.doc_id)
            documents[name] = tuple(chosen)

        empirical = greedy_document_allocation(
            self._profiles, budget_bytes, remote_only=self._remote_only
        )
        return DisseminationPlan(
            budget=budget_bytes,
            allocations=dict(allocation.allocations),
            documents=documents,
            expected_alpha=allocation.alpha,
            empirical_alpha=empirical.alpha,
        )
