"""One-shot evaluation report.

:func:`generate_report` runs the paper's headline evaluation on a named
workload preset and renders a single markdown report: workload
calibration, the Figure-1 popularity concentration, the λ fit, the
eq.-10 sizing claims, a Figure-3-style dissemination table, the
Figure-5 threshold sweep and the Figure-6 gains-vs-traffic view.  The
``repro report`` CLI command wraps it.
"""

from __future__ import annotations

from ..config import BASELINE
from ..dissemination import DisseminationSimulator, symmetric_alpha, symmetric_storage_for_reduction
from ..dissemination.simulator import select_popular_bytes
from ..popularity import PopularityProfile, analyze_blocks, fit_lambda
from ..popularity.expmodel import PAPER_LAMBDA
from ..topology import build_clientele_tree, greedy_tree_placement
from ..workload import SyntheticTraceGenerator, check_calibration, preset
from .experiment import Experiment, evaluate_thresholds, interpolate_at_traffic

DEFAULT_THRESHOLDS = [0.95, 0.5, 0.35, 0.25, 0.15, 0.1, 0.05]
TRAFFIC_LEVELS = [0.05, 0.10, 0.50, 1.00]


def _markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for __ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def generate_report(
    preset_name: str = "paper",
    seed: int = 0,
    *,
    thresholds: list[float] | None = None,
    train_fraction: float = 0.66,
) -> str:
    """Run the headline evaluation and return a markdown report.

    Args:
        preset_name: Workload preset (see
            :func:`repro.workload.preset_names`).
        seed: Workload seed.
        thresholds: ``T_p`` grid for the speculation sweep.
        train_fraction: Fraction of the trace used to estimate P/P*.
    """
    thresholds = thresholds or DEFAULT_THRESHOLDS
    config = preset(preset_name, seed)
    generator = SyntheticTraceGenerator(config)
    trace = generator.generate()

    sections: list[str] = [
        "# repro evaluation report",
        "",
        f"Workload preset: **{preset_name}** (seed {seed}) — "
        f"{len(trace):,} accesses, {len(trace.documents):,} documents, "
        f"{len(trace.clients()):,} clients over "
        f"{trace.duration / 86400:.0f} days.",
        "",
        "## Workload calibration",
        "",
        _markdown_table(
            ["target", "paper", "observed", "status"],
            [
                [
                    check.name,
                    f"{check.paper_value:g}",
                    f"{check.observed:.3f}",
                    "ok" if check.passed else "OFF",
                ]
                for check in check_calibration(
                    trace, site_total_bytes=generator.site.total_bytes()
                )
            ],
        ),
    ]

    # --- section 2: popularity & dissemination -------------------------------
    profile = PopularityProfile.from_trace(trace)
    blocks = analyze_blocks(profile)
    curve_bytes, coverage = profile.coverage_curve()
    lam = fit_lambda(curve_bytes, coverage) if curve_bytes.size else float("nan")

    sections += [
        "",
        "## Popularity (paper §2, Figure 1)",
        "",
        _markdown_table(
            ["statistic", "paper", "measured"],
            [
                ["top 256KB block request share", "0.69",
                 f"{blocks.top_block_request_share:.2f}"],
                ["top 10% blocks request share", "0.91",
                 f"{blocks.share_of_top_fraction(0.10):.2f}"],
                ["fitted lambda (/byte)", "6.247e-07", f"{lam:.3e}"],
            ],
        ),
        "",
        "## Proxy sizing (eq. 10)",
        "",
        _markdown_table(
            ["claim", "paper", "computed"],
            [
                [
                    "shield 10 servers by 90%",
                    "36 MB",
                    f"{symmetric_storage_for_reduction(10, PAPER_LAMBDA, 0.9) / 1e6:.1f} MB",
                ],
                [
                    "500 MB proxy, 100 servers",
                    "~96%",
                    f"{symmetric_alpha(100, PAPER_LAMBDA, 500e6):.1%}",
                ],
            ],
        ),
    ]

    # --- section 3: dissemination replay (Figure 3 style) ---------------------
    tree = build_clientele_tree(trace, backbone_hops=2)
    simulator = DisseminationSimulator(trace, tree)
    demand: dict[str, float] = {}
    for request in trace.remote_only():
        demand[request.client] = demand.get(request.client, 0.0) + request.size
    dissemination_rows = []
    if demand:
        documents = select_popular_bytes(
            profile, 0.10 * generator.site.total_bytes()
        )
        proxies = greedy_tree_placement(tree, demand, 8)
        for count in (1, 2, 4, 8):
            outcome = simulator.simulate(proxies[:count], documents)
            dissemination_rows.append(
                [count, f"{outcome.savings_fraction:.1%}",
                 f"{outcome.proxy_hit_rate:.1%}"]
            )
    sections += [
        "",
        "## Dissemination replay (Figure 3, top 10% of data)",
        "",
        _markdown_table(
            ["proxies", "bytes*hops saved", "proxy hit rate"],
            dissemination_rows,
        ),
    ]

    # --- section 4: speculation sweep (Figures 5 & 6) -------------------------
    train_days = trace.duration / 86_400.0 * train_fraction
    experiment = Experiment(trace, BASELINE, train_days=train_days)
    points = evaluate_thresholds(experiment, thresholds)
    sections += [
        "",
        "## Speculative service (Figure 5)",
        "",
        _markdown_table(
            ["T_p", "traffic", "load red.", "time red.", "miss red."],
            [
                [
                    f"{p.parameter:g}",
                    f"{p.ratios.traffic_increase:+.1%}",
                    f"{p.ratios.server_load_reduction:.1%}",
                    f"{p.ratios.service_time_reduction:.1%}",
                    f"{p.ratios.miss_rate_reduction:.1%}",
                ]
                for p in points
            ],
        ),
        "",
        "## Gains vs bandwidth (Figure 6 / headline numbers)",
        "",
        _markdown_table(
            ["extra traffic", "load red. (paper)", "load red. (ours)",
             "time red. (paper)", "time red. (ours)"],
            [
                [
                    f"+{level:.0%}",
                    paper_load,
                    f"{ratios.server_load_reduction:.1%}",
                    paper_time,
                    f"{ratios.service_time_reduction:.1%}",
                ]
                for level, paper_load, paper_time in (
                    (0.05, "30%", "23%"),
                    (0.10, "35%", "27%"),
                    (0.50, "45%", "40%"),
                    (1.00, "52%", "46%"),
                )
                if (ratios := interpolate_at_traffic(points, level)) is not None
            ],
        ),
        "",
    ]
    return "\n".join(sections)
