"""The speculative server facade.

:class:`SpeculativeServer` packages the section-3 protocol the way a
deployment would use it: feed it access logs (:meth:`fit` /
:meth:`observe`), then ask it how to respond to a request
(:meth:`respond`).  The response carries the demand document, the
documents to speculatively push, and the prefetch hint list for
server-assisted prefetching.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BASELINE, BaselineConfig
from ..errors import SimulationError
from ..trace.records import Document, Trace
from ..speculation.aging import AgingDependencyCounter
from ..speculation.dependency import DependencyModel
from ..speculation.policies import Candidate, SpeculationPolicy, ThresholdPolicy
from ..speculation.prefetch import PrefetchHints


@dataclass(frozen=True)
class SpeculativeResponse:
    """What the server sends for one request.

    Attributes:
        requested: The demand document id.
        speculated: Documents pushed along with the response, best
            first (already filtered by MaxSize and, when a cache digest
            was supplied, by the client's cache).
        hints: Prefetch hints (candidates with probabilities) for
            cooperative clients that prefer pulling to being pushed.
    """

    requested: str
    speculated: tuple[str, ...]
    hints: tuple[Candidate, ...]

    @property
    def total_documents(self) -> int:
        return 1 + len(self.speculated)


class SpeculativeServer:
    """A server that speculates on future requests from its own logs.

    Args:
        catalog: The documents this server can serve.
        config: Baseline parameters (costs, MaxSize, timeouts).
        policy: Speculation policy; defaults to the paper's threshold
            policy at the config's ``threshold``.
        hints: Hint generator for server-assisted prefetching.
        decay_per_day: Aging factor for the dependency counts
            (1.0 disables aging; see section 3.4's aging remark).
    """

    def __init__(
        self,
        catalog: dict[str, Document],
        config: BaselineConfig = BASELINE,
        *,
        policy: SpeculationPolicy | None = None,
        hints: PrefetchHints | None = None,
        decay_per_day: float = 1.0,
    ):
        if not catalog:
            raise SimulationError("server needs a non-empty catalog")
        self._catalog = dict(catalog)
        self._config = config
        self._policy = policy or ThresholdPolicy(
            threshold=config.threshold, max_size=config.max_size
        )
        self._hints = hints or PrefetchHints()
        self._counter = AgingDependencyCounter(
            decay_per_day=decay_per_day,
            window=config.stride_timeout,
        )
        self._model: DependencyModel | None = None

    # -- training -----------------------------------------------------------------

    def fit(self, trace: Trace) -> None:
        """(Re)train from scratch on a trace."""
        self._counter = AgingDependencyCounter(
            decay_per_day=self._counter.decay_per_day,
            window=self._config.stride_timeout,
        )
        self.observe(trace)

    def observe(self, batch: Trace) -> None:
        """Fold a new batch of log into the (aged) dependency counts."""
        self._counter.observe(batch)
        self._model = None  # invalidate snapshot

    @property
    def model(self) -> DependencyModel:
        """The dependency model currently in force."""
        if self._model is None:
            self._model = self._counter.snapshot()
        return self._model

    # -- serving --------------------------------------------------------------------

    def respond(
        self,
        doc_id: str,
        *,
        cache_digest: frozenset[str] | None = None,
    ) -> SpeculativeResponse:
        """Decide the full response to a request for ``doc_id``.

        Args:
            doc_id: The requested document.
            cache_digest: For cooperative clients: document ids the
                client already caches; those are never pushed.

        Raises:
            SimulationError: If the document is not in the catalog.
        """
        if doc_id not in self._catalog:
            raise SimulationError(f"unknown document {doc_id!r}")
        model = self.model
        pushed: list[str] = []
        for candidate in self._policy.select(doc_id, model, self._catalog):
            document = self._catalog.get(candidate.doc_id)
            if document is None or document.size > self._config.max_size:
                continue
            if cache_digest is not None and candidate.doc_id in cache_digest:
                continue
            pushed.append(candidate.doc_id)
        hints = tuple(self._hints.hints(doc_id, model, self._catalog))
        return SpeculativeResponse(
            requested=doc_id, speculated=tuple(pushed), hints=hints
        )
