"""Experiment plumbing shared by the benchmarks.

The paper's section-3 experiments all follow one recipe: estimate P/P*
from history, replay the (later part of the) trace with and without
speculation, and compare the four ratios while sweeping one knob.
:class:`Experiment` packages the recipe; :func:`evaluate_thresholds` and
:func:`interpolate_at_traffic` derive the Figure-5/6 series and the
"x% extra bandwidth buys ..." headline numbers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

from ..config import BASELINE, SECONDS_PER_DAY, BaselineConfig
from ..errors import SimulationError
from ..perf.parallel import parallel_map
from ..trace.records import Trace
from ..speculation.caches import ClientCache
from ..speculation.dependency import DependencyModel
from ..speculation.metrics import SpeculationRatios, compare
from ..speculation.policies import SpeculationPolicy, ThresholdPolicy
from ..speculation.simulator import SimulationRun, SpeculativeServiceSimulator


def train_test_split(trace: Trace, train_days: float) -> tuple[Trace, Trace]:
    """Split a trace at ``train_days`` after its start.

    Returns:
        ``(train, test)`` traces; the boundary request goes to test.

    Raises:
        SimulationError: If the split leaves either side empty.
    """
    if train_days <= 0:
        raise SimulationError("train_days must be positive")
    boundary = trace.start_time + train_days * SECONDS_PER_DAY
    train = trace.window(trace.start_time, boundary)
    test = trace.window(boundary, trace.end_time + 1.0)
    if len(train) == 0 or len(test) == 0:
        raise SimulationError(
            f"split at {train_days} days leaves train={len(train)} "
            f"test={len(test)} requests"
        )
    return train, test


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    parameter: float
    ratios: SpeculationRatios
    run: SimulationRun


class Experiment:
    """A prepared speculation experiment: model + baseline, ready to sweep.

    Args:
        trace: The full trace.
        config: Baseline parameters.
        train_days: History used to estimate the dependency model; the
            remainder of the trace is replayed.
        backend: Dependency-model backend.  The default ``"sparse"``
            engine is bit-identical to ``"dict"`` (pinned by
            ``tests/test_sparse_backend.py``) and several times faster
            on estimation, closure, and replay.

    The no-speculation baseline for the configured cache model is run
    once and cached; :meth:`evaluate` compares any policy against it.
    """

    def __init__(
        self,
        trace: Trace,
        config: BaselineConfig = BASELINE,
        *,
        train_days: float = 60.0,
        backend: str = "sparse",
    ):
        self._config = config
        self.train, self.test = train_test_split(trace, train_days)
        self.model = DependencyModel.estimate(
            self.train, window=config.stride_timeout, backend=backend
        )
        self._simulator = SpeculativeServiceSimulator(
            self.test, config, model=self.model
        )
        self._baselines: dict[tuple, SimulationRun] = {}

    @property
    def config(self) -> BaselineConfig:
        return self._config

    @property
    def simulator(self) -> SpeculativeServiceSimulator:
        return self._simulator

    def baseline(
        self,
        *,
        cache_factory: Callable[[], ClientCache] | None = None,
        cache_key: str = "default",
    ) -> SimulationRun:
        """The no-speculation run for a cache model (cached per key)."""
        key = ("baseline", cache_key)
        if key not in self._baselines:
            self._baselines[key] = self._simulator.run(
                None, cache_factory=cache_factory
            )
        return self._baselines[key]

    def evaluate(
        self,
        policy: SpeculationPolicy,
        *,
        cache_factory: Callable[[], ClientCache] | None = None,
        cache_key: str = "default",
        cooperative: bool = False,
        digest_fp_rate: float | None = None,
        prefetcher=None,
    ) -> tuple[SpeculationRatios, SimulationRun]:
        """Run one policy and compare it to the matching baseline."""
        run = self._simulator.run(
            policy,
            cache_factory=cache_factory,
            cooperative=cooperative,
            digest_fp_rate=digest_fp_rate,
            prefetcher=prefetcher,
        )
        base = self.baseline(cache_factory=cache_factory, cache_key=cache_key)
        return compare(run.metrics, base.metrics), run


def evaluate_thresholds(
    experiment: Experiment,
    thresholds: list[float],
    *,
    policy_factory: Callable[[float], SpeculationPolicy] | None = None,
    workers: int | None = None,
) -> list[SweepPoint]:
    """The Figure-5 sweep: the four ratios across ``T_p`` values.

    This is the engine behind :meth:`repro.api.Session.sweep` (and the
    deprecated :func:`sweep_thresholds` shim).

    Args:
        experiment: A prepared experiment.
        thresholds: ``T_p`` values, any order (returned in given order).
        policy_factory: Builds the policy per threshold; defaults to the
            paper's :class:`ThresholdPolicy`.
        workers: Shard thresholds across this many processes (see
            :func:`repro.perf.parallel.parallel_map`).  Results are
            byte-identical to the serial sweep for any worker count;
            ``None`` or ``1`` stays serial.
    """
    factory = policy_factory or (lambda tp: ThresholdPolicy(threshold=tp))

    def point(threshold: float) -> SweepPoint:
        ratios, run = experiment.evaluate(factory(threshold))
        return SweepPoint(parameter=threshold, ratios=ratios, run=run)

    if workers is not None and workers > 1:
        # Materialize the shared baseline before forking so every
        # worker inherits it instead of recomputing it per shard.
        experiment.baseline()
        return parallel_map(point, thresholds, workers=workers)
    return [point(threshold) for threshold in thresholds]


def sweep_thresholds(
    experiment: Experiment,
    thresholds: list[float],
    *,
    policy_factory: Callable[[float], SpeculationPolicy] | None = None,
    workers: int | None = None,
) -> list[SweepPoint]:
    """Deprecated shim; use :meth:`repro.api.Session.sweep`.

    Delegates unchanged to :func:`evaluate_thresholds`.
    """
    warnings.warn(
        "sweep_thresholds() is deprecated; use repro.api.Session.sweep "
        "(see docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return evaluate_thresholds(
        experiment, thresholds, policy_factory=policy_factory, workers=workers
    )


def interpolate_at_traffic(
    points: list[SweepPoint], traffic_increase: float
) -> SpeculationRatios | None:
    """Reductions bought by a given extra-traffic budget (Figure 6).

    Linearly interpolates the sweep between the two points bracketing
    ``traffic_increase``; the no-speculation origin (zero extra traffic,
    all ratios 1.0) anchors the left end, so small budgets interpolate
    toward "do nothing".  Returns the last point's ratios when the
    request exceeds the sweep's reach.
    """
    if traffic_increase < 0:
        raise SimulationError("traffic_increase must be non-negative")
    if not points:
        return None
    origin = SpeculationRatios(
        bandwidth_ratio=1.0,
        server_load_ratio=1.0,
        service_time_ratio=1.0,
        miss_rate_ratio=1.0,
    )
    series: list[tuple[float, SpeculationRatios]] = [(0.0, origin)]
    series += sorted(
        ((p.ratios.traffic_increase, p.ratios) for p in points),
        key=lambda item: item[0],
    )
    below = series[0]
    above = None
    for item in series:
        if item[0] <= traffic_increase:
            below = item
        else:
            above = item
            break
    if above is None or below[0] == traffic_increase:
        return below[1]
    span = above[0] - below[0]
    weight = (traffic_increase - below[0]) / span

    def mix(a: float, b: float) -> float:
        return a + (b - a) * weight

    return SpeculationRatios(
        bandwidth_ratio=1.0 + traffic_increase,
        server_load_ratio=mix(below[1].server_load_ratio, above[1].server_load_ratio),
        service_time_ratio=mix(
            below[1].service_time_ratio, above[1].service_time_ratio
        ),
        miss_rate_ratio=mix(below[1].miss_rate_ratio, above[1].miss_rate_ratio),
    )
