"""Both protocols together: dissemination + speculative service.

The paper presents its two mechanisms separately; its conclusion frames
them as complementary — dissemination cuts wide-area traffic and
balances load, speculation cuts service time and origin load.  This
module closes the loop with a combined replay:

* requests route client → deepest proxy ancestor → origin;
* a proxy holding the (disseminated) document answers it there — the
  bytes travel only the hops below the proxy, and the origin never
  sees the request;
* origin misses trigger speculative pushes, which travel the full path;
* clients cache everything they receive (SessionTimeout semantics).

Costs are measured in the units both halves of the paper use:
**bytes×hops** for network traffic and ``ServCost + CommCost·bytes``
(comm scaled by the fraction of the path travelled) for client-visible
latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..config import BASELINE, BaselineConfig
from ..errors import SimulationError
from ..obs.timeseries import TimeSeriesRecorder
from ..obs.trace import Tracer
from ..speculation.caches import ClientCache, make_cache_factory
from ..speculation.dependency import DependencyModel
from ..speculation.policies import SpeculationPolicy
from ..topology.tree import RoutingTree
from ..trace.records import Trace


@dataclass(frozen=True)
class CombinedResult:
    """Outcome of one combined replay.

    Attributes:
        accesses: Client accesses replayed.
        cache_hits: Served from the client's own cache.
        proxy_requests: Served by a proxy (disseminated copy).
        origin_requests: Served by the home server.
        bytes_hops: Total network traffic in bytes×hops.
        service_time: Total client-visible latency (cost units).
        speculated_documents: Documents pushed by the origin.
        speculated_bytes: Bytes pushed speculatively.
    """

    accesses: int
    cache_hits: int
    proxy_requests: int
    origin_requests: int
    bytes_hops: float
    service_time: float
    speculated_documents: int
    speculated_bytes: float

    @property
    def origin_load_fraction(self) -> float:
        """Fraction of accesses the origin had to serve."""
        return self.origin_requests / self.accesses if self.accesses else 0.0


class CombinedProtocolSimulator:
    """Replays a trace with proxies *and* origin-side speculation.

    Args:
        trace: The access trace (remote accesses drive both protocols).
        tree: Clientele tree covering the trace's clients.
        config: Cost model and timeouts.
        model: Dependency model for the speculation half (train it on
            history, as :class:`repro.core.experiment.Experiment` does).
        remote_only: Drop local requests (they stay inside the
            organisation).
    """

    def __init__(
        self,
        trace: Trace,
        tree: RoutingTree,
        config: BaselineConfig = BASELINE,
        *,
        model: DependencyModel | None = None,
        remote_only: bool = True,
    ):
        self._trace = trace.remote_only() if remote_only else trace
        self._tree = tree
        self._config = config
        self._model = model
        missing = self._trace.clients() - tree.leaves
        if missing:
            raise SimulationError(
                f"trace clients missing from tree: {sorted(missing)[:3]}"
            )
        self._paths = {
            client: tree.path_from_root(client)
            for client in self._trace.clients()
        }
        self._depths = {c: len(p) - 1 for c, p in self._paths.items()}

    def run(
        self,
        *,
        proxies: list[str] | None = None,
        disseminated: set[str] | dict[str, set[str]] | None = None,
        policy: SpeculationPolicy | None = None,
        cache_factory: Callable[[], ClientCache] | None = None,
        recorder: TimeSeriesRecorder | None = None,
        tracer: Tracer | None = None,
    ) -> CombinedResult:
        """Replay once with the given proxy holdings and policy.

        Args:
            proxies: Internal tree nodes acting as proxies (None/empty
                disables the dissemination half).
            disseminated: One shared document set, or per-proxy sets.
            policy: Origin speculation policy (None disables that half).
            cache_factory: Client cache constructor.
            recorder: Optional time-series recorder; when given, every
                :class:`CombinedResult` total is also sampled
                cumulatively at the trace timestamps, so the final
                sample of each series equals the result field exactly.
            tracer: Optional tracer receiving one ``speculation`` event
                per pushed rider (trace-timestamped).

        Raises:
            SimulationError: If a proxy is not internal, or a policy is
                given without a dependency model.
        """
        proxies = proxies or []
        for proxy in proxies:
            if self._tree.node_kind(proxy) != "internal":
                raise SimulationError(f"{proxy!r} is not an internal tree node")
        if policy is not None and self._model is None:
            raise SimulationError("speculation needs a dependency model")

        if isinstance(disseminated, dict):
            holdings = {p: frozenset(disseminated.get(p, ())) for p in proxies}
        else:
            shared = frozenset(disseminated or ())
            holdings = {p: shared for p in proxies}
        proxy_depth = {p: self._tree.depth(p) for p in proxies}
        proxy_set = set(proxies)

        config = self._config
        factory = cache_factory or make_cache_factory(config.session_timeout)
        catalog = self._trace.documents
        caches: dict[str, ClientCache] = {}

        cache_hits = 0
        proxy_requests = 0
        origin_requests = 0
        bytes_hops = 0
        service_time = 0.0
        speculated_documents = 0
        speculated_bytes = 0
        accesses = 0

        def sample(timestamp: float) -> None:
            """Cumulatively sample every running total at ``timestamp``."""
            assert recorder is not None
            recorder.sample_at(timestamp, "accesses", float(accesses))
            recorder.sample_at(timestamp, "cache_hits", float(cache_hits))
            recorder.sample_at(
                timestamp, "proxy_requests", float(proxy_requests)
            )
            recorder.sample_at(
                timestamp, "origin_requests", float(origin_requests)
            )
            recorder.sample_at(timestamp, "bytes_hops", float(bytes_hops))
            recorder.sample_at(timestamp, "service_time", service_time)
            recorder.sample_at(
                timestamp, "speculated_documents", float(speculated_documents)
            )
            recorder.sample_at(
                timestamp, "speculated_bytes", float(speculated_bytes)
            )

        for request in self._trace:
            accesses += 1
            client = request.client
            cache = caches.get(client)
            if cache is None:
                cache = factory()
                caches[client] = cache
            cache.access(request.timestamp)

            if cache.contains(request.doc_id):
                cache_hits += 1
                if recorder is not None:
                    sample(request.timestamp)
                continue

            depth = self._depths[client]
            size = request.size

            serving_depth = 0
            for node in self._paths[client]:
                if node in proxy_set and request.doc_id in holdings[node]:
                    serving_depth = max(serving_depth, proxy_depth[node])
            hops = depth - serving_depth
            bytes_hops += size * hops
            service_time += config.serv_cost + config.comm_cost * size * (
                hops / depth if depth else 1.0
            )
            cache.insert(request.doc_id, size)

            if serving_depth > 0:
                proxy_requests += 1
                if recorder is not None:
                    sample(request.timestamp)
                continue  # the origin never sees it: no speculation

            origin_requests += 1
            if policy is not None:
                for candidate in policy.select(
                    request.doc_id, self._model, catalog
                ):
                    document = catalog.get(candidate.doc_id)
                    if document is None or document.size > config.max_size:
                        continue
                    if cache.contains(candidate.doc_id):
                        continue
                    speculated_documents += 1
                    speculated_bytes += document.size
                    bytes_hops += document.size * depth
                    cache.insert(candidate.doc_id, document.size)
                    if tracer is not None:
                        tracer.event(
                            request.timestamp,
                            "speculation",
                            demand=request.doc_id,
                            rider=candidate.doc_id,
                            bytes=document.size,
                            client=client,
                        )
            if recorder is not None:
                sample(request.timestamp)

        return CombinedResult(
            accesses=len(self._trace),
            cache_hits=cache_hits,
            proxy_requests=proxy_requests,
            origin_requests=origin_requests,
            bytes_hops=bytes_hops,
            service_time=service_time,
            speculated_documents=speculated_documents,
            speculated_bytes=speculated_bytes,
        )
