"""Plain-text rendering for the benchmark harness.

Every benchmark prints the same rows/series the paper's table or figure
reports, using these helpers so the output is consistent and diffable.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: Column headers.
        rows: Cell values (stringified with ``str``).
        title: Optional title line above the table.

    Returns:
        The table as a single string (no trailing newline).
    """
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        padded = [
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ]
        return "  ".join(padded).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def format_series(
    title: str,
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    x_label: str = "x",
    y_label: str = "y",
    y_format: str = "{:.3f}",
    bar_width: int = 40,
) -> str:
    """Render a series as labelled rows with an ASCII bar per point.

    Bars are scaled to the maximum |y|, making figure shapes readable
    in terminal output.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be the same length")
    peak = max((abs(y) for y in ys), default=0.0)
    rows = []
    for x, y in zip(xs, ys):
        bar = ""
        if peak > 0:
            bar = "#" * max(0, round(abs(y) / peak * bar_width))
        rows.append((f"{x:g}", y_format.format(y), bar))
    return format_table(
        [x_label, y_label, ""],
        rows,
        title=title,
    )
