"""High-level API: facades, experiment sweeps, and report rendering.

* :mod:`repro.core.server` — :class:`SpeculativeServer`, the
  deployable-shaped facade of the speculative-service protocol.
* :mod:`repro.core.planner` — :class:`DisseminationPlanner`, the
  equivalent facade for the dissemination protocol.
* :mod:`repro.core.experiment` — train/test preparation, threshold
  sweeps, and traffic-level interpolation used by the benchmarks.
* :mod:`repro.core.reporting` — plain-text tables and series for the
  benchmark harness output.
* :mod:`repro.core.sampling` — ratio estimation from client-sampled
  replays, and the ``repro sample --check`` validation gate.
"""

from .server import SpeculativeResponse, SpeculativeServer
from .planner import DisseminationPlan, DisseminationPlanner
from .experiment import (
    Experiment,
    SweepPoint,
    evaluate_thresholds,
    interpolate_at_traffic,
    sweep_thresholds,
    train_test_split,
)
from .reporting import format_series, format_table
from .sensitivity import SensitivityPoint, sweep_workload, workload_sensitivity
from .combined import CombinedProtocolSimulator, CombinedResult
from .sampling import (
    client_contributions,
    estimate_ratios,
    execute_sample_check,
    sample_check_workload,
)

__all__ = [
    "SpeculativeServer",
    "SpeculativeResponse",
    "DisseminationPlanner",
    "DisseminationPlan",
    "Experiment",
    "SweepPoint",
    "train_test_split",
    "evaluate_thresholds",
    "sweep_thresholds",
    "interpolate_at_traffic",
    "format_table",
    "format_series",
    "SensitivityPoint",
    "sweep_workload",
    "workload_sensitivity",
    "CombinedProtocolSimulator",
    "CombinedResult",
    "client_contributions",
    "estimate_ratios",
    "execute_sample_check",
    "sample_check_workload",
]
