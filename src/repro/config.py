"""Baseline simulation parameters.

:class:`BaselineConfig` mirrors, field for field, the baseline parameter
table of section 3.2 of the paper:

==============  =====================
Parameter       Base value
==============  =====================
CommCost        1 unit (per byte)
ServCost        10,000 units (per request)
StrideTimeout   5.0 seconds
SessionTimeout  infinity (multi-session cache)
MaxSize         infinity (no limit)
Policy          ``p*[i, j] >= T_p``
HistoryLength   60 days
UpdateCycle     1 day
==============  =====================

All durations are seconds; sizes are bytes.  ``math.inf`` encodes the
paper's "no limit" settings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

from .errors import SimulationError

#: Seconds in one day; the paper quotes HistoryLength/UpdateCycle in days.
SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class BaselineConfig:
    """The paper's baseline parameter settings (section 3.2, Table 1).

    Instances are immutable; derive variations with :meth:`with_updates`
    so experiment code documents exactly which knob it turns.
    """

    #: Cost of communicating one byte between any server and any client.
    comm_cost: float = 1.0
    #: Cost of servicing one request at the server.
    serv_cost: float = 10_000.0
    #: Two requests within this many seconds form a traversal stride and
    #: count toward the P dependency matrix.
    stride_timeout: float = 5.0
    #: Two requests within this many seconds share a client cache session.
    #: ``inf`` = infinite multi-session cache; ``0`` = no client cache.
    session_timeout: float = math.inf
    #: Documents larger than this are never speculatively serviced.
    max_size: float = math.inf
    #: Threshold applied to ``p*[i, j]`` by the baseline policy.
    threshold: float = 0.25
    #: Days of history used to estimate P and P*.
    history_length_days: float = 60.0
    #: Days between re-estimations of P and P*.
    update_cycle_days: float = 1.0

    def __post_init__(self) -> None:
        if self.comm_cost < 0 or self.serv_cost < 0:
            raise SimulationError("costs must be non-negative")
        if self.stride_timeout < 0:
            raise SimulationError("stride_timeout must be non-negative")
        if self.session_timeout < 0:
            raise SimulationError("session_timeout must be non-negative")
        if self.max_size <= 0:
            raise SimulationError("max_size must be positive")
        if not 0.0 < self.threshold <= 1.0:
            raise SimulationError("threshold must be in (0, 1]")
        if self.history_length_days <= 0:
            raise SimulationError("history_length_days must be positive")
        if self.update_cycle_days <= 0:
            raise SimulationError("update_cycle_days must be positive")

    @property
    def history_length(self) -> float:
        """History window in seconds."""
        return self.history_length_days * SECONDS_PER_DAY

    @property
    def update_cycle(self) -> float:
        """Re-estimation period in seconds."""
        return self.update_cycle_days * SECONDS_PER_DAY

    def with_updates(self, **changes: Any) -> "BaselineConfig":
        """Return a copy with the given fields replaced.

        >>> BaselineConfig().with_updates(threshold=0.5).threshold
        0.5
        """
        return replace(self, **changes)

    def as_table_rows(self) -> list[tuple[str, str]]:
        """Render the configuration as (parameter, value) rows.

        Used by the Table-1 benchmark to print the same table the paper
        reports.
        """

        def fmt(value: float, unit: str) -> str:
            if math.isinf(value):
                return "infinity"
            if value == int(value):
                return f"{int(value):,} {unit}".strip()
            return f"{value} {unit}".strip()

        return [
            ("CommCost", fmt(self.comm_cost, "unit")),
            ("ServCost", fmt(self.serv_cost, "unit")),
            ("StrideTimeout", fmt(self.stride_timeout, "secs")),
            ("SessionTimeout", fmt(self.session_timeout, "secs")),
            ("MaxSize", fmt(self.max_size, "bytes")),
            ("Policy", f"p*[i,j] >= T_p (T_p = {self.threshold})"),
            ("HistoryLength", fmt(self.history_length_days, "days")),
            ("UpdateCycle", fmt(self.update_cycle_days, "days")),
        ]


@dataclass(frozen=True)
class DeploySpec:
    """Process topology for a run: one object, local and distributed.

    ``DeploySpec(processes=1)`` is the classic single-loop mode that every
    verb has always run; larger ``processes`` values describe a genuinely
    distributed deployment of sharded origins and proxy hosts wired over
    real TCP and coordinated by the JSONL event bus.  The spec is frozen
    so a run's topology is fixed at submission, like
    :class:`BaselineConfig`.
    """

    #: Total OS processes to launch (origin shards + proxy hosts).  ``1``
    #: means the in-process single-loop engine — no TCP, no bus.
    processes: int = 1
    #: Number of origin shards the document catalog is hashed across.
    shards: int = 1
    #: Replication factor: each document id owns this many distinct
    #: shards on the consistent-hash ring (failover order).
    replicas: int = 1
    #: Local client-shard forks for the single-loop engine (the former
    #: ``execute_loadtest(workers=)`` knob, now spec-carried).
    workers: int = 1
    #: Wire codec for every transport in the deployment; ``None`` means
    #: inherit the verb's settings (``LiveSettings.codec``).
    codec: str | None = None
    #: Directory holding the append-only JSONL topic logs; ``None``
    #: creates a temporary directory per run.
    bus_path: str | None = None
    #: Interface the TCP listeners bind to.
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise SimulationError("processes must be >= 1")
        if self.shards < 1:
            raise SimulationError("shards must be >= 1")
        if not 1 <= self.replicas <= self.shards:
            raise SimulationError("replicas must be in [1, shards]")
        if self.workers < 1:
            raise SimulationError("workers must be >= 1")
        if self.codec is not None and self.codec not in ("binary", "json"):
            raise SimulationError("codec must be 'binary', 'json', or None")
        if self.processes > 1 and self.processes < self.shards + 1:
            raise SimulationError(
                "a distributed deployment needs at least one process per "
                "origin shard plus one proxy host"
            )

    @property
    def local(self) -> bool:
        """True when the spec describes the in-process single-loop mode."""
        return self.processes <= 1

    @property
    def proxy_hosts(self) -> int:
        """Proxy-host process count in a distributed deployment."""
        return max(self.processes - self.shards, 0)

    def with_updates(self, **changes: Any) -> "DeploySpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: Module-level singleton with the paper's exact baseline values.
BASELINE = BaselineConfig()

#: The default topology: everything in one process, one loop.
LOCAL_DEPLOY = DeploySpec()
