"""Baseline simulation parameters.

:class:`BaselineConfig` mirrors, field for field, the baseline parameter
table of section 3.2 of the paper:

==============  =====================
Parameter       Base value
==============  =====================
CommCost        1 unit (per byte)
ServCost        10,000 units (per request)
StrideTimeout   5.0 seconds
SessionTimeout  infinity (multi-session cache)
MaxSize         infinity (no limit)
Policy          ``p*[i, j] >= T_p``
HistoryLength   60 days
UpdateCycle     1 day
==============  =====================

All durations are seconds; sizes are bytes.  ``math.inf`` encodes the
paper's "no limit" settings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

from .errors import SimulationError

#: Seconds in one day; the paper quotes HistoryLength/UpdateCycle in days.
SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class BaselineConfig:
    """The paper's baseline parameter settings (section 3.2, Table 1).

    Instances are immutable; derive variations with :meth:`with_updates`
    so experiment code documents exactly which knob it turns.
    """

    #: Cost of communicating one byte between any server and any client.
    comm_cost: float = 1.0
    #: Cost of servicing one request at the server.
    serv_cost: float = 10_000.0
    #: Two requests within this many seconds form a traversal stride and
    #: count toward the P dependency matrix.
    stride_timeout: float = 5.0
    #: Two requests within this many seconds share a client cache session.
    #: ``inf`` = infinite multi-session cache; ``0`` = no client cache.
    session_timeout: float = math.inf
    #: Documents larger than this are never speculatively serviced.
    max_size: float = math.inf
    #: Threshold applied to ``p*[i, j]`` by the baseline policy.
    threshold: float = 0.25
    #: Days of history used to estimate P and P*.
    history_length_days: float = 60.0
    #: Days between re-estimations of P and P*.
    update_cycle_days: float = 1.0

    def __post_init__(self) -> None:
        if self.comm_cost < 0 or self.serv_cost < 0:
            raise SimulationError("costs must be non-negative")
        if self.stride_timeout < 0:
            raise SimulationError("stride_timeout must be non-negative")
        if self.session_timeout < 0:
            raise SimulationError("session_timeout must be non-negative")
        if self.max_size <= 0:
            raise SimulationError("max_size must be positive")
        if not 0.0 < self.threshold <= 1.0:
            raise SimulationError("threshold must be in (0, 1]")
        if self.history_length_days <= 0:
            raise SimulationError("history_length_days must be positive")
        if self.update_cycle_days <= 0:
            raise SimulationError("update_cycle_days must be positive")

    @property
    def history_length(self) -> float:
        """History window in seconds."""
        return self.history_length_days * SECONDS_PER_DAY

    @property
    def update_cycle(self) -> float:
        """Re-estimation period in seconds."""
        return self.update_cycle_days * SECONDS_PER_DAY

    def with_updates(self, **changes: Any) -> "BaselineConfig":
        """Return a copy with the given fields replaced.

        >>> BaselineConfig().with_updates(threshold=0.5).threshold
        0.5
        """
        return replace(self, **changes)

    def as_table_rows(self) -> list[tuple[str, str]]:
        """Render the configuration as (parameter, value) rows.

        Used by the Table-1 benchmark to print the same table the paper
        reports.
        """

        def fmt(value: float, unit: str) -> str:
            if math.isinf(value):
                return "infinity"
            if value == int(value):
                return f"{int(value):,} {unit}".strip()
            return f"{value} {unit}".strip()

        return [
            ("CommCost", fmt(self.comm_cost, "unit")),
            ("ServCost", fmt(self.serv_cost, "unit")),
            ("StrideTimeout", fmt(self.stride_timeout, "secs")),
            ("SessionTimeout", fmt(self.session_timeout, "secs")),
            ("MaxSize", fmt(self.max_size, "bytes")),
            ("Policy", f"p*[i,j] >= T_p (T_p = {self.threshold})"),
            ("HistoryLength", fmt(self.history_length_days, "days")),
            ("UpdateCycle", fmt(self.update_cycle_days, "days")),
        ]


#: Module-level singleton with the paper's exact baseline values.
BASELINE = BaselineConfig()
