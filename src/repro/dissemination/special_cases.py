"""Closed-form special cases of the allocation (paper section 2.3).

Three symmetric settings admit closed forms that illuminate the general
solution:

* **Equally effective duplication** (eq. 6): all servers share λ; a
  server's share is the even split plus a popularity correction against
  the geometric mean of all rates.
* **Equally popular servers** (eq. 7): all servers share R; servers
  whose popularity is more uniform (smaller λ) get more storage under a
  lax budget, while a tight budget favours intermediate λ — the
  hump-shaped curves of Figure 2.
* **Symmetric clusters** (eqs. 8–10): identical servers split ``B_0``
  evenly; eq. 10 sizes the proxy for a target bandwidth reduction —
  the paper's "36 MB shields 10 servers by 90%" estimate.
"""

from __future__ import annotations

import math

from ..errors import AllocationError


def _validate_common(n_servers: int, budget: float) -> None:
    if n_servers <= 0:
        raise AllocationError("need at least one server")
    if budget < 0:
        raise AllocationError("budget must be non-negative")


def equal_effectiveness_allocation(
    rates: list[float], lam: float, budget: float
) -> list[float]:
    """Equation 6: shared λ, arbitrary rates.

        B_j = B_0/n + (1/λ) · ln( R_j / geometric_mean(R) )

    Note the result can be negative for very unpopular servers when the
    budget is tight; the paper presents the unconstrained form, and this
    function reproduces it verbatim (use
    :func:`repro.dissemination.allocation.exponential_allocation` for
    the non-negative optimum).

    Raises:
        AllocationError: On invalid λ, empty or non-positive rates.
    """
    _validate_common(len(rates), budget)
    if not lam > 0:
        raise AllocationError("lambda must be positive")
    if any(r <= 0 for r in rates):
        raise AllocationError("rates must be positive for the closed form")
    n = len(rates)
    log_geo_mean = sum(math.log(r) for r in rates) / n
    return [budget / n + (math.log(r) - log_geo_mean) / lam for r in rates]


def equal_popularity_allocation(lams: list[float], budget: float) -> list[float]:
    """Equation 7: shared R, arbitrary λ.

        B_j = ( B_0 + Σ_i (1/λ_i) ln(λ_j/λ_i) ) / ( Σ_i λ_j/λ_i )

    Reproduces the paper's unconstrained closed form (may go negative
    under a tight budget for extreme λ_j).

    Raises:
        AllocationError: On empty input or non-positive λ.
    """
    _validate_common(len(lams), budget)
    if any(not lam > 0 for lam in lams):
        raise AllocationError("all lambdas must be positive")
    allocations = []
    for lam_j in lams:
        denom = sum(lam_j / lam_i for lam_i in lams)
        correction = sum(math.log(lam_j / lam_i) / lam_i for lam_i in lams)
        allocations.append((budget + correction) / denom)
    return allocations


def symmetric_allocation(n_servers: int, budget: float) -> float:
    """Equation 8: identical servers split the budget evenly."""
    _validate_common(n_servers, budget)
    return budget / n_servers


def symmetric_alpha(n_servers: int, lam: float, budget: float) -> float:
    """Equation 9: intercepted fraction of a symmetric cluster.

        α_C = 1 − exp(−λ · B_0 / n)
    """
    _validate_common(n_servers, budget)
    if not lam > 0:
        raise AllocationError("lambda must be positive")
    return 1.0 - math.exp(-lam * budget / n_servers)


def symmetric_storage_for_reduction(
    n_servers: int, lam: float, reduction: float
) -> float:
    """Equation 10: proxy storage for a target bandwidth reduction.

        B_0 = (n/λ) · ln( 1 / (1 − reduction) )

    ``reduction`` is the fraction of remote bandwidth to shield (the
    paper words eq. 10 with α as the *residual* fraction; expressed in
    the shielded fraction the two forms coincide).  With the paper's
    λ = 6.247×10⁻⁷ and n = 10, a 90% reduction needs ≈ 36.9 MB.

    Raises:
        AllocationError: If reduction is outside [0, 1) or λ <= 0.
    """
    if n_servers <= 0:
        raise AllocationError("need at least one server")
    if not lam > 0:
        raise AllocationError("lambda must be positive")
    if not 0.0 <= reduction < 1.0:
        raise AllocationError("reduction must be in [0, 1)")
    return (n_servers / lam) * math.log(1.0 / (1.0 - reduction))
