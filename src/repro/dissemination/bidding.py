"""Renting service proxies: the paper's bidding model (§2.1).

The paper envisions service proxies as information "outlets ...
whose bandwidth could be (say) rented", with a server *bidding* for a
subset of the proxies offered to it.  This module implements that
selection: given offers (a proxy location with storage capacity and a
price) and the server's demand per subtree, choose the offers that
maximize bytes×hops savings within a monetary budget.

Selection is greedy by marginal-savings-per-cost over the clientele
tree — the same submodular-coverage structure as proxy placement, so
greedy carries the usual (1 − 1/e) guarantee against the optimal
subset for the same budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError
from ..topology.tree import RoutingTree


@dataclass(frozen=True, slots=True)
class ProxyOffer:
    """One rentable proxy.

    Attributes:
        name: Offer identifier.
        node: The tree node the proxy sits at (must be internal).
        capacity_bytes: Storage the offer includes.
        price: Cost of accepting the offer (arbitrary money units).
    """

    name: str
    node: str
    capacity_bytes: float
    price: float

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("offer name must be non-empty")
        if self.capacity_bytes <= 0:
            raise TopologyError(f"offer {self.name!r}: capacity must be positive")
        if self.price < 0:
            raise TopologyError(f"offer {self.name!r}: price must be non-negative")


@dataclass(frozen=True)
class BiddingOutcome:
    """Result of an auction round.

    Attributes:
        accepted: Offers taken, in acceptance order.
        total_price: Money spent.
        expected_savings: Demand-weighted hop savings of the selection
            (same objective as proxy placement).
    """

    accepted: tuple[ProxyOffer, ...]
    total_price: float
    expected_savings: float


def _selection_savings(
    tree: RoutingTree,
    demand_by_client: dict[str, float],
    nodes: set[str],
) -> float:
    total = 0.0
    for client, demand in demand_by_client.items():
        best = 0
        for node in tree.path_from_root(client):
            if node in nodes:
                best = max(best, tree.depth(node))
        total += demand * best
    return total


def select_offers(
    tree: RoutingTree,
    demand_by_client: dict[str, float],
    offers: list[ProxyOffer],
    budget: float,
) -> BiddingOutcome:
    """Choose proxy offers maximizing savings within a budget.

    Args:
        tree: The server's clientele tree.
        demand_by_client: Bytes requested per client leaf.
        offers: The offers on the table.
        budget: Money available.

    Returns:
        The greedy selection (by marginal savings per unit price; free
        offers are always worth taking when they add savings).

    Raises:
        TopologyError: On a negative budget, an offer at a non-internal
            node, or demand at a non-leaf.
    """
    if budget < 0:
        raise TopologyError("budget must be non-negative")
    unknown_demand = set(demand_by_client) - tree.leaves
    if unknown_demand:
        raise TopologyError(
            f"demand for non-leaf nodes: {sorted(unknown_demand)[:3]}"
        )
    for offer in offers:
        if tree.node_kind(offer.node) != "internal":
            raise TopologyError(
                f"offer {offer.name!r} is not at an internal tree node"
            )

    accepted: list[ProxyOffer] = []
    accepted_nodes: set[str] = set()
    remaining_budget = budget
    remaining_offers = list(offers)
    current_savings = 0.0

    while remaining_offers:
        best_offer = None
        best_gain = 0.0
        best_score = 0.0
        for offer in remaining_offers:
            if offer.price > remaining_budget:
                continue
            gain = (
                _selection_savings(
                    tree, demand_by_client, accepted_nodes | {offer.node}
                )
                - current_savings
            )
            if gain <= 0:
                continue
            score = gain / offer.price if offer.price > 0 else float("inf")
            if score > best_score or (
                score == best_score
                and best_offer is not None
                and offer.name < best_offer.name
            ):
                best_offer, best_gain, best_score = offer, gain, score
        if best_offer is None:
            break
        accepted.append(best_offer)
        accepted_nodes.add(best_offer.node)
        remaining_budget -= best_offer.price
        current_savings += best_gain
        remaining_offers.remove(best_offer)

    return BiddingOutcome(
        accepted=tuple(accepted),
        total_price=budget - remaining_budget,
        expected_savings=current_savings,
    )
