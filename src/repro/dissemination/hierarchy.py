"""Hierarchical (multi-level) dissemination.

Section 2.3 ends with the proxy-bottleneck question: if one proxy
absorbs 90-96% of its servers' remote traffic, doesn't it become the
bottleneck?  "The answer is yes, unless the process of disseminating
popular information continues for another level, and so on."

:class:`HierarchicalShielding` quantifies that argument for symmetric
clusters under the exponential model: requests flow from clients down
through proxy levels toward the home servers; each level intercepts a
fraction of what reaches it (eq. 9), and what remains continues down.
The per-node load at every level falls out directly, showing how an
extra level divides the absorbed traffic across more machines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError
from .special_cases import symmetric_alpha


@dataclass(frozen=True, slots=True)
class ProxyLevel:
    """One level of the dissemination hierarchy.

    Attributes:
        n_nodes: Proxies at this level (level 0 is closest to clients).
        storage_per_node: Dissemination storage ``B_0`` per proxy.
        servers_fronted: How many (symmetric) home servers' document
            sets each proxy at this level fronts — the ``n`` of eq. 9.
    """

    n_nodes: int
    storage_per_node: float
    servers_fronted: int

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise TopologyError("level needs at least one node")
        if self.storage_per_node < 0:
            raise TopologyError("storage must be non-negative")
        if self.servers_fronted <= 0:
            raise TopologyError("each proxy must front at least one server")


@dataclass(frozen=True, slots=True)
class LevelLoad:
    """Load outcome at one level (or at the home servers).

    Attributes:
        label: ``"level-k"`` or ``"home-servers"``.
        n_nodes: Machines sharing the level's absorbed load.
        absorbed_fraction: Fraction of *total offered* requests this
            level absorbs.
        load_per_node: Absorbed requests divided by nodes.
    """

    label: str
    n_nodes: int
    absorbed_fraction: float
    load_per_node: float


class HierarchicalShielding:
    """Load distribution across a multi-level dissemination hierarchy.

    Args:
        levels: Proxy levels ordered from the clients inward (element 0
            receives requests first).
        lam: The shared exponential popularity constant λ.
        n_home_servers: Home servers at the bottom of the hierarchy.

    Requests hit the outermost level first; each level intercepts the
    eq.-9 fraction of the traffic reaching it (its storage divided over
    the servers it fronts), and the residual flows inward, ending at
    the home servers.
    """

    def __init__(
        self, levels: list[ProxyLevel], lam: float, n_home_servers: int
    ):
        if not levels:
            raise TopologyError("need at least one proxy level")
        if not lam > 0:
            raise TopologyError("lambda must be positive")
        if n_home_servers <= 0:
            raise TopologyError("need at least one home server")
        self._levels = list(levels)
        self._lam = lam
        self._n_home = n_home_servers

    def distribute(self, offered_requests: float) -> list[LevelLoad]:
        """Propagate an offered load through the hierarchy.

        Args:
            offered_requests: Total client requests per unit time.

        Returns:
            One :class:`LevelLoad` per proxy level (outermost first)
            plus a final entry for the home servers.  Absorbed
            fractions sum to 1.
        """
        if offered_requests < 0:
            raise TopologyError("offered load must be non-negative")
        outcomes: list[LevelLoad] = []
        remaining = 1.0
        for index, level in enumerate(self._levels):
            alpha = symmetric_alpha(
                level.servers_fronted, self._lam, level.storage_per_node
            )
            absorbed = remaining * alpha
            outcomes.append(
                LevelLoad(
                    label=f"level-{index}",
                    n_nodes=level.n_nodes,
                    absorbed_fraction=absorbed,
                    load_per_node=absorbed * offered_requests / level.n_nodes,
                )
            )
            remaining -= absorbed
        outcomes.append(
            LevelLoad(
                label="home-servers",
                n_nodes=self._n_home,
                absorbed_fraction=remaining,
                load_per_node=remaining * offered_requests / self._n_home,
            )
        )
        return outcomes

    def peak_node_load(self, offered_requests: float) -> float:
        """The busiest machine's load — the bottleneck measure."""
        return max(
            outcome.load_per_node
            for outcome in self.distribute(offered_requests)
        )
