"""The popularity-based data dissemination protocol (paper section 2).

* :mod:`repro.dissemination.allocation` — optimal division of a proxy's
  storage among its constituent servers: the exponential closed form of
  equations 4–5 (with non-negativity handled by an active-set
  water-filling loop) and a model-free greedy allocator for arbitrary
  empirical popularity curves.
* :mod:`repro.dissemination.special_cases` — the closed forms of
  equations 6 (equal effectiveness), 7 (equal popularity) and 8–10
  (symmetric clusters), including the paper's proxy-sizing estimates.
* :mod:`repro.dissemination.simulator` — the trace-driven bytes×hops
  simulation behind Figure 3.
* :mod:`repro.dissemination.shielding` — dynamic shielding: a proxy
  sheds load by shrinking its dissemination budget when overloaded.
* :mod:`repro.dissemination.weighted` — the section-2.1 extension:
  communication-cost-aware allocation.
* :mod:`repro.dissemination.hierarchy` — multi-level dissemination:
  the "continue for another level" answer to the proxy bottleneck.
"""

from .allocation import (
    ServerModel,
    AllocationResult,
    exponential_allocation,
    greedy_document_allocation,
    alpha_for_allocation,
)
from .special_cases import (
    equal_effectiveness_allocation,
    equal_popularity_allocation,
    symmetric_allocation,
    symmetric_alpha,
    symmetric_storage_for_reduction,
)
from .simulator import (
    DisseminationResult,
    DisseminationSimulator,
    per_proxy_popular_docs,
    select_popular_bytes,
)
from .shielding import DynamicShield, ShieldSnapshot
from .weighted import hop_weights_from_tree, weighted_exponential_allocation
from .hierarchy import HierarchicalShielding, LevelLoad, ProxyLevel
from .freshness import FreshnessResult, FreshnessSimulator
from .cluster_sim import ClusterResult, ClusterSimulator, ServerInterception
from .bidding import BiddingOutcome, ProxyOffer, select_offers

__all__ = [
    "ServerModel",
    "AllocationResult",
    "exponential_allocation",
    "greedy_document_allocation",
    "alpha_for_allocation",
    "equal_effectiveness_allocation",
    "equal_popularity_allocation",
    "symmetric_allocation",
    "symmetric_alpha",
    "symmetric_storage_for_reduction",
    "DisseminationResult",
    "DisseminationSimulator",
    "select_popular_bytes",
    "per_proxy_popular_docs",
    "DynamicShield",
    "ShieldSnapshot",
    "weighted_exponential_allocation",
    "hop_weights_from_tree",
    "HierarchicalShielding",
    "ProxyLevel",
    "LevelLoad",
    "FreshnessSimulator",
    "FreshnessResult",
    "ClusterSimulator",
    "ClusterResult",
    "ServerInterception",
    "ProxyOffer",
    "BiddingOutcome",
    "select_offers",
]
