"""Cluster-level dissemination simulation.

The paper's model (§2.1) is a *cluster*: one service proxy fronting
several home servers, with the proxy's storage divided among them by
the allocation of eqs. 4-5.  :class:`ClusterSimulator` closes the loop
empirically: it takes each member server's trace, a dissemination plan
(byte allocation per server), materializes each server's most popular
documents into the proxy, replays all traces, and reports both the
overall intercepted fraction α_C and the per-server interception — so
the analytical α of the planner can be validated against trace replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..popularity.profile import PopularityProfile
from ..trace.records import Trace


@dataclass(frozen=True)
class ServerInterception:
    """Interception outcome for one member server.

    Attributes:
        server: Server name.
        requests: Remote requests the server's clients issued.
        intercepted: Requests answered by the proxy.
        bytes_total: Remote bytes requested.
        bytes_intercepted: Bytes served by the proxy.
    """

    server: str
    requests: int
    intercepted: int
    bytes_total: float
    bytes_intercepted: float

    @property
    def request_alpha(self) -> float:
        return self.intercepted / self.requests if self.requests else 0.0

    @property
    def byte_alpha(self) -> float:
        return (
            self.bytes_intercepted / self.bytes_total if self.bytes_total else 0.0
        )


@dataclass(frozen=True)
class ClusterResult:
    """Aggregate outcome of a cluster replay.

    Attributes:
        per_server: Interception per member server.
        storage_used: Bytes of proxy storage actually filled.
    """

    per_server: dict[str, ServerInterception]
    storage_used: float

    @property
    def alpha(self) -> float:
        """The empirical α_C of eq. 1 (request-weighted)."""
        requests = sum(s.requests for s in self.per_server.values())
        intercepted = sum(s.intercepted for s in self.per_server.values())
        return intercepted / requests if requests else 0.0

    @property
    def byte_alpha(self) -> float:
        """Byte-weighted interception (bandwidth shielded)."""
        total = sum(s.bytes_total for s in self.per_server.values())
        hit = sum(s.bytes_intercepted for s in self.per_server.values())
        return hit / total if total else 0.0


class ClusterSimulator:
    """Replays member-server traces against one proxy's holdings.

    Args:
        traces: Per-server traces (server name → trace).
        remote_only: Only remote requests are interceptable.
    """

    def __init__(self, traces: dict[str, Trace], *, remote_only: bool = True):
        if not traces:
            raise SimulationError("cluster needs at least one server trace")
        self._traces = {
            name: (trace.remote_only() if remote_only else trace)
            for name, trace in traces.items()
        }
        self._remote_only = remote_only
        self._profiles = {
            name: PopularityProfile.from_trace(trace)
            for name, trace in self._traces.items()
            if len(trace)
        }

    def materialize(self, allocations: dict[str, float]) -> dict[str, set[str]]:
        """Pack each server's most popular documents into its bytes.

        Args:
            allocations: Bytes granted per server (e.g. from
                :meth:`repro.core.planner.DisseminationPlanner.plan`).

        Returns:
            Server name → document ids held at the proxy.

        Raises:
            SimulationError: If an allocation names an unknown server.
        """
        unknown = set(allocations) - set(self._traces)
        if unknown:
            raise SimulationError(f"unknown servers {sorted(unknown)}")
        holdings: dict[str, set[str]] = {}
        for name, granted in allocations.items():
            chosen: set[str] = set()
            used = 0.0
            profile = self._profiles.get(name)
            if profile is not None:
                for stat in profile.ranked(remote_only=self._remote_only):
                    hits = (
                        stat.remote_requests
                        if self._remote_only
                        else stat.requests
                    )
                    if hits <= 0:
                        break
                    if used + stat.size <= granted:
                        used += stat.size
                        chosen.add(stat.doc_id)
            holdings[name] = chosen
        return holdings

    def replay(self, holdings: dict[str, set[str]]) -> ClusterResult:
        """Replay every server's trace against the proxy's holdings."""
        per_server: dict[str, ServerInterception] = {}
        storage = 0.0
        for name, trace in self._traces.items():
            held = holdings.get(name, set())
            sizes = trace.documents
            storage += sum(sizes[d].size for d in held if d in sizes)
            requests = 0
            intercepted = 0
            bytes_total = 0
            bytes_hit = 0
            for request in trace:
                requests += 1
                bytes_total += request.size
                if request.doc_id in held:
                    intercepted += 1
                    bytes_hit += request.size
            per_server[name] = ServerInterception(
                server=name,
                requests=requests,
                intercepted=intercepted,
                bytes_total=bytes_total,
                bytes_intercepted=bytes_hit,
            )
        return ClusterResult(per_server=per_server, storage_used=storage)

    def run_plan(self, allocations: dict[str, float]) -> ClusterResult:
        """Materialize an allocation and replay in one step."""
        return self.replay(self.materialize(allocations))
