"""Freshness of disseminated copies under document updates.

Section 2 classifies documents into mutable and immutable precisely so
servers can "decide which documents to disseminate": a disseminated
copy of a frequently-updated document goes stale at its proxies.  This
module quantifies that decision.  Given a trace, a set of disseminated
documents and the home server's update events, it replays the requests
and measures

* **coverage** — the fraction of requests the proxy serves, and
* **staleness** — the fraction of proxy-served requests answered from
  a copy older than the server's current version,

under several maintenance policies:

* ``"ignore"`` — copies are pushed once and never refreshed;
* ``"exclude-mutable"`` — mutable documents are simply not disseminated
  (the paper's §2 recommendation);
* ``"push-updates"`` — the server pushes a fresh copy on every update
  (never stale, but each update costs the document's bytes);
* ``"periodic-refresh"`` — proxies re-pull every ``refresh_cycle_days``.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from ..config import SECONDS_PER_DAY
from ..errors import SimulationError
from ..trace.records import Trace
from ..workload.updates import UpdateEvent

#: Maintenance policies understood by :class:`FreshnessSimulator`.
POLICIES = ("ignore", "exclude-mutable", "push-updates", "periodic-refresh")


@dataclass(frozen=True)
class FreshnessResult:
    """Outcome of one freshness simulation.

    Attributes:
        policy: The maintenance policy simulated.
        requests: Requests replayed.
        proxy_hits: Requests served by the proxy.
        stale_hits: Proxy-served requests answered from a stale copy.
        refresh_bytes: Bytes spent keeping copies fresh (pushes on
            update, or periodic re-pulls).
    """

    policy: str
    requests: int
    proxy_hits: int
    stale_hits: int
    refresh_bytes: float

    @property
    def coverage(self) -> float:
        return self.proxy_hits / self.requests if self.requests else 0.0

    @property
    def stale_fraction(self) -> float:
        """Stale deliveries among proxy-served requests."""
        return self.stale_hits / self.proxy_hits if self.proxy_hits else 0.0


class FreshnessSimulator:
    """Replays a trace against a proxy holding disseminated copies.

    Args:
        trace: The access trace (requests the proxy intercepts).
        updates: The home server's update events (day granularity, as
            produced by :class:`repro.workload.updates.UpdateProcess`).
        remote_only: Only remote requests reach the proxy.
    """

    def __init__(
        self,
        trace: Trace,
        updates: list[UpdateEvent],
        *,
        remote_only: bool = True,
    ):
        self._trace = trace.remote_only() if remote_only else trace
        self._update_days: dict[str, list[int]] = {}
        for event in updates:
            self._update_days.setdefault(event.doc_id, []).append(event.day)
        for days in self._update_days.values():
            days.sort()

    def _version_at(self, doc_id: str, day: float) -> int:
        """Number of updates to a document up to (and including) a day."""
        days = self._update_days.get(doc_id)
        if not days:
            return 0
        return bisect.bisect_right(days, day)

    def simulate(
        self,
        disseminated: set[str],
        *,
        policy: str = "ignore",
        mutable_docs: set[str] | None = None,
        refresh_cycle_days: float = 7.0,
    ) -> FreshnessResult:
        """Replay the trace under one maintenance policy.

        Args:
            disseminated: Documents pushed to the proxy at day 0.
            policy: One of :data:`POLICIES`.
            mutable_docs: The mutable subset (required by
                ``"exclude-mutable"``).
            refresh_cycle_days: Re-pull period for
                ``"periodic-refresh"``.

        Raises:
            SimulationError: On an unknown policy or missing inputs.
        """
        if policy not in POLICIES:
            raise SimulationError(f"unknown policy {policy!r}")
        if policy == "exclude-mutable" and mutable_docs is None:
            raise SimulationError("exclude-mutable needs mutable_docs")
        if policy == "periodic-refresh" and refresh_cycle_days <= 0:
            raise SimulationError("refresh_cycle_days must be positive")

        held = set(disseminated)
        if policy == "exclude-mutable":
            held -= mutable_docs or set()

        origin = self._trace.start_time
        sizes = self._trace.documents

        proxy_hits = 0
        stale_hits = 0
        for request in self._trace:
            if request.doc_id not in held:
                continue
            proxy_hits += 1
            day = (request.timestamp - origin) / SECONDS_PER_DAY
            server_version = self._version_at(request.doc_id, day)
            if policy == "push-updates":
                proxy_version = server_version
            elif policy == "periodic-refresh":
                last_refresh = math.floor(day / refresh_cycle_days) * refresh_cycle_days
                proxy_version = self._version_at(request.doc_id, last_refresh)
            else:  # ignore / exclude-mutable: day-0 copies only
                proxy_version = self._version_at(request.doc_id, 0.0)
            if server_version > proxy_version:
                stale_hits += 1

        refresh_bytes = 0
        trace_days = self._trace.duration / SECONDS_PER_DAY
        if policy == "push-updates":
            for doc_id in held:
                document = sizes.get(doc_id)
                if document is None:
                    continue
                updates_in_window = self._version_at(doc_id, trace_days)
                updates_in_window -= self._version_at(doc_id, 0.0)
                refresh_bytes += document.size * updates_in_window
        elif policy == "periodic-refresh":
            n_refreshes = math.floor(trace_days / refresh_cycle_days)
            for doc_id in held:
                document = sizes.get(doc_id)
                if document is not None:
                    refresh_bytes += document.size * n_refreshes

        return FreshnessResult(
            policy=policy,
            requests=len(self._trace),
            proxy_hits=proxy_hits,
            stale_hits=stale_hits,
            refresh_bytes=refresh_bytes,
        )
