"""Communication-cost-aware allocation (paper section 2.1's extension).

The base protocol deliberately uses only log-derivable quantities, but
the paper notes: "if information about the communication cost between
servers, proxies, and clients is available, then our protocol could be
easily adapted to weigh such knowledge into our resource allocation
methodology."

This module is that adaptation.  With ``w_i`` the per-byte cost *saved*
when the proxy intercepts a request for server ``i`` (e.g. the hop
count between server ``i`` and the proxy), the objective becomes

    maximize  Σ w_i · R_i · H_i(B_i)

which is the original problem with rates rescaled to ``w_i · R_i`` —
so the optimal split falls out of the same closed form.
"""

from __future__ import annotations

from ..errors import AllocationError
from .allocation import AllocationResult, ServerModel, exponential_allocation


def weighted_exponential_allocation(
    servers: list[ServerModel],
    weights: dict[str, float],
    budget: float,
) -> AllocationResult:
    """Optimal allocation with per-server interception value weights.

    Args:
        servers: The cluster's servers (log-derived R and λ).
        weights: ``w_i`` per server name — the value of intercepting
            one byte of that server's traffic (e.g. saved hops).  Every
            server must have a weight; weights must be non-negative.
        budget: Proxy storage ``B_0``.

    Returns:
        The allocation that maximizes cost-weighted interception.  The
        reported ``alpha`` is the weighted objective normalised by the
        total weighted rate.

    Raises:
        AllocationError: On a missing or negative weight.
    """
    missing = {s.name for s in servers} - set(weights)
    if missing:
        raise AllocationError(f"missing weights for servers {sorted(missing)}")
    for name, weight in weights.items():
        if weight < 0:
            raise AllocationError(f"weight for {name!r} must be non-negative")

    scaled = [
        ServerModel(name=s.name, rate=s.rate * weights[s.name], lam=s.lam)
        for s in servers
    ]
    return exponential_allocation(scaled, budget)


def hop_weights_from_tree(
    tree, proxy: str, server_nodes: dict[str, str]
) -> dict[str, float]:
    """Derive interception weights from a routing tree.

    The value of intercepting a byte of server ``i``'s traffic at the
    proxy equals the hops between that server's node and the proxy node
    (the wide-area distance the byte no longer travels).

    Args:
        tree: A :class:`repro.topology.tree.RoutingTree`.
        proxy: The proxy's node id (must be on each server's root path
            or vice versa; in the usual cluster layout the proxy is an
            ancestor of its servers, so the hop count is the depth
            difference).
        server_nodes: Server name → tree node id.

    Returns:
        Server name → hop-count weight (minimum 1.0: intercepting at
        the server itself still saves the request handling).
    """
    weights = {}
    proxy_depth = tree.depth(proxy)
    for name, node in server_nodes.items():
        weights[name] = float(max(1, abs(tree.depth(node) - proxy_depth)))
    return weights
