"""Dynamic shielding: a proxy sheds load by shrinking its budget.

Section 2.3 closes with the observation that a proxy absorbing 90%+ of
its servers' remote traffic can itself become a bottleneck; the proposed
remedy is to *dynamically* adjust the level of shielding — when the
proxy is overloaded, reduce ``B_0``, pushing requests back to the home
servers.

:class:`DynamicShield` implements that control loop over fixed
observation periods (e.g. days): after each period, if the proxy served
more than ``capacity`` requests it multiplies the budget by
``shrink_factor``; if it has headroom it grows the budget back toward
the configured maximum.  The per-period intercepted fraction follows the
symmetric-cluster model (eq. 9), so the loop's behaviour is exact under
the paper's assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .special_cases import symmetric_alpha


@dataclass(frozen=True, slots=True)
class ShieldSnapshot:
    """State of the shield after one observation period.

    Attributes:
        period: Period index (0-based).
        budget: ``B_0`` in effect during the period.
        offered_requests: Remote requests offered by clients.
        proxy_load: Requests the proxy absorbed.
        server_load: Requests pushed back to the home servers.
    """

    period: int
    budget: float
    offered_requests: float
    proxy_load: float
    server_load: float

    @property
    def alpha(self) -> float:
        return self.proxy_load / self.offered_requests if self.offered_requests else 0.0


class DynamicShield:
    """Budget control loop for an overloadable proxy.

    Args:
        n_servers: Servers in the (symmetric) cluster.
        lam: Shared popularity constant λ.
        max_budget: The storage actually available at the proxy.
        capacity: Requests per period the proxy can absorb.
        shrink_factor: Multiplier applied to the budget on overload.
        grow_factor: Multiplier applied when load is under capacity.
    """

    def __init__(
        self,
        n_servers: int,
        lam: float,
        max_budget: float,
        capacity: float,
        *,
        shrink_factor: float = 0.5,
        grow_factor: float = 1.25,
    ):
        if n_servers <= 0 or not lam > 0:
            raise SimulationError("need positive n_servers and lambda")
        if max_budget <= 0 or capacity <= 0:
            raise SimulationError("max_budget and capacity must be positive")
        if not 0.0 < shrink_factor < 1.0:
            raise SimulationError("shrink_factor must be in (0, 1)")
        if grow_factor <= 1.0:
            raise SimulationError("grow_factor must exceed 1")
        self._n = n_servers
        self._lam = lam
        self._max_budget = max_budget
        self._capacity = capacity
        self._shrink = shrink_factor
        self._grow = grow_factor

    def run(self, offered_per_period: list[float]) -> list[ShieldSnapshot]:
        """Run the control loop over a sequence of offered loads.

        Args:
            offered_per_period: Remote requests offered in each period.

        Returns:
            One snapshot per period; the budget used in period ``t``
            reflects the overload decisions of periods ``< t``.
        """
        snapshots: list[ShieldSnapshot] = []
        budget = self._max_budget
        for period, offered in enumerate(offered_per_period):
            if offered < 0:
                raise SimulationError("offered load must be non-negative")
            alpha = symmetric_alpha(self._n, self._lam, budget)
            proxy_load = alpha * offered
            snapshots.append(
                ShieldSnapshot(
                    period=period,
                    budget=budget,
                    offered_requests=offered,
                    proxy_load=proxy_load,
                    server_load=offered - proxy_load,
                )
            )
            if proxy_load > self._capacity:
                budget *= self._shrink
            else:
                budget = min(self._max_budget, budget * self._grow)
        return snapshots
