"""Optimal proxy storage allocation (paper equations 1–5).

A cluster has a proxy ``S_0`` with ``B_0`` bytes of storage, fronting
servers ``S_1..S_n``.  Server ``i`` serves ``R_i`` bytes/unit-time to
clients outside the cluster, and duplicating its most popular ``b``
bytes at the proxy intercepts a fraction ``H_i(b)`` of its requests.
The proxy maximizes the intercepted fraction

    α_C = Σ R_i · H_i(B_i)  /  Σ R_i            (eq. 1)

subject to ``Σ B_i = B_0``.  At the optimum all marginal values are
equal (eq. 2): ``h_j(B_j) · R_j = k · Σ R_i``.

Two allocators are provided:

* :func:`exponential_allocation` — the paper's closed form under
  ``H_i(b) = 1 − exp(−λ_i b)`` (eqs. 4–5), extended with an active-set
  loop so allocations are never negative (the raw closed form can ask
  for negative storage on very unpopular servers; the KKT optimum pins
  those at zero and re-solves).
* :func:`greedy_document_allocation` — model-free: allocates storage
  document by document across servers in decreasing marginal value
  density ``R_i · Δhits / Δbytes``.  Because each ``H_i`` is concave in
  the greedy packing order, this matches the water-filling optimum up
  to document granularity and works for arbitrary empirical curves.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from ..errors import AllocationError
from ..popularity.profile import PopularityProfile


@dataclass(frozen=True, slots=True)
class ServerModel:
    """One server's log-derived parameters.

    Attributes:
        name: Server identifier.
        rate: ``R_i`` — bytes served per unit time to outside clients.
        lam: ``λ_i`` of the exponential popularity model (per byte).
    """

    name: str
    rate: float
    lam: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise AllocationError(f"server {self.name!r}: rate must be >= 0")
        if not self.lam > 0:
            raise AllocationError(f"server {self.name!r}: lambda must be > 0")

    def coverage(self, allocated_bytes: float) -> float:
        """``H_i(b)`` under the exponential model."""
        return 1.0 - math.exp(-self.lam * allocated_bytes)


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of a storage allocation.

    Attributes:
        allocations: Bytes granted to each server, by name.
        alpha: The achieved intercepted fraction ``α_C`` (eq. 1).
        budget: The proxy storage ``B_0`` that was divided.
    """

    allocations: dict[str, float]
    alpha: float
    budget: float

    @property
    def used(self) -> float:
        return sum(self.allocations.values())


def alpha_for_allocation(
    servers: list[ServerModel], allocations: dict[str, float]
) -> float:
    """Evaluate eq. 1 for a given allocation under the exponential model."""
    total_rate = sum(s.rate for s in servers)
    if total_rate <= 0:
        return 0.0
    covered = sum(s.rate * s.coverage(allocations.get(s.name, 0.0)) for s in servers)
    return covered / total_rate


def exponential_allocation(
    servers: list[ServerModel], budget: float
) -> AllocationResult:
    """The paper's optimal allocation (eqs. 4–5) with non-negativity.

    Under ``H_i(b) = 1 − exp(−λ_i b)`` the stationarity condition gives

        B_j = (1/λ_j) · ln(λ_j R_j / c),   c = k · Σ R_i

    and the budget constraint fixes

        ln c = ( Σ_i (1/λ_i) ln(λ_i R_i) − B_0 ) / Σ_i (1/λ_i).

    When a server's closed-form share is negative, the optimum pins it
    at zero (its marginal value is below the water level even with no
    storage); the loop removes such servers and re-solves until all
    shares are non-negative.

    Raises:
        AllocationError: On empty input, negative budget, or if no
            server has positive rate.
    """
    if not servers:
        raise AllocationError("no servers to allocate to")
    if len({s.name for s in servers}) != len(servers):
        raise AllocationError("duplicate server names")
    if budget < 0:
        raise AllocationError("budget must be non-negative")

    allocations = {s.name: 0.0 for s in servers}
    active = [s for s in servers if s.rate > 0]
    if not active:
        raise AllocationError("all servers have zero rate")
    if budget == 0:
        return AllocationResult(allocations, alpha_for_allocation(servers, allocations), 0.0)

    while active:
        inv_lambda_sum = sum(1.0 / s.lam for s in active)
        weighted_logs = sum(math.log(s.lam * s.rate) / s.lam for s in active)
        log_c = (weighted_logs - budget) / inv_lambda_sum

        shares = {
            s.name: (math.log(s.lam * s.rate) - log_c) / s.lam for s in active
        }
        negative = [s for s in active if shares[s.name] < 0]
        if not negative:
            for name, share in shares.items():
                allocations[name] = share
            break
        # Pin the most-negative servers at zero and re-solve the rest.
        drop = {s.name for s in negative}
        active = [s for s in active if s.name not in drop]

    return AllocationResult(
        allocations=allocations,
        alpha=alpha_for_allocation(servers, allocations),
        budget=budget,
    )


def greedy_document_allocation(
    profiles: dict[str, PopularityProfile],
    budget: float,
    *,
    remote_only: bool = True,
) -> AllocationResult:
    """Model-free allocation over empirical popularity curves.

    Documents of all servers compete for the proxy's storage in
    decreasing marginal value density ``requests / bytes`` (requests
    weighted implicitly by each server's rate, since counts come from
    the same time window).  A document that no longer fits is skipped,
    later smaller documents may still fit.

    Args:
        profiles: Per-server popularity profiles.
        budget: Proxy storage ``B_0`` in bytes.
        remote_only: Count remote accesses only (the cluster intercepts
            outside requests).

    Returns:
        An :class:`AllocationResult`; ``alpha`` here is the *empirical*
        intercepted request fraction.
    """
    if not profiles:
        raise AllocationError("no server profiles given")
    if budget < 0:
        raise AllocationError("budget must be non-negative")

    heap: list[tuple[float, str, str, int, int]] = []
    total_requests = 0
    for server, profile in profiles.items():
        for stat in profile.all_stats():
            hits = stat.remote_requests if remote_only else stat.requests
            total_requests += hits
            if hits > 0 and stat.size > 0:
                density = hits / stat.size
                heapq.heappush(
                    heap, (-density, server, stat.doc_id, stat.size, hits)
                )
            elif hits > 0 and stat.size == 0:
                # Zero-byte documents are free wins.
                heapq.heappush(heap, (-math.inf, server, stat.doc_id, 0, hits))

    allocations = {server: 0.0 for server in profiles}
    used = 0.0
    intercepted = 0
    while heap:
        __, server, _doc, size, hits = heapq.heappop(heap)
        if used + size > budget:
            continue
        used += size
        allocations[server] += size
        intercepted += hits

    alpha = intercepted / total_requests if total_requests else 0.0
    return AllocationResult(allocations=allocations, alpha=alpha, budget=budget)
