"""Trace-driven dissemination simulation (paper Figure 3).

Traffic is measured in **bytes × hops** over the clientele tree: a
request normally travels from the home server (root) down to the client
(leaf) paying one unit per byte per edge.  When the requested document
has been disseminated to a proxy on that path, the bytes only travel
from the deepest such proxy down — the hops above it are saved.

The paper's Figure 3 disseminates the same most-popular data to every
proxy; the footnote-5 refinement (per-proxy data chosen from each
subtree's own access pattern) is also implemented, as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..popularity.profile import PopularityProfile
from ..topology.tree import RoutingTree
from ..trace.records import Trace


@dataclass(frozen=True)
class DisseminationResult:
    """Outcome of one dissemination simulation.

    Attributes:
        baseline_cost: Total bytes×hops without dissemination.
        cost: Total bytes×hops with dissemination (including the push
            cost when it was requested).
        requests: Number of requests simulated.
        proxy_hits: Requests served by some proxy.
        storage_bytes: Total storage consumed across all proxies.
        push_cost: bytes×hops spent pushing documents to proxies
            (0.0 unless ``include_push_cost``).
    """

    baseline_cost: float
    cost: float
    requests: int
    proxy_hits: int
    storage_bytes: float
    push_cost: float

    @property
    def savings_fraction(self) -> float:
        """Fraction of bytes×hops saved (the vertical axis of Fig. 3)."""
        if self.baseline_cost <= 0:
            return 0.0
        return 1.0 - self.cost / self.baseline_cost

    @property
    def proxy_hit_rate(self) -> float:
        return self.proxy_hits / self.requests if self.requests else 0.0


def select_popular_bytes(
    profile: PopularityProfile,
    byte_budget: float,
    *,
    remote_only: bool = True,
) -> set[str]:
    """Most popular documents filling (at most) a byte budget.

    Documents are taken in decreasing popularity until the next one no
    longer fits; never-accessed documents are not selected.  Used to
    materialize "the most popular X% of the data".
    """
    if byte_budget < 0:
        raise SimulationError("byte_budget must be non-negative")
    chosen: set[str] = set()
    used = 0.0
    for stat in profile.ranked(remote_only=remote_only):
        hits = stat.remote_requests if remote_only else stat.requests
        if hits <= 0:
            break
        if used + stat.size <= byte_budget:
            used += stat.size
            chosen.add(stat.doc_id)
    return chosen


def per_proxy_popular_docs(
    trace: Trace,
    tree: RoutingTree,
    proxies: list[str],
    byte_budget: float,
    *,
    remote_only: bool = True,
) -> dict[str, set[str]]:
    """Footnote-5 refinement: per-proxy document selection.

    Each proxy receives the documents most popular *within its own
    subtree's clients*, up to the byte budget, exploiting geographic
    locality of reference.
    """
    selections: dict[str, set[str]] = {}
    for proxy in proxies:
        leaves = tree.subtree_leaves(proxy)
        subtrace = trace.filter(
            lambda r, leaves=leaves: r.client in leaves
            and (r.remote or not remote_only)
        )
        if len(subtrace) == 0:
            selections[proxy] = set()
            continue
        profile = PopularityProfile.from_trace(subtrace)
        selections[proxy] = select_popular_bytes(
            profile, byte_budget, remote_only=remote_only
        )
    return selections


class DisseminationSimulator:
    """Replays a trace over a clientele tree with disseminated data.

    Args:
        trace: The access trace (typically remote accesses; local ones
            never leave the organisation and are excluded by default).
        tree: Clientele tree whose leaves cover the trace's clients.
        remote_only: Drop non-remote requests before simulating.

    Raises:
        SimulationError: If some trace client is not a tree leaf.
    """

    def __init__(self, trace: Trace, tree: RoutingTree, *, remote_only: bool = True):
        self._trace = trace.remote_only() if remote_only else trace
        self._tree = tree
        missing = self._trace.clients() - tree.leaves
        if missing:
            raise SimulationError(
                f"trace clients missing from tree: {sorted(missing)[:3]}"
            )
        self._client_depth = {c: tree.depth(c) for c in self._trace.clients()}
        self._client_path = {
            c: tree.path_from_root(c) for c in self._trace.clients()
        }

    @property
    def trace(self) -> Trace:
        return self._trace

    def baseline_cost(self) -> float:
        """bytes×hops with every request served from the root."""
        return float(
            sum(r.size * self._client_depth[r.client] for r in self._trace)
        )

    def simulate(
        self,
        proxies: list[str],
        disseminated: set[str] | dict[str, set[str]],
        *,
        include_push_cost: bool = False,
    ) -> DisseminationResult:
        """Replay the trace with documents disseminated to proxies.

        Args:
            proxies: Internal tree nodes acting as service proxies.
            disseminated: Either one document set pushed to *all*
                proxies (the paper's Figure 3 setup) or a per-proxy
                mapping (footnote-5 refinement).
            include_push_cost: Charge the one-time bytes×hops of pushing
                each document from the root to each proxy holding it.

        Raises:
            SimulationError: If a proxy is not an internal tree node.
        """
        for proxy in proxies:
            if self._tree.node_kind(proxy) != "internal":
                raise SimulationError(f"{proxy!r} is not an internal tree node")

        if isinstance(disseminated, dict):
            holdings = {p: frozenset(disseminated.get(p, ())) for p in proxies}
        else:
            shared = frozenset(disseminated)
            holdings = {p: shared for p in proxies}

        proxy_set = set(proxies)
        proxy_depth = {p: self._tree.depth(p) for p in proxies}

        cost = 0.0
        proxy_hits = 0
        for request in self._trace:
            depth = self._client_depth[request.client]
            best = 0
            served_by_proxy = False
            for node in self._client_path[request.client]:
                if node in proxy_set and request.doc_id in holdings[node]:
                    if proxy_depth[node] > best:
                        best = proxy_depth[node]
                        served_by_proxy = True
            cost += request.size * (depth - best)
            if served_by_proxy:
                proxy_hits += 1

        push_cost = 0.0
        if include_push_cost:
            sizes = self._trace.documents
            for proxy, docs in holdings.items():
                for doc_id in docs:
                    document = sizes.get(doc_id)
                    if document is not None:
                        push_cost += document.size * proxy_depth[proxy]
        storage = 0.0
        sizes = self._trace.documents
        for docs in holdings.values():
            storage += sum(sizes[d].size for d in docs if d in sizes)

        return DisseminationResult(
            baseline_cost=self.baseline_cost(),
            cost=cost + push_cost,
            requests=len(self._trace),
            proxy_hits=proxy_hits,
            storage_bytes=storage,
            push_cost=push_cost,
        )
