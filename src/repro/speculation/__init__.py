"""The speculative service protocol (paper section 3).

* :mod:`repro.speculation.dependency` — the document access
  interdependency matrix ``P`` and its closure ``P*``, estimated from
  traversal strides.
* :mod:`repro.speculation.aging` — aging and rolling re-estimation of
  the dependency counts (HistoryLength / UpdateCycle).
* :mod:`repro.speculation.policies` — which documents to send along
  with a request: threshold on ``p*``, embedding-only, top-k, with the
  MaxSize cap.
* :mod:`repro.speculation.caches` — client cache models: none,
  single-session, infinite multi-session, finite LRU; cooperative cache
  digests.
* :mod:`repro.speculation.simulator` — the trace-driven simulator with
  the paper's cost model (CommCost / ServCost).
* :mod:`repro.speculation.metrics` — the four ratios (bandwidth, server
  load, service time, byte miss rate).
* :mod:`repro.speculation.prefetch` — server-assisted prefetching and
  the hybrid speculation+prefetch protocol.
* :mod:`repro.speculation.user_profiles` — per-user access profiles and
  pure client-initiated prefetching (the paper's reference [5]).
* :mod:`repro.speculation.validation` — precision/recall diagnostics
  for speculation policies.
"""

from .dependency import DependencyModel, PairHistogram
from .aging import AgingDependencyCounter, RollingEstimator
from .policies import (
    EmbeddingOnlyPolicy,
    SpeculationPolicy,
    ThresholdPolicy,
    TopKPolicy,
)
from .caches import (
    ClientCache,
    InfiniteCache,
    LRUCache,
    NoCache,
    SessionCache,
    make_cache_factory,
)
from .metrics import SpeculationMetrics, SpeculationRatios, compare
from .simulator import SimulationRun, SpeculativeServiceSimulator
from .prefetch import ClientPrefetcher, HybridProtocol, PrefetchHints
from .user_profiles import UserProfile, UserProfilePrefetcher
from .validation import PredictionQuality, evaluate_policy_predictions
from .queueing import LatencyImpact, MM1Server, capacity_headroom, latency_impact
from .adaptive import AdaptiveBudgetPolicy
from .digests import BloomFilter, digest_size_bytes

__all__ = [
    "DependencyModel",
    "PairHistogram",
    "AgingDependencyCounter",
    "RollingEstimator",
    "SpeculationPolicy",
    "ThresholdPolicy",
    "EmbeddingOnlyPolicy",
    "TopKPolicy",
    "ClientCache",
    "NoCache",
    "SessionCache",
    "InfiniteCache",
    "LRUCache",
    "make_cache_factory",
    "SpeculationMetrics",
    "SpeculationRatios",
    "compare",
    "SimulationRun",
    "SpeculativeServiceSimulator",
    "PrefetchHints",
    "ClientPrefetcher",
    "HybridProtocol",
    "UserProfile",
    "UserProfilePrefetcher",
    "PredictionQuality",
    "evaluate_policy_predictions",
    "MM1Server",
    "LatencyImpact",
    "latency_impact",
    "capacity_headroom",
    "AdaptiveBudgetPolicy",
    "BloomFilter",
    "digest_size_bytes",
]
