"""Vectorized sparse backend for the dependency model (``backend="sparse"``).

Two hot paths of the reproduction are vectorized here:

* **Pair counting** — :func:`estimate_pair_counts` replays the stride
  rule of :meth:`DependencyModel.estimate` over numpy arrays: one global
  pass builds per-client segments, stride ids, and candidate follower
  windows (binary search), then a key-based ``np.unique`` performs the
  per-occurrence dedup and the final ``(D_i, D_j)`` aggregation.
* **Closure batches** — :class:`SparseDependencyEngine` stores ``P`` as
  a CSR adjacency and computes many ``P*`` rows at once by hop-bounded
  relaxation in the max-product semiring (the truncated-Neumann form of
  the paper's ``P* = P^N`` under the best-chain reading; see
  ``dependency.py``).

Bit-exactness contract: both paths must reproduce the dict backend's
numbers *exactly*, not approximately.  Counts are small integers (exact
in float64), probabilities are the same ``count / base`` divisions, and
closure values chain the same IEEE-754 multiplications the pure-Python
relaxation performs — ``max`` and comparisons introduce no rounding, so
equal inputs give equal outputs.  The parity tests in
``tests/test_sparse_backend.py`` pin this contract.
"""

from __future__ import annotations

import math
import weakref
from collections.abc import Iterable, Mapping

import numpy as np

from ..errors import DependencyModelError
from ..trace.records import Trace

#: Candidate (source, follower) pairs materialized per vectorized block;
#: bounds peak memory on dense windows (e.g. an infinite ``T_w``).
_BLOCK_PAIR_BUDGET = 4_000_000

#: Integer-coded columns per trace.  A :class:`Trace` is immutable by
#: contract, and the coding depends only on the trace (not on ``window``
#: or ``stride_timeout``), so re-estimating over the same trace — the
#:  shape of every sweep and of the benchmark repeats — skips the
#: Python-level column extraction entirely.  Weak keys keep the cache
#: from pinning traces in memory.
_trace_columns: "weakref.WeakKeyDictionary[Trace, tuple]" = (
    weakref.WeakKeyDictionary()
)


def _coded_columns(
    trace: Trace,
) -> tuple[list[str], np.ndarray, np.ndarray, np.ndarray]:
    """``(docs, times, doc_codes, client_codes)`` for a trace, memoized.

    Documents and clients are integer-coded in first-seen order; the
    code assignment never influences counts, only array layout.  Every
    step runs as a C-level loop: list comprehensions for the id
    columns, ``dict.fromkeys`` for ordered dedup, ``map`` + ``fromiter``
    for the code lookup.
    """
    cached = _trace_columns.get(trace)
    if cached is not None:
        return cached
    n_requests = len(trace)
    doc_ids = [request.doc_id for request in trace]
    client_ids = [request.client for request in trace]
    doc_index = {doc: code for code, doc in enumerate(dict.fromkeys(doc_ids))}
    client_index = {
        client: code for code, client in enumerate(dict.fromkeys(client_ids))
    }
    columns = (
        list(doc_index),
        np.asarray(trace.timestamps, dtype=np.float64),
        np.fromiter(
            map(doc_index.__getitem__, doc_ids), dtype=np.int64, count=n_requests
        ),
        np.fromiter(
            map(client_index.__getitem__, client_ids),
            dtype=np.int64,
            count=n_requests,
        ),
    )
    _trace_columns[trace] = columns
    return columns


def estimate_pair_counts(
    trace: Trace,
    *,
    window: float = 5.0,
    stride_timeout: float | None = None,
) -> tuple[dict[str, dict[str, float]], dict[str, float]]:
    """Vectorized pair/occurrence counting (the ``estimate`` hot loop).

    Implements exactly the stride rule of
    :meth:`repro.speculation.dependency.DependencyModel.estimate`: for
    every request for ``D_i``, each *distinct* later document requested
    by the same client within ``window`` seconds and in the same
    traversal stride counts one ``(i, j)`` pair.

    Args:
        trace: The (training) trace.
        window: ``T_w`` in seconds.
        stride_timeout: ``StrideTimeout``; defaults to ``window``.

    Returns:
        ``(pair_counts, occurrence_counts)`` dicts, value-identical to
        the pure-Python counting loop.
    """
    if window <= 0:
        raise DependencyModelError("window must be positive")
    timeout = window if stride_timeout is None else stride_timeout
    n_requests = len(trace)
    if n_requests == 0:
        return {}, {}

    docs, times, doc_codes, client_codes = _coded_columns(trace)
    n_docs = len(docs)

    # Regroup per client; the stable sort preserves the trace's time
    # order inside each client segment.
    order = np.argsort(client_codes, kind="stable")
    t = times[order]
    d = doc_codes[order]
    c = client_codes[order]

    occurrences = np.bincount(d, minlength=n_docs)

    # Stride boundaries, mirroring trace.sessions._split_by_gap: an
    # infinite timeout never splits inside a client, a non-positive one
    # always does, otherwise split where the gap reaches the timeout.
    new_run = np.ones(n_requests, dtype=bool)
    if n_requests > 1:
        same_client = c[1:] == c[:-1]
        if timeout <= 0:
            within = np.zeros(n_requests - 1, dtype=bool)
        elif math.isinf(timeout):
            within = same_client
        else:
            within = same_client & ((t[1:] - t[:-1]) < timeout)
        new_run[1:] = ~within
    stride_id = np.cumsum(new_run)

    # Candidate follower windows by binary search.  Each client segment
    # is shifted onto its own stretch of a sorted axis; the search bound
    # deliberately overshoots (slack ≫ rounding error of the shift), and
    # the exact mask below re-applies the reference float comparison
    # ``t[j] - t[i] <= window`` on the *original* timestamps, so the
    # accepted set is identical to the scalar loop's.
    t0 = t - float(t[0] if t.size else 0.0)
    t0 -= float(t0.min()) if t0.size else 0.0
    span = float(t0.max()) if t0.size else 0.0
    finite_window = window if not math.isinf(window) else span + 1.0
    step = span + finite_window + 2.0
    t_adj = t0 + c.astype(np.float64) * step
    bound = t_adj + finite_window
    bound += np.abs(bound) * 1e-9 + 1e-9
    j_end = np.searchsorted(t_adj, bound, side="right")
    j_begin = np.arange(n_requests, dtype=np.int64) + 1
    per_source = np.maximum(j_end - j_begin, 0)
    cumulative = np.concatenate(([0], np.cumsum(per_source)))

    pair_key_blocks: list[np.ndarray] = []
    start = 0
    while start < n_requests:
        stop = (
            int(
                np.searchsorted(
                    cumulative,
                    cumulative[start] + _BLOCK_PAIR_BUDGET,
                    side="right",
                )
            )
            - 1
        )
        stop = min(max(stop, start + 1), n_requests)
        counts = per_source[start:stop]
        total = int(counts.sum())
        if total:
            source_rep = np.repeat(
                np.arange(start, stop, dtype=np.int64), counts
            )
            offsets = np.cumsum(counts) - counts
            follower = (
                np.arange(total, dtype=np.int64)
                - np.repeat(offsets, counts)
                + np.repeat(j_begin[start:stop], counts)
            )
            keep = (
                (stride_id[follower] == stride_id[source_rep])
                & ((t[follower] - t[source_rep]) <= window)
                & (d[follower] != d[source_rep])
            )
            # Dedup per source *occurrence* (the reference loop's `seen`
            # set) with a plain sort — faster than np.unique here —
            # then reduce occurrences to document pairs.
            occurrence_keys = np.sort(
                source_rep[keep] * n_docs + d[follower[keep]]
            )
            if occurrence_keys.size:
                fresh = np.ones(occurrence_keys.size, dtype=bool)
                fresh[1:] = occurrence_keys[1:] != occurrence_keys[:-1]
                occurrence_keys = occurrence_keys[fresh]
                pair_key_blocks.append(
                    d[occurrence_keys // n_docs] * n_docs
                    + occurrence_keys % n_docs
                )
        start = stop

    pair_counts: dict[str, dict[str, float]] = {}
    if pair_key_blocks:
        pair_keys = np.concatenate(pair_key_blocks)
        if n_docs * n_docs <= 1 << 24:
            totals = np.bincount(pair_keys, minlength=n_docs * n_docs)
            unique_pairs = np.nonzero(totals)[0]
            pair_totals = totals[unique_pairs]
        else:  # huge catalogs: avoid the quadratic bincount table
            unique_pairs, pair_totals = np.unique(
                pair_keys, return_counts=True
            )
        # unique_pairs is sorted, so each source's targets form one
        # contiguous slice — build each row dict in a single zip.
        source_codes = unique_pairs // n_docs
        target_list = (unique_pairs % n_docs).tolist()
        count_list = pair_totals.astype(np.float64).tolist()
        breaks = np.nonzero(source_codes[1:] != source_codes[:-1])[0] + 1
        row_starts = np.concatenate(([0], breaks)).tolist()
        row_ends = np.concatenate((breaks, [source_codes.size])).tolist()
        for row_start, row_end in zip(row_starts, row_ends):
            pair_counts[docs[int(source_codes[row_start])]] = {
                docs[code]: count
                for code, count in zip(
                    target_list[row_start:row_end],
                    count_list[row_start:row_end],
                )
            }
    occurrence_counts = {
        docs[code]: float(count)
        for code, count in enumerate(occurrences.tolist())
        if count
    }
    return pair_counts, occurrence_counts


class SparseDependencyEngine:
    """CSR form of ``P`` with batched ``P*`` rows (max-product closure).

    Built once from a model's raw counts; immutable afterwards (the
    owning :class:`DependencyModel` rebuilds it when ``observe`` dirties
    the counts).  Documents are indexed in sorted order so the layout —
    and therefore every computed value — is a pure function of the
    counts.

    Args:
        pair_counts: ``source -> target -> count`` raw pair counts.
        occurrences: ``doc -> occurrence count`` (row normalizers).
    """

    __slots__ = ("_docs", "_index", "_indptr", "_indices", "_probs")

    def __init__(
        self,
        pair_counts: Mapping[str, Mapping[str, float]],
        occurrences: Mapping[str, float],
    ) -> None:
        universe: set[str] = set(occurrences)
        for source, row in pair_counts.items():
            universe.add(source)
            universe.update(row)
        self._docs: list[str] = sorted(universe)
        self._index: dict[str, int] = {
            doc: code for code, doc in enumerate(self._docs)
        }
        indptr = np.zeros(len(self._docs) + 1, dtype=np.int64)
        columns: list[int] = []
        probabilities: list[float] = []
        for code, doc in enumerate(self._docs):
            base = occurrences.get(doc, 0.0)
            row = pair_counts.get(doc)
            if base > 0 and row:
                for target, count in row.items():
                    if count > 0:
                        columns.append(self._index[target])
                        # The same float division the dict backend's
                        # successors() performs — bit-identical edges.
                        probabilities.append(count / base)
            indptr[code + 1] = len(columns)
        self._indptr = indptr
        self._indices = np.asarray(columns, dtype=np.int64)
        self._probs = np.asarray(probabilities, dtype=np.float64)

    @property
    def n_documents(self) -> int:
        return len(self._docs)

    @property
    def n_edges(self) -> int:
        return int(self._indices.size)

    def closure_rows(
        self,
        sources: Iterable[str],
        *,
        min_probability: float = 0.01,
        max_hops: int = 8,
    ) -> list[dict[str, float]]:
        """Batched ``P*`` rows for many sources at once.

        Level-synchronous relaxation: level ``h`` holds the best chain
        products over at most ``h`` hops; only entries that improved in
        a level propagate in the next.  Every arithmetic step mirrors
        the dict backend's relaxation (same multiplies, same
        ``>= min_probability`` prune before the clamp to 1.0, same
        strict-improvement test), so the two backends return identical
        floats.

        Args:
            sources: Source documents (unknown ids yield empty rows).
            min_probability: Chains below this probability are pruned.
            max_hops: Maximum chain length.

        Returns:
            One ``target -> p*`` dict per source, in input order, the
            source itself excluded.
        """
        source_list = list(sources)
        rows: list[dict[str, float]] = [{} for _ in source_list]
        n = len(self._docs)
        if not source_list or n == 0 or self._indices.size == 0:
            return rows
        src_idx = np.array(
            [self._index.get(source, -1) for source in source_list],
            dtype=np.int64,
        )
        known = np.nonzero(src_idx >= 0)[0]
        if known.size == 0:
            return rows

        best = np.zeros((len(source_list), n), dtype=np.float64)
        best[known, src_idx[known]] = 1.0
        frontier = np.zeros((len(source_list), n), dtype=bool)
        frontier[known, src_idx[known]] = True
        flat = best.reshape(-1)
        indptr, indices, probs = self._indptr, self._indices, self._probs

        for _ in range(max_hops):
            s_front, u_front = np.nonzero(frontier)
            if s_front.size == 0:
                break
            row_start = indptr[u_front]
            row_len = indptr[u_front + 1] - row_start
            total = int(row_len.sum())
            if total == 0:
                break
            offsets = np.cumsum(row_len) - row_len
            position = (
                np.arange(total, dtype=np.int64)
                - np.repeat(offsets, row_len)
                + np.repeat(row_start, row_len)
            )
            chained = np.repeat(best[s_front, u_front], row_len) * probs[position]
            keep = chained >= min_probability
            if not keep.any():
                break
            chained = np.minimum(chained[keep], 1.0)
            targets = (
                np.repeat(s_front, row_len)[keep] * n + indices[position[keep]]
            )
            previous = best.copy()
            np.maximum.at(flat, targets, chained)
            frontier = best > previous

        for k in known.tolist():
            source_code = int(src_idx[k])
            values = best[k]
            nonzero = np.nonzero(values)[0]
            rows[k] = {
                self._docs[j]: float(values[j])
                for j in nonzero.tolist()
                if j != source_code
            }
        return rows
