"""Speculation policies: which documents ride along with a response.

A policy inspects the dependency model and decides, for a requested
document ``D_i``, which other documents the server should speculatively
service.  All policies respect the ``MaxSize`` cap of section 3.2 —
documents larger than MaxSize are never speculated — and return
candidates in decreasing probability so the simulator can apply further
caps (e.g. cooperative-client filtering) in the right order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Protocol

from ..errors import PolicyError
from ..trace.records import Document
from .dependency import DependencyModel


@dataclass(frozen=True, slots=True)
class Candidate:
    """One document a policy proposes to speculate.

    Attributes:
        doc_id: The candidate document.
        probability: The policy's estimate that it will be requested.
    """

    doc_id: str
    probability: float


class SpeculationPolicy(Protocol):
    """Protocol implemented by all speculation policies."""

    def select(
        self,
        requested: str,
        model: DependencyModel,
        catalog: dict[str, Document],
    ) -> list[Candidate]:
        """Candidates to send along with ``requested``, best first."""
        ...


def _filter_by_size(
    candidates: list[Candidate],
    catalog: dict[str, Document],
    max_size: float,
) -> list[Candidate]:
    """Drop candidates exceeding MaxSize or missing from the catalog."""
    kept = []
    for candidate in candidates:
        document = catalog.get(candidate.doc_id)
        if document is None:
            continue
        if document.size <= max_size:
            kept.append(candidate)
    return kept


@dataclass(frozen=True)
class ThresholdPolicy:
    """The paper's baseline policy: speculate ``D_j`` iff ``p*[i,j] >= T_p``.

    Attributes:
        threshold: ``T_p`` in (0, 1].
        max_size: MaxSize cap in bytes (``inf`` = no limit).
        use_closure: Use ``P*`` (default, the paper's baseline) or the
            direct ``P`` row only — the closure-vs-direct ablation.
        min_probability: Pruning floor for closure computation.
        max_hops: Chain-length cap for closure computation.
    """

    #: select() is a pure function of (requested, model state): frozen
    #: parameters, no internal state.  The simulator's fast path may
    #: memoize selections per document when this is set.
    select_is_pure: ClassVar[bool] = True

    threshold: float
    max_size: float = math.inf
    use_closure: bool = True
    min_probability: float = 0.01
    max_hops: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise PolicyError("threshold must be in (0, 1]")
        if self.max_size <= 0:
            raise PolicyError("max_size must be positive")

    def select(
        self,
        requested: str,
        model: DependencyModel,
        catalog: dict[str, Document],
    ) -> list[Candidate]:
        """Candidates with ``p*`` (or ``p``) at or above the threshold."""
        if self.use_closure:
            row = model.closure_row(
                requested,
                min_probability=min(self.min_probability, self.threshold),
                max_hops=self.max_hops,
            )
        else:
            row = model.successors(requested)
        candidates = [
            Candidate(doc_id=target, probability=probability)
            for target, probability in row.items()
            if probability >= self.threshold
        ]
        candidates.sort(key=lambda c: (-c.probability, c.doc_id))
        return _filter_by_size(candidates, catalog, self.max_size)


@dataclass(frozen=True)
class EmbeddingOnlyPolicy:
    """Speculate only embedding dependencies (``p ≈ 1``).

    The paper observes these cost no wasted bandwidth — an embedded
    document is certainly needed — but buy under ~5% improvement.

    Attributes:
        tolerance: How far below 1.0 still counts as an embedding
            (measurement noise on finite traces).
        max_size: MaxSize cap in bytes.
    """

    select_is_pure: ClassVar[bool] = True

    tolerance: float = 0.05
    max_size: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerance < 1.0:
            raise PolicyError("tolerance must be in [0, 1)")
        if self.max_size <= 0:
            raise PolicyError("max_size must be positive")

    def select(
        self,
        requested: str,
        model: DependencyModel,
        catalog: dict[str, Document],
    ) -> list[Candidate]:
        """Candidates with near-certain direct dependencies only."""
        floor = 1.0 - self.tolerance
        candidates = [
            Candidate(doc_id=target, probability=probability)
            for target, probability in model.successors(requested).items()
            if probability >= floor
        ]
        candidates.sort(key=lambda c: (-c.probability, c.doc_id))
        return _filter_by_size(candidates, catalog, self.max_size)


@dataclass(frozen=True)
class TopKPolicy:
    """Speculate the ``k`` most likely follow-ups above a floor.

    A budget-style alternative to the threshold policy: bounds the
    per-request speculation volume regardless of how many documents
    clear a probability bar.

    Attributes:
        k: Maximum candidates per request.
        min_probability: Ignore follow-ups below this probability.
        max_size: MaxSize cap in bytes.
        use_closure: Rank by ``P*`` (default) or direct ``P``.
        max_hops: Chain-length cap for closure computation.
    """

    select_is_pure: ClassVar[bool] = True

    k: int
    min_probability: float = 0.05
    max_size: float = math.inf
    use_closure: bool = True
    max_hops: int = 8

    def __post_init__(self) -> None:
        if self.k < 1:
            raise PolicyError("k must be >= 1")
        if not 0.0 < self.min_probability <= 1.0:
            raise PolicyError("min_probability must be in (0, 1]")
        if self.max_size <= 0:
            raise PolicyError("max_size must be positive")

    def select(
        self,
        requested: str,
        model: DependencyModel,
        catalog: dict[str, Document],
    ) -> list[Candidate]:
        """The k most likely follow-ups above the probability floor."""
        if self.use_closure:
            row = model.closure_row(
                requested,
                min_probability=self.min_probability,
                max_hops=self.max_hops,
            )
        else:
            row = model.successors(requested)
        candidates = [
            Candidate(doc_id=target, probability=probability)
            for target, probability in row.items()
            if probability >= self.min_probability
        ]
        candidates.sort(key=lambda c: (-c.probability, c.doc_id))
        return _filter_by_size(candidates, catalog, self.max_size)[: self.k]
