"""The trace-driven speculative-service simulator (paper section 3.2).

The simulator replays a server trace against a population of client
caches.  Per access:

1. The client's cache session state advances (``SessionTimeout``).
2. A cache hit costs nothing — the document is already at the client
   (fetched earlier, or speculatively pushed).
3. A miss goes to the server: one unit of server load, the document's
   bytes on the wire, and client-visible latency of
   ``ServCost + CommCost × size`` cost units.
4. On a miss the server speculates: the policy proposes follow-on
   documents, which are pushed on the same connection — they cost
   bandwidth but **no** extra server request and no client-visible
   latency.  Cooperative clients piggyback a cache digest, letting the
   server skip documents the client already holds; non-cooperative
   speculation can waste bandwidth on re-sends (section 3.4).
5. Optionally, the server instead (or additionally) attaches prefetch
   *hints*; the client then issues its own prefetch requests, which do
   count as server load (section 3.4's server-assisted prefetching).

The dependency model either stays fixed (train/test split) or follows
the paper's schedule — re-estimated every ``UpdateCycle`` days from the
last ``HistoryLength`` days — via a
:class:`~repro.speculation.aging.RollingEstimator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..config import BASELINE, BaselineConfig
from ..errors import SimulationError
from ..trace.records import Trace
from .aging import RollingEstimator
from .caches import ClientCache, make_cache_factory
from .dependency import DependencyModel
from .metrics import SpeculationMetrics
from .policies import SpeculationPolicy


@dataclass(frozen=True)
class SimulationRun:
    """Result of one simulator run.

    Attributes:
        metrics: The raw totals used to compute the paper's ratios.
        accesses: Client accesses replayed.
        cache_hits: Accesses satisfied by the client cache.
        prefetch_requests: Client-initiated prefetches issued.
    """

    metrics: SpeculationMetrics
    accesses: int
    cache_hits: int
    prefetch_requests: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.accesses if self.accesses else 0.0


class SpeculativeServiceSimulator:
    """Replays a trace with (or without) server speculation.

    Args:
        trace: The access trace to replay.
        config: Cost model and timeouts (defaults to the paper's
            baseline parameters).
        model: Fixed dependency model (e.g. trained on an earlier
            period).  Mutually exclusive with ``rolling``.
        rolling: A rolling estimator implementing the paper's
            HistoryLength/UpdateCycle schedule.  When neither ``model``
            nor ``rolling`` is given, a rolling estimator over this
            trace is built from ``config``.
    """

    def __init__(
        self,
        trace: Trace,
        config: BaselineConfig = BASELINE,
        *,
        model: DependencyModel | None = None,
        rolling: RollingEstimator | None = None,
    ):
        if model is not None and rolling is not None:
            raise SimulationError("pass either a fixed model or a rolling estimator")
        self._trace = trace
        self._config = config
        self._model = model
        self._rolling = rolling

    def _model_at(self, now: float) -> DependencyModel:
        if self._model is not None:
            return self._model
        if self._rolling is None:
            self._rolling = RollingEstimator(
                self._trace,
                history_length_days=self._config.history_length_days,
                update_cycle_days=self._config.update_cycle_days,
                window=self._config.stride_timeout,
            )
        return self._rolling.model_at(now)

    def run(
        self,
        policy: SpeculationPolicy | None = None,
        *,
        cache_factory: Callable[[], ClientCache] | None = None,
        cooperative: bool = False,
        digest_fp_rate: float | None = None,
        prefetcher: "ClientPrefetcherLike | None" = None,
        replay: str = "auto",
    ) -> SimulationRun:
        """Replay the trace once.

        Args:
            policy: Speculation policy; ``None`` runs the
                no-speculation baseline.
            cache_factory: Per-client cache constructor; defaults to
                the config's SessionTimeout semantics.
            cooperative: Clients piggyback cache digests, so the server
                never speculates a document the client already holds.
            digest_fp_rate: With ``cooperative``, encode the digest as
                a Bloom filter at this false-positive rate instead of
                an exact ID list; false positives make the server skip
                pushes the client actually needed (see
                :mod:`repro.speculation.digests`).  ``None`` keeps the
                exact digest.
            prefetcher: Client-side prefetch behaviour fed by server
                hints (see :mod:`repro.speculation.prefetch`).  A
                prefetcher may expose two optional extensions: an
                ``observe(client, doc_id, timestamp)`` method, called on
                every client access (used by per-user profile
                prefetchers to learn online), and a ``client`` keyword
                on ``choose`` (detected by attribute
                ``wants_client=True``) for per-client decisions.
            replay: Fast-path engine selection: ``"auto"`` (default)
                replays eligible configurations through the columnar
                engine, ``"columnar"`` requires it (raising when the
                configuration is not eligible), ``"event"`` forces the
                event-by-event fast loop.  All three are bit-identical;
                an explicit ``cache_factory`` still forces the general
                loop below.

        Returns:
            A :class:`SimulationRun` with raw metric totals.
        """
        if replay not in ("auto", "columnar", "event"):
            raise SimulationError(f"unknown replay mode {replay!r}")
        config = self._config
        if (
            cache_factory is None
            and not cooperative
            and digest_fp_rate is None
            and prefetcher is None
            and (
                policy is None
                or (
                    self._model is not None
                    and getattr(self._model, "backend", "dict") == "sparse"
                    and getattr(policy, "select_is_pure", False)
                )
            )
        ):
            # The common configuration — default SessionTimeout caches,
            # no digests/prefetchers, a fixed sparse-backend model, and
            # a stateless policy — replays through the vectorized
            # columnar engine (or, on request, the specialized event
            # loop that memoizes per-document push lists and inlines
            # the session-cache bookkeeping).  Both are bit-identical
            # to the general loop below (pinned by
            # tests/test_sparse_backend.py and
            # tests/test_columnar_replay.py).
            if replay == "event":
                return self._run_fast(policy)
            from .columnar import replay_columnar

            result = replay_columnar(
                self._trace, config, model=self._model, policy=policy
            )
            return SimulationRun(
                metrics=result.metrics,
                accesses=result.accesses,
                cache_hits=result.cache_hits,
                prefetch_requests=0,
            )
        if replay == "columnar":
            raise SimulationError(
                "columnar replay requires the fast-path configuration "
                "(default caches, no cooperation/digests/prefetchers, "
                "and a pure policy over a fixed sparse model)"
            )
        factory = cache_factory or make_cache_factory(config.session_timeout)
        catalog = self._trace.documents

        observe = getattr(prefetcher, "observe", None)
        prefetch_per_client = bool(getattr(prefetcher, "wants_client", False))

        if digest_fp_rate is not None and not cooperative:
            raise SimulationError("digest_fp_rate requires cooperative=True")
        blooms: dict[str, "BloomFilter"] = {}
        if digest_fp_rate is not None:
            from .digests import BloomFilter

            def bloom_for(client_id: str, cache: ClientCache) -> "BloomFilter":
                bloom = blooms.get(client_id)
                digest = cache.digest()
                if (
                    bloom is None
                    or bloom.count > len(digest)  # cache purged
                    or bloom.count > bloom.capacity  # filter overfilled
                ):
                    bloom = BloomFilter.from_items(
                        digest,
                        digest_fp_rate,
                        capacity=max(16, 2 * len(digest)),
                    )
                    blooms[client_id] = bloom
                return bloom
        else:
            bloom_for = None

        caches: dict[str, ClientCache] = {}
        pending_pushes: dict[str, dict[str, int]] = {}

        # Byte counters stay integers so byte accounting is exact; only
        # derived ratios and costs are floats.
        bytes_sent = 0
        server_requests = 0
        service_time = 0.0
        miss_bytes = 0
        accessed_bytes = 0
        speculated_documents = 0
        speculated_bytes = 0
        wasted_bytes = 0
        cache_hits = 0
        prefetch_requests = 0

        for request in self._trace:
            client = request.client
            cache = caches.get(client)
            if cache is None:
                cache = factory()
                caches[client] = cache
                pending_pushes[client] = {}
            cache.access(request.timestamp)
            pending = pending_pushes[client]

            size = request.size
            accessed_bytes += size
            if observe is not None:
                observe(client, request.doc_id, request.timestamp)

            if cache.contains(request.doc_id):
                cache_hits += 1
                if request.doc_id in pending:
                    pending.pop(request.doc_id)
                continue

            # Demand miss: full server round trip.
            miss_bytes += size
            server_requests += 1
            bytes_sent += size
            service_time += config.serv_cost + config.comm_cost * size
            cache.insert(request.doc_id, size)
            if bloom_for is not None:
                bloom_for(client, cache).add(request.doc_id)

            if policy is None and prefetcher is None:
                continue

            model = self._model_at(request.timestamp)

            if policy is not None:
                bloom = bloom_for(client, cache) if bloom_for is not None else None
                for candidate in policy.select(request.doc_id, model, catalog):
                    document = catalog.get(candidate.doc_id)
                    if document is None or document.size > config.max_size:
                        continue
                    already_cached = cache.contains(candidate.doc_id)
                    if cooperative:
                        believed_cached = (
                            candidate.doc_id in bloom
                            if bloom is not None
                            else already_cached
                        )
                        if believed_cached:
                            continue
                    speculated_documents += 1
                    speculated_bytes += document.size
                    bytes_sent += document.size
                    if already_cached:
                        wasted_bytes += document.size
                        continue
                    if candidate.doc_id in pending:
                        wasted_bytes += pending.pop(candidate.doc_id)
                    cache.insert(candidate.doc_id, document.size)
                    if bloom is not None:
                        bloom.add(candidate.doc_id)
                    pending[candidate.doc_id] = document.size

            if prefetcher is not None:
                if prefetch_per_client:
                    chosen = prefetcher.choose(
                        request.doc_id, model, catalog, client=client
                    )
                else:
                    chosen = prefetcher.choose(request.doc_id, model, catalog)
                for doc_id in chosen:
                    document = catalog.get(doc_id)
                    if document is None or cache.contains(doc_id):
                        continue
                    prefetch_requests += 1
                    server_requests += 1
                    bytes_sent += document.size
                    cache.insert(doc_id, document.size)
                    if bloom_for is not None:
                        bloom_for(client, cache).add(doc_id)
                    if doc_id in pending:
                        wasted_bytes += pending.pop(doc_id)
                    pending[doc_id] = document.size

        for pending in pending_pushes.values():
            wasted_bytes += sum(pending.values())

        metrics = SpeculationMetrics(
            bytes_sent=bytes_sent,
            server_requests=server_requests,
            service_time=service_time,
            miss_bytes=miss_bytes,
            accessed_bytes=accessed_bytes,
            speculated_documents=speculated_documents,
            speculated_bytes=speculated_bytes,
            wasted_bytes=wasted_bytes,
        )
        return SimulationRun(
            metrics=metrics,
            accesses=len(self._trace),
            cache_hits=cache_hits,
            prefetch_requests=prefetch_requests,
        )

    def _run_fast(self, policy: SpeculationPolicy | None) -> SimulationRun:
        """Specialized replay for the default configuration.

        Preconditions (enforced by the dispatch in :meth:`run`): default
        SessionTimeout cache semantics, no cooperation, no digests, no
        prefetcher, and either no policy (baseline) or a pure-`select`
        policy over a fixed sparse-backend model.  Every counter update
        — including the float additions into ``service_time`` — happens
        in exactly the order of the general loop, so the two paths
        return identical metrics, not merely close ones.
        """
        config = self._config
        catalog = self._trace.documents
        timeout = config.session_timeout
        caching = timeout > 0
        finite = caching and not math.isinf(timeout)
        max_size = config.max_size
        serv_cost = config.serv_cost
        comm_cost = config.comm_cost
        model = self._model

        # Per-document speculation push lists, resolved through the
        # policy once per document (select is pure, the model is fixed)
        # with the catalog/MaxSize filter pre-applied.
        push_lists: dict[str, tuple[tuple[str, int], ...]] = {}

        contents: dict[str, set[str]] = {}
        last_access: dict[str, float] = {}
        pending_pushes: dict[str, dict[str, int]] = {}

        bytes_sent = 0
        server_requests = 0
        service_time = 0.0
        miss_bytes = 0
        accessed_bytes = 0
        speculated_documents = 0
        speculated_bytes = 0
        wasted_bytes = 0
        cache_hits = 0

        for request in self._trace:
            client = request.client
            cached = contents.get(client)
            if cached is None:
                cached = set()
                contents[client] = cached
                pending_pushes[client] = {}
                if finite:
                    last_access[client] = request.timestamp
            elif finite:
                if request.timestamp - last_access[client] >= timeout:
                    cached.clear()
                last_access[client] = request.timestamp
            pending = pending_pushes[client]

            size = request.size
            accessed_bytes += size
            doc_id = request.doc_id

            if caching and doc_id in cached:
                cache_hits += 1
                if doc_id in pending:
                    del pending[doc_id]
                continue

            miss_bytes += size
            server_requests += 1
            bytes_sent += size
            service_time += serv_cost + comm_cost * size
            if caching:
                cached.add(doc_id)

            if policy is None:
                continue

            push_list = push_lists.get(doc_id)
            if push_list is None:
                push_list = tuple(
                    (candidate.doc_id, catalog[candidate.doc_id].size)
                    for candidate in policy.select(doc_id, model, catalog)
                    if candidate.doc_id in catalog
                    and catalog[candidate.doc_id].size <= max_size
                )
                push_lists[doc_id] = push_list
            for candidate_id, candidate_size in push_list:
                speculated_documents += 1
                speculated_bytes += candidate_size
                bytes_sent += candidate_size
                if caching and candidate_id in cached:
                    wasted_bytes += candidate_size
                    continue
                if candidate_id in pending:
                    wasted_bytes += pending.pop(candidate_id)
                if caching:
                    cached.add(candidate_id)
                pending[candidate_id] = candidate_size

        for pending in pending_pushes.values():
            wasted_bytes += sum(pending.values())

        metrics = SpeculationMetrics(
            bytes_sent=bytes_sent,
            server_requests=server_requests,
            service_time=service_time,
            miss_bytes=miss_bytes,
            accessed_bytes=accessed_bytes,
            speculated_documents=speculated_documents,
            speculated_bytes=speculated_bytes,
            wasted_bytes=wasted_bytes,
        )
        return SimulationRun(
            metrics=metrics,
            accesses=len(self._trace),
            cache_hits=cache_hits,
            prefetch_requests=0,
        )


class ClientPrefetcherLike:
    """Structural type for prefetchers (see :mod:`repro.speculation.prefetch`)."""

    def choose(self, requested, model, catalog):  # pragma: no cover - protocol
        """Documents the client decides to prefetch, best first."""
        raise NotImplementedError
