"""Client cache models (paper section 3.2).

The paper emulates client caching policies through ``SessionTimeout``:

* ``SessionTimeout = 0`` — a client with **no cache**.
* ``SessionTimeout = 60 min`` — an infinite-size **single-session** cache
  (purged when the client goes idle for a session gap).
* ``SessionTimeout = ∞`` — an infinite-size **multi-session** cache (the
  LAN cache of the paper's reference [4]); the baseline setting.

A finite **LRU** cache is also provided (the paper's "presence of such a
cache (even if modest)" remark), and every cache can produce the digest
of its contents for the cooperative-clients variant.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Protocol

from ..errors import SimulationError


class ClientCache(Protocol):
    """Protocol implemented by all client cache models."""

    def access(self, now: float) -> None:
        """Notify the cache of client activity at time ``now``.

        Session-scoped caches purge here when the idle gap since the
        previous activity reaches the session timeout.
        """
        ...

    def contains(self, doc_id: str) -> bool:
        """Is the document currently cached?"""
        ...

    def insert(self, doc_id: str, size: int) -> None:
        """Store a document (demand-fetched or speculatively pushed)."""
        ...

    def digest(self) -> frozenset[str]:
        """Document ids currently cached (for cooperative piggybacking)."""
        ...


class NoCache:
    """``SessionTimeout = 0``: nothing is ever cached."""

    def access(self, now: float) -> None:
        """No session state to advance."""

    def contains(self, doc_id: str) -> bool:
        """Always a miss."""
        return False

    def insert(self, doc_id: str, size: int) -> None:
        """Dropped on the floor."""

    def digest(self) -> frozenset[str]:
        """Always empty."""
        return frozenset()


class SessionCache:
    """Infinite cache purged after a session gap.

    Args:
        session_timeout: Idle seconds after which the cache is purged.
            ``inf`` never purges (multi-session cache); 0 behaves like
            :class:`NoCache`.
    """

    def __init__(self, session_timeout: float):
        if session_timeout < 0:
            raise SimulationError("session_timeout must be non-negative")
        self._timeout = session_timeout
        self._contents: set[str] = set()
        self._last_access: float | None = None

    def access(self, now: float) -> None:
        """Advance session state; purge when the idle gap hits timeout."""
        if self._last_access is not None:
            gap = now - self._last_access
            if gap < 0:
                raise SimulationError("cache accessed backwards in time")
            if gap >= self._timeout:
                self._contents.clear()
        elif self._timeout == 0:
            self._contents.clear()
        self._last_access = now

    def contains(self, doc_id: str) -> bool:
        """Is the document cached this session?"""
        return doc_id in self._contents

    def insert(self, doc_id: str, size: int) -> None:
        """Store the document (no-op at a zero session timeout)."""
        if self._timeout == 0:
            return
        self._contents.add(doc_id)

    def digest(self) -> frozenset[str]:
        """Currently cached document ids."""
        return frozenset(self._contents)


class InfiniteCache(SessionCache):
    """``SessionTimeout = ∞``: the infinite multi-session cache."""

    def __init__(self):
        super().__init__(math.inf)


class LRUCache:
    """Finite client cache with least-recently-used eviction.

    Args:
        capacity_bytes: Storage budget; documents exceeding it alone
            are simply not cached.
        session_timeout: Optional session purge on top of LRU (``inf``
            disables it).
    """

    def __init__(self, capacity_bytes: float, session_timeout: float = math.inf):
        if capacity_bytes <= 0:
            raise SimulationError("capacity_bytes must be positive")
        if session_timeout < 0:
            raise SimulationError("session_timeout must be non-negative")
        self._capacity = capacity_bytes
        self._timeout = session_timeout
        self._entries: OrderedDict[str, int] = OrderedDict()
        self._used = 0
        self._last_access: float | None = None

    def access(self, now: float) -> None:
        """Advance session state; purge after a session gap."""
        if self._last_access is not None and now - self._last_access >= self._timeout:
            self._entries.clear()
            self._used = 0
        self._last_access = now

    def contains(self, doc_id: str) -> bool:
        """Is the document cached? (refreshes its recency)"""
        if doc_id in self._entries:
            self._entries.move_to_end(doc_id)
            return True
        return False

    def insert(self, doc_id: str, size: int) -> None:
        """Store the document, evicting least-recently-used entries."""
        if size > self._capacity:
            return
        if doc_id in self._entries:
            self._used -= self._entries.pop(doc_id)
        while self._used + size > self._capacity and self._entries:
            __, evicted_size = self._entries.popitem(last=False)
            self._used -= evicted_size
        self._entries[doc_id] = size
        self._used += size

    def digest(self) -> frozenset[str]:
        """Currently cached document ids."""
        return frozenset(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used


def make_cache_factory(
    session_timeout: float,
    *,
    capacity_bytes: float = math.inf,
) -> Callable[[], ClientCache]:
    """Cache factory matching the paper's SessionTimeout semantics.

    Args:
        session_timeout: 0 → no cache; finite → single-session infinite
            cache; ``inf`` → multi-session infinite cache.
        capacity_bytes: Finite values switch to an LRU cache with the
            given budget (still honouring the session timeout).

    Returns:
        A zero-argument callable producing a fresh cache per client.
    """
    if session_timeout < 0:
        raise SimulationError("session_timeout must be non-negative")
    if capacity_bytes <= 0:
        raise SimulationError("capacity_bytes must be positive")
    if math.isinf(capacity_bytes):
        if session_timeout == 0:
            return NoCache
        return lambda: SessionCache(session_timeout)
    return lambda: LRUCache(capacity_bytes, session_timeout)
