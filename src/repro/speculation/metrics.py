"""The paper's four evaluation metrics (section 3.2).

All four are ratios of a speculation run against a no-speculation run
over the same trace and cache model:

* **Bandwidth ratio** — bytes communicated with / without speculation
  (> 1: speculation buys its gains with extra traffic).
* **Server load ratio** — requests hitting the server with / without.
* **Service time ratio** — total retrieval latency with / without.
* **Miss rate ratio** — client byte miss rate with / without.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class SpeculationMetrics:
    """Raw totals from one simulation run.

    Attributes:
        bytes_sent: Total bytes communicated server → clients, demand
            and speculative together.
        server_requests: Requests that reached the server.
        service_time: Total retrieval latency in cost units
            (ServCost per server round trip + CommCost per demand byte).
        miss_bytes: Bytes the client had to fetch (not in its cache).
        accessed_bytes: Bytes of all client accesses (hit or miss).
        speculated_documents: Documents pushed speculatively.
        speculated_bytes: Bytes pushed speculatively.
        wasted_bytes: Speculated bytes never used before being purged.
    """

    bytes_sent: float
    server_requests: int
    service_time: float
    miss_bytes: float
    accessed_bytes: float
    speculated_documents: int = 0
    speculated_bytes: float = 0.0
    wasted_bytes: float = 0.0

    def __post_init__(self) -> None:
        numbers = (
            self.bytes_sent,
            self.server_requests,
            self.service_time,
            self.miss_bytes,
            self.accessed_bytes,
            self.speculated_documents,
            self.speculated_bytes,
            self.wasted_bytes,
        )
        if any(value < 0 for value in numbers):
            raise SimulationError("metrics must be non-negative")

    @property
    def miss_rate(self) -> float:
        """Byte miss rate: bytes not found in cache over bytes accessed."""
        return self.miss_bytes / self.accessed_bytes if self.accessed_bytes else 0.0


@dataclass(frozen=True)
class SpeculationRatios:
    """The four ratios (speculation / baseline), plus conveniences."""

    bandwidth_ratio: float
    server_load_ratio: float
    service_time_ratio: float
    miss_rate_ratio: float

    @property
    def traffic_increase(self) -> float:
        """Extra traffic bought: ``bandwidth_ratio − 1`` (≥ 0 usually)."""
        return self.bandwidth_ratio - 1.0

    @property
    def server_load_reduction(self) -> float:
        return 1.0 - self.server_load_ratio

    @property
    def service_time_reduction(self) -> float:
        return 1.0 - self.service_time_ratio

    @property
    def miss_rate_reduction(self) -> float:
        return 1.0 - self.miss_rate_ratio

    def format(self) -> str:
        """One-line human-readable rendering of the four ratios."""
        return (
            f"traffic {self.traffic_increase:+.1%}  "
            f"load -{self.server_load_reduction:.1%}  "
            f"time -{self.service_time_reduction:.1%}  "
            f"miss -{self.miss_rate_reduction:.1%}"
        )


def _ratio(numerator: float, denominator: float) -> float:
    if denominator == 0:
        return 1.0 if numerator == 0 else float("inf")
    return numerator / denominator


def compare(
    speculation: SpeculationMetrics, baseline: SpeculationMetrics
) -> SpeculationRatios:
    """Compute the four ratios of a speculation run over its baseline."""
    return SpeculationRatios(
        bandwidth_ratio=_ratio(speculation.bytes_sent, baseline.bytes_sent),
        server_load_ratio=_ratio(
            speculation.server_requests, baseline.server_requests
        ),
        service_time_ratio=_ratio(speculation.service_time, baseline.service_time),
        miss_rate_ratio=_ratio(speculation.miss_rate, baseline.miss_rate),
    )
