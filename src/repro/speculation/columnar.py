"""Columnar (vectorized) replay of the speculative-service simulator.

The event loops in :mod:`repro.speculation.simulator` walk the trace one
request at a time.  This module replays the *same* semantics over numpy
column arrays — timestamps, client codes, document codes, sizes — in a
handful of vectorized passes:

1. **Sessions.**  A stable sort by client groups each client's requests
   contiguously (preserving time order); session boundaries fall where a
   client changes or an inter-request gap reaches ``SessionTimeout``.
   Session caches are cleared at boundaries, so hit/miss resolution is
   independent across sessions.  The sorted columns, session ids and
   first-occurrence tables depend only on ``(trace, SessionTimeout)``
   and are memoized per trace.
2. **Hit/miss fixpoint.**  Within a session, a document is cached from
   its first event (demand request or speculative push) onward.  Only
   the *first* request of each ``(session, document)`` pair can miss,
   and only documents that appear in some push list can be covered
   before their first request — every other first occurrence misses
   outright, and its push list seeds a coverage matrix holding the
   earliest covering position per ``(session, document)``.  The
   remaining *pushable* first occurrences are resolved in
   level-synchronous rounds over their rank within the session: round
   ``k`` decides every session's ``k``-th pushable occurrence at once
   (hit iff covered at an earlier position), then scatters the new
   misses' push lists.  Sessions are chunked so the dense matrix stays
   bounded.
3. **Counters.**  All byte counters are exact integer sums.
   ``service_time`` accumulates ``ServCost + CommCost × size`` over the
   misses *in original trace order* via ``np.add.accumulate`` — a
   strict left fold, bit-identical to the event loop's running ``+=``.
4. **Wasted bytes.**  Ineffective pushes (target already cached in the
   session) are charged immediately; effective pushes are charged iff
   the pending entry they create is later *replaced* by another push or
   survives to the end of the trace — resolved by merging effective
   pushes and cache hits per ``(client, document)`` and checking each
   push's successor event, exactly the event loop's pending-dict
   semantics.

Bit-exactness contract: for every fast-path-eligible configuration the
returned metrics equal the event loop's **exactly** (``==`` on every
counter, including the float ``service_time``), pinned by
``tests/test_columnar_replay.py``.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass

import numpy as np

from ..config import BaselineConfig
from ..trace.records import Document, Trace
from .dependency import DependencyModel
from .metrics import SpeculationMetrics
from .policies import SpeculationPolicy

#: Sessions resolved per dense coverage matrix; bounds peak memory of
#: the hit/miss fixpoint at ``chunk × universe`` int64 cells.
_SESSION_CHUNK = 4096

#: Per-trace request-size column, memoized alongside the coded columns
#: of :mod:`repro.speculation.sparse` (weak keys: the cache never pins
#: a trace in memory).
_trace_sizes: "weakref.WeakKeyDictionary[Trace, np.ndarray]" = (
    weakref.WeakKeyDictionary()
)

#: Per-trace session tables, keyed by ``SessionTimeout`` inside the
#: weak entry — sweeps and benchmark repeats reuse them across runs.
_trace_sessions: "weakref.WeakKeyDictionary[Trace, dict[float, _SessionTables]]" = (
    weakref.WeakKeyDictionary()
)

#: Per-trace, per-model memoized push tables.  The inner key pins the
#: policy (frozen dataclass), the MaxSize cap, and the model's mutation
#: counter, so an ``observe`` on the model invalidates the entry.
_trace_pushes: "weakref.WeakKeyDictionary[Trace, weakref.WeakKeyDictionary]" = (
    weakref.WeakKeyDictionary()
)

#: Reusable scratch for the dense ``session × document`` pair map; a
#: fresh multi-megabyte allocation per replay costs more in page
#: faults than the fill itself.  Grown on demand, never shrunk.
_pairmap_scratch = np.zeros(0, dtype=np.int32)


def _pairmap_buffer(size: int) -> np.ndarray:
    """A reusable int32 scratch array of at least ``size`` elements."""
    global _pairmap_scratch
    if _pairmap_scratch.size < size:
        _pairmap_scratch = np.empty(size, dtype=np.int32)
    return _pairmap_scratch[:size]


def _sized_column(trace: Trace) -> np.ndarray:
    """The per-request byte-size column of a trace, memoized."""
    cached = _trace_sizes.get(trace)
    if cached is None:
        cached = np.fromiter(
            (request.size for request in trace),
            dtype=np.int64,
            count=len(trace),
        )
        _trace_sizes[trace] = cached
    return cached


@dataclass(frozen=True)
class ColumnarReplay:
    """Result of one columnar replay.

    Attributes:
        metrics: Raw totals, field-for-field equal to the event loop's.
        accesses: Requests replayed.
        cache_hits: Requests satisfied by the client session cache.
    """

    metrics: SpeculationMetrics
    accesses: int
    cache_hits: int


@dataclass(frozen=True)
class _SessionTables:
    """Client-sorted columns and session structure for one timeout.

    ``order`` maps sorted positions back to original trace indices;
    ``key_base`` (> any document code, including push-only codes) turns
    ``(session, document)`` pairs into single int64 keys;
    ``unique_sd``/``first_index`` give, per pair, the sorted position of
    the session's first request for the document; ``fo_*`` list those
    first occurrences in position order.
    """

    order: np.ndarray
    times: np.ndarray
    doc: np.ndarray
    client: np.ndarray
    session: np.ndarray
    session_client: np.ndarray
    n_sessions: int
    key_base: int
    unique_sd: np.ndarray
    first_index: np.ndarray
    fo_pos: np.ndarray
    fo_sess: np.ndarray
    fo_doc: np.ndarray


def _session_tables(trace: Trace, timeout: float) -> _SessionTables:
    """Build (or fetch) the session tables for ``(trace, timeout)``."""
    from .sparse import _coded_columns

    per_trace = _trace_sessions.get(trace)
    if per_trace is None:
        per_trace = {}
        _trace_sessions[trace] = per_trace
    cached = per_trace.get(timeout)
    if cached is not None:
        return cached

    docs, times, doc_codes, client_codes = _coded_columns(trace)
    n = len(trace)
    order = np.argsort(client_codes, kind="stable")
    t = times[order]
    d = doc_codes[order]
    c = client_codes[order]
    boundary = np.ones(n, dtype=bool)
    if n > 1:
        same_client = c[1:] == c[:-1]
        if math.isinf(timeout):
            boundary[1:] = ~same_client
        else:
            boundary[1:] = ~(same_client & ((t[1:] - t[:-1]) < timeout))
    session = np.cumsum(boundary) - 1
    n_sessions = int(session[-1]) + 1
    # Any push target lives in the catalog, so catalog size bounds the
    # whole code universe — the keys stay valid for every policy.
    key_base = len(trace.documents) + 1
    session_doc = session * np.int64(key_base) + d
    unique_sd, first_index = np.unique(session_doc, return_index=True)
    fo_pos = np.sort(first_index)
    tables = _SessionTables(
        order=order,
        times=t,
        doc=d,
        client=c,
        session=session,
        session_client=c[np.flatnonzero(boundary)],
        n_sessions=n_sessions,
        key_base=key_base,
        unique_sd=unique_sd,
        first_index=first_index,
        fo_pos=fo_pos,
        fo_sess=session[fo_pos],
        fo_doc=d[fo_pos],
    )
    per_trace[timeout] = tables
    return tables


@dataclass(frozen=True)
class _PushTables:
    """CSR push lists per demanded document code.

    ``targets`` are codes in a universe that extends the trace's coded
    documents with push-only catalog documents; ``sizes`` are catalog
    sizes (pushes always ship the cataloged size, which may differ from
    a request's logged size), and ``target_sizes`` folds them down to
    one size per target code — a push's byte size depends only on its
    target.
    """

    universe: int
    indptr: np.ndarray
    targets: np.ndarray
    sizes: np.ndarray
    lengths: np.ndarray
    byte_sums: np.ndarray
    target_sizes: np.ndarray


def _build_push_tables(
    docs: list[str],
    policy: SpeculationPolicy,
    model: DependencyModel,
    catalog: dict[str, Document],
    max_size: float,
) -> _PushTables:
    """Resolve every document's push list once through the policy.

    Applies the same catalog-membership and ``MaxSize`` filter as the
    event loop, in the same candidate order, so the resulting lists are
    value-identical to the loop's memoized ``push_lists``.
    """
    index = {doc: code for code, doc in enumerate(docs)}
    extra: dict[str, int] = {}
    indptr = np.zeros(len(docs) + 1, dtype=np.int64)
    columns: list[int] = []
    column_sizes: list[int] = []
    for code, doc in enumerate(docs):
        for candidate in policy.select(doc, model, catalog):
            document = catalog.get(candidate.doc_id)
            if document is None or document.size > max_size:
                continue
            target = index.get(candidate.doc_id)
            if target is None:
                target = extra.get(candidate.doc_id)
                if target is None:
                    target = len(index) + len(extra)
                    extra[candidate.doc_id] = target
            columns.append(target)
            column_sizes.append(document.size)
        indptr[code + 1] = len(columns)
    lengths = np.diff(indptr)
    sizes = np.asarray(column_sizes, dtype=np.int64)
    byte_sums = np.zeros(len(docs), dtype=np.int64)
    np.add.at(byte_sums, np.repeat(np.arange(len(docs)), lengths), sizes)
    universe = len(index) + len(extra)
    targets = np.asarray(columns, dtype=np.int64)
    target_sizes = np.zeros(universe, dtype=np.int64)
    target_sizes[targets] = sizes
    return _PushTables(
        universe=universe,
        indptr=indptr,
        targets=targets,
        sizes=sizes,
        lengths=lengths,
        byte_sums=byte_sums,
        target_sizes=target_sizes,
    )


def _push_tables(
    trace: Trace,
    docs: list[str],
    policy: SpeculationPolicy,
    model: DependencyModel,
    max_size: float,
) -> _PushTables:
    """Memoized push tables: rebuilt only when the model's counts move.

    The cache key pins everything the tables are a pure function of —
    the trace (outer weak key), the model (inner weak key) and its
    :attr:`~DependencyModel.version`, the frozen policy, and the
    ``MaxSize`` cap — so repeated replays (sweeps, benchmark repeats)
    skip the per-document ``select`` calls entirely.
    """
    per_trace = _trace_pushes.get(trace)
    if per_trace is None:
        per_trace = weakref.WeakKeyDictionary()
        _trace_pushes[trace] = per_trace
    per_model = per_trace.get(model)
    if per_model is None:
        per_model = {}
        per_trace[model] = per_model
    try:
        key = (policy, float(max_size))
    except TypeError:  # unhashable policy: build uncached
        return _build_push_tables(docs, policy, model, trace.documents, max_size)
    entry = per_model.get(key)
    version = getattr(model, "version", None)
    if entry is not None and entry[0] == version and version is not None:
        tables: _PushTables = entry[1]
        return tables
    tables = _build_push_tables(docs, policy, model, trace.documents, max_size)
    if version is not None:
        per_model[key] = (version, tables)
    return tables


def _expand_csr(
    row_codes: np.ndarray, indptr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat CSR positions and within-row offsets for many rows at once.

    Returns ``(positions, offsets)`` where ``positions`` indexes the CSR
    data arrays row by row and ``offsets`` is each element's 0-based
    position inside its row.
    """
    lengths = indptr[row_codes + 1] - indptr[row_codes]
    total = int(lengths.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    positions = offsets + np.repeat(indptr[row_codes], lengths)
    return positions, offsets


def _service_fold(sizes: np.ndarray, config: BaselineConfig) -> float:
    """Left-fold ``ServCost + CommCost × size`` exactly as ``+=`` does."""
    if sizes.size == 0:
        return 0.0
    terms = config.serv_cost + config.comm_cost * sizes.astype(np.float64)
    return float(np.add.accumulate(terms)[-1])


@dataclass(frozen=True)
class _EffectivePushes:
    """One row per ``(session, target)`` push group with a live head.

    A group's earliest push is *effective* when it lands before the
    target's first demand request in the session (or the target is
    never requested there); every other push in the group is wasted on
    arrival.  ``position`` is the effective push's trigger position in
    the client-sorted order.
    """

    session: np.ndarray
    target: np.ndarray
    position: np.ndarray


def _resolve_misses(
    tables: _SessionTables, push: _PushTables | None
) -> tuple[np.ndarray, _EffectivePushes | None]:
    """Miss positions (sorted order) and effective pushes, via fixpoint.

    Baseline runs (no pushes) miss on every first occurrence.  With
    pushes, only first occurrences of *pushable* documents need
    resolution; everything else misses outright and merely seeds the
    coverage map with its push list.

    The undecided events are solved by alternating (Jacobi) iteration
    of the antitone operator ``F(S) = {e : no earlier event of S pushes
    e's document}`` starting from the all-miss state.  ``F``'s unique
    fixpoint is the event loop's miss set (uniqueness by induction on
    each event's rank in its session), successive iterates bracket it
    from both sides, and after ``k`` steps the iterate is exact on the
    first ``k`` ranks — so iterate-equality certifies the fixpoint and
    the rank bound caps the loop.  In practice coverage chains are
    shallow and a handful of passes converge, independent of session
    length.

    Each pass recomputes earliest-push positions over the *compressed
    pair domain* — one slot per requested ``(session, document)`` pair,
    i.e. per first occurrence — with one masked scatter: push events
    are expanded once in trigger-position order, and a reversed
    fancy-index assignment makes the *smallest* position win every slot
    — no ``np.minimum.at``.  Pushes from the always-missing (known)
    events form a static base folded in with one ``np.minimum``; only
    the undecided events' pushes are re-scattered per pass.  At the
    fixpoint the coverage map holds, per requested pair, the earliest
    push among the actual misses: the head push of a pair's group is
    effective iff that position precedes the pair's first request.
    Groups whose target is never requested in the session always keep
    an effective head; they are recovered in one dense
    ``session × universe`` pass at the end.
    """
    fo_pos = tables.fo_pos
    if push is None or push.targets.size == 0:
        return fo_pos, None
    universe = push.universe
    pushable = np.zeros(universe, dtype=bool)
    pushable[push.targets] = True
    fo_pushable = pushable[tables.fo_doc]
    miss_fo = ~fo_pushable
    sentinel = tables.order.size  # larger than any sorted position
    ep_sess: list[np.ndarray] = []
    ep_target: list[np.ndarray] = []
    ep_position: list[np.ndarray] = []

    for chunk_start in range(0, tables.n_sessions, _SESSION_CHUNK):
        chunk_stop = min(chunk_start + _SESSION_CHUNK, tables.n_sessions)
        f_lo = int(np.searchsorted(tables.fo_sess, chunk_start, side="left"))
        f_hi = int(np.searchsorted(tables.fo_sess, chunk_stop, side="left"))
        n_pairs = f_hi - f_lo
        if n_pairs == 0:
            continue
        sess_rel = tables.fo_sess[f_lo:f_hi] - chunk_start
        docs_c = tables.fo_doc[f_lo:f_hi]
        pos_c = tables.fo_pos[f_lo:f_hi]
        und_mask = fo_pushable[f_lo:f_hi]
        dense_size = (chunk_stop - chunk_start) * universe

        # Map dense (session, target) cells to pair slots: every
        # requested pair is a first occurrence, so the chunk's first
        # occurrences enumerate the slots.
        pairmap = _pairmap_buffer(dense_size)
        pairmap.fill(-1)
        dense_req = sess_rel * np.int64(universe) + docs_c
        pairmap[dense_req] = np.arange(n_pairs, dtype=np.int32)

        # Expand every first occurrence's push list once, in trigger
        # (position) order, so reversed assignment is a min-scatter.
        positions, _ = _expand_csr(docs_c, push.indptr)
        counts = push.lengths[docs_c]
        src_fo = np.repeat(np.arange(n_pairs, dtype=np.int64), counts)
        p_tgt = push.targets[positions]
        p_cell = sess_rel[src_fo] * np.int64(universe) + p_tgt
        p_at = pos_c[src_fo]
        p_code = pairmap[p_cell]
        src_known = ~und_mask[src_fo]

        # Static base: pushes from always-missing events onto requested
        # pairs (earliest position per slot via reversed assignment).
        base = np.full(n_pairs, sentinel, dtype=np.int64)
        in_base = src_known & (p_code >= 0)
        base[p_code[in_base][::-1]] = p_at[in_base][::-1]

        # Dynamic half: undecided events' pushes onto requested pairs.
        in_iter = ~src_known & (p_code >= 0)
        u_code = p_code[in_iter][::-1]
        u_at = p_at[in_iter][::-1]
        u_src = src_fo[in_iter][::-1]

        und_idx = np.flatnonzero(und_mask)
        und_pos = pos_c[und_idx]
        miss_pairs = np.ones(n_pairs, dtype=bool)
        cover = np.empty(n_pairs, dtype=np.int64)
        for _ in range(und_idx.size + 1):
            active = miss_pairs[u_src]
            cover.fill(sentinel)
            cover[u_code[active]] = u_at[active]
            np.minimum(cover, base, out=cover)
            new_miss = cover[und_idx] >= und_pos
            if np.array_equal(new_miss, miss_pairs[und_idx]):
                break
            miss_pairs[und_idx] = new_miss
        else:  # exhausted the rank bound: re-derive coverage once
            active = miss_pairs[u_src]
            cover.fill(sentinel)
            cover[u_code[active]] = u_at[active]
            np.minimum(cover, base, out=cover)
        miss_fo[f_lo:f_hi] = miss_pairs

        # Effective pushes on requested pairs: straight off the cover.
        eff = cover < pos_c
        if eff.any():
            ep_sess.append(sess_rel[eff] + chunk_start)
            ep_target.append(docs_c[eff])
            ep_position.append(cover[eff])

        # Effective pushes on never-requested targets: each such group
        # keeps its earliest push.  The push events are position-
        # ordered, so ``np.unique``'s first-occurrence index is the
        # group minimum.
        stray = (p_code < 0) & miss_pairs[src_fo]
        if stray.any():
            cells, first = np.unique(p_cell[stray], return_index=True)
            ep_sess.append(cells // universe + chunk_start)
            ep_target.append(cells % universe)
            ep_position.append(p_at[stray][first])
    eps = _EffectivePushes(
        session=np.concatenate(ep_sess) if ep_sess else np.zeros(0, np.int64),
        target=np.concatenate(ep_target)
        if ep_target
        else np.zeros(0, np.int64),
        position=np.concatenate(ep_position)
        if ep_position
        else np.zeros(0, np.int64),
    )
    return fo_pos[miss_fo], eps


def _wasted_bytes(
    tables: _SessionTables,
    push: _PushTables,
    eps: _EffectivePushes,
    miss_pos: np.ndarray,
    speculated_bytes: int,
) -> int:
    """Total bytes of speculated documents never used, exactly.

    Part 1 — ineffective pushes: every pushed byte except the effective
    group heads (:class:`_EffectivePushes`) is wasted on arrival, so
    their total is ``speculated_bytes`` minus the heads'.

    Part 2 — pending replacement and leftovers: per ``(client,
    document)``, an effective push's bytes are *used* only when the
    next effective-push-or-hit event is a hit (the hit deletes the
    pending entry); a successor push replaces — and wastes — it, and a
    push with no successor is wasted at the end of the trace.  Pushes
    and requests never share a position, so doubling positions (+1 for
    pushes) gives a collision-free merge key.
    """
    ep_sizes = push.target_sizes[eps.target]
    wasted = speculated_bytes - int(ep_sizes.sum())
    if eps.target.size == 0:
        return wasted

    hit_mask = np.ones(tables.order.size, dtype=bool)
    hit_mask[miss_pos] = False
    hit_pos = np.flatnonzero(hit_mask)
    ev_client = np.concatenate(
        [tables.session_client[eps.session], tables.client[hit_pos]]
    )
    ev_doc = np.concatenate([eps.target, tables.doc[hit_pos]])
    ev_key = np.concatenate([eps.position * 2 + 1, hit_pos * 2])
    ev_is_hit = np.concatenate(
        [
            np.zeros(eps.target.size, dtype=bool),
            np.ones(hit_pos.size, dtype=bool),
        ]
    )
    ev_size = np.concatenate(
        [ep_sizes, np.zeros(hit_pos.size, dtype=np.int64)]
    )
    merged = np.lexsort(
        (ev_key, ev_client * np.int64(tables.key_base) + ev_doc)
    )
    m_client = ev_client[merged]
    m_doc = ev_doc[merged]
    m_is_hit = ev_is_hit[merged]
    m_size = ev_size[merged]
    used = np.zeros(merged.size, dtype=bool)
    if merged.size > 1:
        same_pair = (m_client[:-1] == m_client[1:]) & (m_doc[:-1] == m_doc[1:])
        used[:-1] = same_pair & m_is_hit[1:]
    return wasted + int(m_size[~m_is_hit & ~used].sum())


def replay_columnar(
    trace: Trace,
    config: BaselineConfig,
    *,
    model: DependencyModel | None = None,
    policy: SpeculationPolicy | None = None,
) -> ColumnarReplay:
    """Replay a trace in vectorized columnar passes.

    Semantically identical to the simulator's fast event loop for the
    default configuration: per-client ``SessionTimeout`` caches, no
    cooperation, no digests, no prefetchers, and either no policy
    (baseline) or a pure-``select`` policy over a fixed model.

    Args:
        trace: The access trace to replay.
        config: Cost model and timeouts.
        model: Fixed dependency model (required when ``policy`` given).
        policy: Speculation policy; ``None`` replays the baseline.

    Returns:
        A :class:`ColumnarReplay` whose counters are bit-identical to
        the event loop's.
    """
    from .sparse import _coded_columns

    n = len(trace)
    if n == 0:
        return ColumnarReplay(
            metrics=SpeculationMetrics(
                bytes_sent=0,
                server_requests=0,
                service_time=0.0,
                miss_bytes=0,
                accessed_bytes=0,
            ),
            accesses=0,
            cache_hits=0,
        )
    docs, _, doc_codes, _ = _coded_columns(trace)
    sizes = _sized_column(trace)
    timeout = config.session_timeout
    caching = timeout > 0

    push: _PushTables | None = None
    if policy is not None:
        if model is None:
            raise ValueError("columnar replay with a policy requires a model")
        push = _push_tables(trace, docs, policy, model, config.max_size)

    accessed_bytes = int(sizes.sum())

    if not caching:
        # No client cache: every request misses and every pushed byte is
        # eventually wasted (nothing is ever served from cache).
        if push is None:
            speculated_documents = 0
            speculated_bytes = 0
        else:
            speculated_documents = int(push.lengths[doc_codes].sum())
            speculated_bytes = int(push.byte_sums[doc_codes].sum())
        return ColumnarReplay(
            metrics=SpeculationMetrics(
                bytes_sent=accessed_bytes + speculated_bytes,
                server_requests=n,
                service_time=_service_fold(sizes, config),
                miss_bytes=accessed_bytes,
                accessed_bytes=accessed_bytes,
                speculated_documents=speculated_documents,
                speculated_bytes=speculated_bytes,
                wasted_bytes=speculated_bytes,
            ),
            accesses=n,
            cache_hits=0,
        )

    tables = _session_tables(trace, timeout)
    miss_pos, eps = _resolve_misses(tables, push)

    # Misses in original trace order drive the exact service-time fold.
    miss_original = np.zeros(n, dtype=bool)
    miss_original[tables.order[miss_pos]] = True
    miss_sizes = sizes[miss_original]
    miss_bytes = int(miss_sizes.sum())
    n_miss = int(miss_pos.size)
    service_time = _service_fold(miss_sizes, config)

    if push is None:
        return ColumnarReplay(
            metrics=SpeculationMetrics(
                bytes_sent=miss_bytes,
                server_requests=n_miss,
                service_time=service_time,
                miss_bytes=miss_bytes,
                accessed_bytes=accessed_bytes,
            ),
            accesses=n,
            cache_hits=n - n_miss,
        )

    miss_docs = tables.doc[miss_pos]
    speculated_documents = int(push.lengths[miss_docs].sum())
    speculated_bytes = int(push.byte_sums[miss_docs].sum())
    # ``eps`` is None only when the policy never pushes anything, in
    # which case nothing was speculated and nothing can be wasted.
    wasted_bytes = (
        0
        if eps is None
        else _wasted_bytes(tables, push, eps, miss_pos, speculated_bytes)
    )

    return ColumnarReplay(
        metrics=SpeculationMetrics(
            bytes_sent=miss_bytes + speculated_bytes,
            server_requests=n_miss,
            service_time=service_time,
            miss_bytes=miss_bytes,
            accessed_bytes=accessed_bytes,
            speculated_documents=speculated_documents,
            speculated_bytes=speculated_bytes,
            wasted_bytes=wasted_bytes,
        ),
        accesses=n,
        cache_hits=n - n_miss,
    )
