"""Server-assisted prefetching and the hybrid protocol (section 3.4).

Instead of pushing documents outright, the server can *assist* clients:
it attaches to each response a list of document URLs highly likely to be
requested soon, and clients decide what to prefetch.  Prefetching moves
the bandwidth decision to the client but — unlike speculative service —
each prefetched document costs the server a request.

The **hybrid** protocol combines both: server-initiated speculation is
restricted to near-certain documents (embeddings), while less probable
future accesses are left to client-initiated prefetching from the hint
list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PolicyError
from ..trace.records import Document
from .dependency import DependencyModel
from .policies import Candidate, EmbeddingOnlyPolicy


@dataclass(frozen=True)
class PrefetchHints:
    """Server-side hint generator.

    Attributes:
        max_hints: Hints attached per response.
        min_probability: Follow-ups below this are never hinted.
        use_closure: Rank hints by ``P*`` (default) or direct ``P``.
        max_hops: Chain-length cap for closure computation.
    """

    max_hints: int = 10
    min_probability: float = 0.05
    use_closure: bool = True
    max_hops: int = 8

    def __post_init__(self) -> None:
        if self.max_hints < 1:
            raise PolicyError("max_hints must be >= 1")
        if not 0.0 < self.min_probability <= 1.0:
            raise PolicyError("min_probability must be in (0, 1]")

    def hints(
        self,
        requested: str,
        model: DependencyModel,
        catalog: dict[str, Document],
    ) -> list[Candidate]:
        """The hint list the server attaches to a response."""
        if self.use_closure:
            row = model.closure_row(
                requested,
                min_probability=self.min_probability,
                max_hops=self.max_hops,
            )
        else:
            row = model.successors(requested)
        hints = [
            Candidate(doc_id=target, probability=probability)
            for target, probability in row.items()
            if probability >= self.min_probability and target in catalog
        ]
        hints.sort(key=lambda c: (-c.probability, c.doc_id))
        return hints[: self.max_hints]


@dataclass(frozen=True)
class ClientPrefetcher:
    """Client-side prefetch decision from server hints.

    Attributes:
        hints: The server's hint generator.
        threshold: The client prefetches hinted documents with
            probability at least this value.
        max_size: The client skips hinted documents larger than this.
    """

    hints: PrefetchHints = PrefetchHints()
    threshold: float = 0.25
    max_size: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise PolicyError("threshold must be in (0, 1]")
        if self.max_size <= 0:
            raise PolicyError("max_size must be positive")

    def choose(
        self,
        requested: str,
        model: DependencyModel,
        catalog: dict[str, Document],
    ) -> list[str]:
        """Documents the client decides to prefetch, best first."""
        chosen = []
        for candidate in self.hints.hints(requested, model, catalog):
            if candidate.probability < self.threshold:
                break  # hints are sorted; nothing later qualifies
            document = catalog.get(candidate.doc_id)
            if document is not None and document.size <= self.max_size:
                chosen.append(candidate.doc_id)
        return chosen


@dataclass(frozen=True)
class HybridProtocol:
    """Speculation for embeddings + client prefetch for traversals.

    Server-initiated speculative service handles documents that are
    near-certainly needed (embedding dependencies — no wasted
    bandwidth); the remaining probable accesses are hinted and left to
    client-initiated prefetching.

    Pass :attr:`policy` and :attr:`prefetcher` to
    :meth:`repro.speculation.simulator.SpeculativeServiceSimulator.run`.
    """

    policy: EmbeddingOnlyPolicy = EmbeddingOnlyPolicy()
    prefetcher: ClientPrefetcher = ClientPrefetcher()

    @classmethod
    def with_thresholds(
        cls,
        *,
        embedding_tolerance: float = 0.05,
        prefetch_threshold: float = 0.25,
        max_size: float = math.inf,
    ) -> "HybridProtocol":
        """Build a hybrid protocol from the two decision thresholds."""
        return cls(
            policy=EmbeddingOnlyPolicy(
                tolerance=embedding_tolerance, max_size=max_size
            ),
            prefetcher=ClientPrefetcher(
                threshold=prefetch_threshold, max_size=max_size
            ),
        )
