"""Compact cache digests for cooperative clients.

Section 3.4's cooperative clients piggyback "a list of document IDs
that it already has in its cache" on every request.  Literal ID lists
grow with the cache; the practical encoding (later popularized by
Summary Cache) is a **Bloom filter**: a few bits per document, with a
tunable false-positive rate.

A false positive makes the server believe the client caches a document
it does not, so the server skips a push that would have been useful —
cooperative gains degrade gracefully with the digest's compression.
:class:`BloomFilter` implements the filter;
:func:`digest_size_bytes` sizes the per-request overhead so the
trade-off (digest bytes vs wasted speculative bytes) can be measured.
"""

from __future__ import annotations

import math

from ..errors import PolicyError


class BloomFilter:
    """A classic Bloom filter over string items.

    Args:
        capacity: Number of items the filter is sized for.
        fp_rate: Target false-positive probability at capacity.
        seed: Salt for the hash family (determinism across runs).

    Sizing uses the standard optima: ``m = −n·ln(p) / ln(2)²`` bits and
    ``k = (m/n)·ln(2)`` hash functions.
    """

    def __init__(self, capacity: int, fp_rate: float, *, seed: int = 0):
        if capacity < 1:
            raise PolicyError("capacity must be >= 1")
        if not 0.0 < fp_rate < 1.0:
            raise PolicyError("fp_rate must be in (0, 1)")
        self._n_bits = max(
            8, int(math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        )
        self._n_hashes = max(
            1, int(round(self._n_bits / capacity * math.log(2)))
        )
        self._seed = seed
        self._capacity = capacity
        self._bits = 0  # arbitrary-size int as the bit array
        self._count = 0

    @property
    def capacity(self) -> int:
        """The item count the filter was sized for."""
        return self._capacity

    @property
    def n_bits(self) -> int:
        return self._n_bits

    @property
    def n_hashes(self) -> int:
        return self._n_hashes

    @property
    def count(self) -> int:
        """Items added so far."""
        return self._count

    def _positions(self, item: str):
        # Double hashing over two independent 64-bit halves of a keyed
        # blake2b digest — deterministic across runs and well mixed.
        import hashlib

        digest = hashlib.blake2b(
            item.encode(), digest_size=16, salt=self._seed.to_bytes(8, "little")
        ).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        for index in range(self._n_hashes):
            yield (h1 + index * h2) % self._n_bits

    def add(self, item: str) -> None:
        """Insert an item."""
        for position in self._positions(item):
            self._bits |= 1 << position
        self._count += 1

    def __contains__(self, item: str) -> bool:
        return all((self._bits >> p) & 1 for p in self._positions(item))

    def clear(self) -> None:
        """Empty the filter (client cache purge)."""
        self._bits = 0
        self._count = 0

    @classmethod
    def from_items(
        cls, items, fp_rate: float = 0.01, *, seed: int = 0, capacity: int | None = None
    ) -> "BloomFilter":
        """Build a filter holding ``items``.

        Args:
            items: The items to insert.
            fp_rate: Target false-positive rate.
            seed: Hash salt.
            capacity: Size the filter for this many items (default: the
                number of items given, minimum 16 so tiny caches don't
                produce degenerate filters).
        """
        materialized = list(items)
        bloom = cls(
            capacity or max(16, len(materialized)), fp_rate, seed=seed
        )
        for item in materialized:
            bloom.add(item)
        return bloom


def digest_size_bytes(n_documents: int, *, fp_rate: float | None = None) -> float:
    """Per-request digest overhead in bytes.

    Args:
        n_documents: Documents in the client's cache.
        fp_rate: ``None`` sizes the *exact* digest (an ID list at ~24
            bytes per URL, the mid-90s average path length); otherwise
            the Bloom filter at that false-positive rate.
    """
    if n_documents < 0:
        raise PolicyError("n_documents must be non-negative")
    if n_documents == 0:
        return 0.0
    if fp_rate is None:
        return 24.0 * n_documents
    if not 0.0 < fp_rate < 1.0:
        raise PolicyError("fp_rate must be in (0, 1)")
    bits = -n_documents * math.log(fp_rate) / (math.log(2) ** 2)
    return max(1.0, bits / 8.0)
