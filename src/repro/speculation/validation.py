"""Prediction-quality diagnostics for speculation policies.

Beyond the paper's four cost ratios, a deployment wants to know *how
good the predictions themselves are*: of the documents a policy would
push, how many are actually requested soon (precision), and how much of
the soon-requested traffic the policy covers (recall)?

:func:`evaluate_policy_predictions` replays a trace and scores each
miss's speculation set against the same client's actual accesses within
a horizon.  This is the natural tool for comparing policies and tuning
thresholds before committing to a full cost simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..trace.records import Trace
from .dependency import DependencyModel
from .policies import SpeculationPolicy


@dataclass(frozen=True)
class PredictionQuality:
    """Aggregate precision/recall of a policy over a trace.

    Attributes:
        predictions: Documents speculated across all scored requests.
        used_predictions: Speculated documents actually requested by
            the same client within the horizon.
        opportunities: Distinct (request, future document) pairs within
            the horizon that speculation could have covered.
        covered_opportunities: Opportunities the policy did cover.
        scored_requests: Requests at which the policy was invoked.
    """

    predictions: int
    used_predictions: int
    opportunities: int
    covered_opportunities: int
    scored_requests: int

    @property
    def precision(self) -> float:
        """Used predictions over all predictions (1.0 when no predictions)."""
        return (
            self.used_predictions / self.predictions if self.predictions else 1.0
        )

    @property
    def recall(self) -> float:
        """Covered opportunities over all opportunities (0.0 when none)."""
        return (
            self.covered_opportunities / self.opportunities
            if self.opportunities
            else 0.0
        )

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def evaluate_policy_predictions(
    trace: Trace,
    model: DependencyModel,
    policy: SpeculationPolicy,
    *,
    horizon: float = 5.0,
    max_requests: int | None = None,
) -> PredictionQuality:
    """Score a policy's speculation sets against actual future accesses.

    For each request ``r`` (by client ``c`` at time ``t``), the policy's
    speculation set is compared against the *distinct* documents ``c``
    actually requests in ``(t, t + horizon]``.

    Args:
        trace: The trace to score on (typically held-out data the
            ``model`` was not trained on).
        model: The dependency model driving the policy.
        policy: The speculation policy to evaluate.
        horizon: Seconds of future considered "requested soon".
        max_requests: Score at most this many requests (None = all).

    Raises:
        SimulationError: If the horizon is not positive.
    """
    if horizon <= 0:
        raise SimulationError("horizon must be positive")
    catalog = trace.documents

    predictions = 0
    used = 0
    opportunities = 0
    covered = 0
    scored = 0

    for client, requests in trace.by_client().items():
        for index, request in enumerate(requests):
            if max_requests is not None and scored >= max_requests:
                break
            scored += 1

            actual: set[str] = set()
            for follower in requests[index + 1 :]:
                if follower.timestamp - request.timestamp > horizon:
                    break
                if follower.doc_id != request.doc_id:
                    actual.add(follower.doc_id)

            speculated = {
                candidate.doc_id
                for candidate in policy.select(request.doc_id, model, catalog)
            }
            predictions += len(speculated)
            used += len(speculated & actual)
            opportunities += len(actual)
            covered += len(actual & speculated)
        if max_requests is not None and scored >= max_requests:
            break

    return PredictionQuality(
        predictions=predictions,
        used_predictions=used,
        opportunities=opportunities,
        covered_opportunities=covered,
        scored_requests=scored,
    )
