"""Queueing view of server load: why load reduction buys latency.

The paper's cost model prices a request at a flat ``ServCost``.  In a
real server, response time *grows with utilization*: the requests that
speculation removes are worth more than their flat cost when the server
runs hot.  This module provides the standard M/M/1 lens:

    utilization  ρ = λ / μ
    response time W = 1 / (μ − λ)        (ρ < 1)

With it, a speculation run's server-request reduction translates into a
response-time improvement *curve* over offered load — steepest exactly
where servers hurt.  This is an extension beyond the paper's flat-cost
model and is flagged as such in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError
from .metrics import SpeculationRatios


@dataclass(frozen=True)
class MM1Server:
    """An M/M/1 server with a fixed service capacity.

    Attributes:
        capacity: Requests per second the server can sustain (μ).
    """

    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SimulationError("capacity must be positive")

    def utilization(self, arrival_rate: float) -> float:
        """ρ = λ/μ for an offered request rate."""
        if arrival_rate < 0:
            raise SimulationError("arrival rate must be non-negative")
        return arrival_rate / self.capacity

    def response_time(self, arrival_rate: float) -> float:
        """Mean response time ``W = 1/(μ − λ)``.

        Returns:
            Seconds; ``inf`` when the server is saturated (ρ ≥ 1).
        """
        if arrival_rate < 0:
            raise SimulationError("arrival rate must be non-negative")
        if arrival_rate >= self.capacity:
            return math.inf
        return 1.0 / (self.capacity - arrival_rate)

    def saturation_rate(self) -> float:
        """The arrival rate at which the server saturates (= μ)."""
        return self.capacity


@dataclass(frozen=True)
class LatencyImpact:
    """Response-time impact of a speculation run at one offered load.

    Attributes:
        arrival_rate: Offered demand-request rate without speculation.
        baseline_response: Mean response time without speculation.
        speculative_response: Mean response time with the run's
            server-load ratio applied to the arrival rate.
    """

    arrival_rate: float
    baseline_response: float
    speculative_response: float

    @property
    def speedup(self) -> float:
        """Baseline over speculative response time (≥ 1 when it helps).

        ``inf`` when speculation rescues a saturated server; 1.0 when
        both are saturated or both idle-equal.
        """
        if math.isinf(self.baseline_response):
            return math.inf if not math.isinf(self.speculative_response) else 1.0
        if self.speculative_response == 0:
            return math.inf
        return self.baseline_response / self.speculative_response


def latency_impact(
    server: MM1Server,
    ratios: SpeculationRatios,
    arrival_rate: float,
) -> LatencyImpact:
    """Translate a server-load ratio into response times at one load.

    Args:
        server: The queueing model of the origin server.
        ratios: A speculation run's four ratios; only
            ``server_load_ratio`` is used.
        arrival_rate: Demand requests/second without speculation.
    """
    reduced_rate = arrival_rate * ratios.server_load_ratio
    return LatencyImpact(
        arrival_rate=arrival_rate,
        baseline_response=server.response_time(arrival_rate),
        speculative_response=server.response_time(reduced_rate),
    )


def capacity_headroom(
    server: MM1Server, ratios: SpeculationRatios, arrival_rate: float
) -> float:
    """How much more offered load the server can take with speculation.

    Returns the multiplicative headroom: the factor by which the
    offered rate could grow before the *speculative* load saturates the
    server.  With a load ratio ``r`` this is ``μ / (λ·r)``.

    Raises:
        SimulationError: If the arrival rate is not positive.
    """
    if arrival_rate <= 0:
        raise SimulationError("arrival rate must be positive")
    effective = arrival_rate * ratios.server_load_ratio
    if effective <= 0:
        return math.inf
    return server.capacity / effective
