"""Self-tuning speculation under a bandwidth budget.

The paper reads its results through budgets — "if only 3% extra
bandwidth is tolerable, then MaxSize = 15KB …" — but its policy keeps
`T_p` fixed, leaving the operator to find the threshold matching a
budget by sweeping.  :class:`AdaptiveBudgetPolicy` closes the loop: it
tracks the ratio of speculative to demand bytes it generates and steers
its threshold multiplicatively toward a target traffic increase, so the
operator states the budget directly.

The control signal matters: a pushed document that the client goes on
to use is bandwidth-*neutral* (it replaces the demand fetch it
predicted), so raw pushed bytes wildly overstate the net traffic cost.
The server-side estimate of net cost is the **expected wasted bytes**
``(1 − p*) × size`` per push — a push with probability ``p*`` is used
with frequency ``p*`` — and that is what the controller steers on, so
the target maps directly onto the paper's Figure-6 x-axis.

The controller is deliberately simple (multiplicative
increase/decrease with clamping): thresholds move a fixed relative step
each decision, so convergence is robust to workload shifts at the cost
of a small steady-state oscillation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PolicyError
from ..trace.records import Document
from .dependency import DependencyModel
from .policies import Candidate, ThresholdPolicy


@dataclass
class AdaptiveBudgetPolicy:
    """Threshold policy that steers itself toward a traffic budget.

    Attributes:
        target_traffic_increase: Desired speculative-to-demand byte
            ratio (e.g. ``0.05`` = spend 5% extra bandwidth).
        initial_threshold: Starting ``T_p``.
        adjust_rate: Relative threshold step per decision (e.g. 0.02 =
            2% up or down).
        min_threshold: Floor below which the threshold never falls.
        max_size: MaxSize cap applied to candidates.
        use_closure: Rank by ``P*`` (default) or direct ``P``.
        warmup_bytes: Demand bytes to observe before steering begins
            (avoids wild swings from the first few requests).
        window_bytes: Size of the sliding byte window the observed
            ratio is measured over; early history is rescaled away so
            the controller tracks the *current* rate rather than
            carrying start-up transients forever.
    """

    target_traffic_increase: float
    initial_threshold: float = 0.5
    adjust_rate: float = 0.02
    min_threshold: float = 0.02
    max_size: float = math.inf
    use_closure: bool = True
    warmup_bytes: float = 100_000.0
    window_bytes: float = 2_000_000.0

    def __post_init__(self) -> None:
        if self.target_traffic_increase < 0:
            raise PolicyError("target_traffic_increase must be >= 0")
        if not 0.0 < self.initial_threshold <= 1.0:
            raise PolicyError("initial_threshold must be in (0, 1]")
        if not 0.0 < self.adjust_rate < 1.0:
            raise PolicyError("adjust_rate must be in (0, 1)")
        if not 0.0 < self.min_threshold <= 1.0:
            raise PolicyError("min_threshold must be in (0, 1]")
        if self.max_size <= 0:
            raise PolicyError("max_size must be positive")
        if self.warmup_bytes < 0:
            raise PolicyError("warmup_bytes must be non-negative")
        if self.window_bytes <= 0:
            raise PolicyError("window_bytes must be positive")
        self._threshold = self.initial_threshold
        # Fractional by design: both totals decay by a float scale when
        # the observation window is renormalised (see observe()).
        self._demand_bytes = 0.0  # repro-lint: disable=N003
        self._speculative_bytes = 0.0  # repro-lint: disable=N003

    @property
    def threshold(self) -> float:
        """The threshold currently in force."""
        return self._threshold

    @property
    def observed_traffic_increase(self) -> float:
        """Expected-wasted-to-demand byte ratio over the window.

        This is the server's estimate of the *net* traffic increase:
        pushes weighted by their probability of going unused.
        """
        if self._demand_bytes <= 0:
            return 0.0
        return self._speculative_bytes / self._demand_bytes

    def _steer(self) -> None:
        if self._demand_bytes < self.warmup_bytes:
            return
        observed = self.observed_traffic_increase
        if observed > self.target_traffic_increase:
            self._threshold = min(1.0, self._threshold * (1 + self.adjust_rate))
        else:
            self._threshold = max(
                self.min_threshold, self._threshold / (1 + self.adjust_rate)
            )

    def select(
        self,
        requested: str,
        model: DependencyModel,
        catalog: dict[str, Document],
    ) -> list[Candidate]:
        """Speculate under the current threshold, then steer it."""
        document = catalog.get(requested)
        if document is not None:
            self._demand_bytes += document.size
        # Slide the window: rescale history so the ratio reflects the
        # most recent ``window_bytes`` of demand.
        if self._demand_bytes > self.window_bytes:
            scale = self.window_bytes / self._demand_bytes
            self._demand_bytes *= scale
            self._speculative_bytes *= scale

        inner = ThresholdPolicy(
            threshold=self._threshold,
            max_size=self.max_size,
            use_closure=self.use_closure,
        )
        chosen = inner.select(requested, model, catalog)
        for candidate in chosen:
            target = catalog.get(candidate.doc_id)
            if target is not None:
                # Expected wasted bytes: a push used with frequency p
                # only costs net bandwidth when it goes unused.
                self._speculative_bytes += (
                    1.0 - candidate.probability
                ) * target.size
        self._steer()
        return chosen
