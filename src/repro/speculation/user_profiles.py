"""Per-user access profiles and client-initiated prefetching.

Section 3.4 closes with the paper's ongoing work (its reference [5]):
instead of the *server's* aggregate P/P* relations, each client can
maintain the same relationship over its **own** history — a user
profile — and prefetch from it.  The paper's preliminary finding, which
this module lets you reproduce:

    client-initiated prefetching is extremely effective for access
    patterns that involve *frequently-traversed* documents, but not
    effective at all for *newly-traversed* documents; only (server)
    speculative service helps there.

:class:`UserProfilePrefetcher` plugs into
:meth:`repro.speculation.simulator.SpeculativeServiceSimulator.run` as a
``prefetcher``: it learns each client's pairwise transitions online via
the simulator's ``observe`` hook and prefetches follow-ups the *user
themself* has exhibited often enough.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PolicyError
from ..trace.records import Document
from .dependency import DependencyModel


class UserProfile:
    """One client's pairwise transition history.

    Counts ``(previous, next)`` document transitions where the next
    access follows within ``window`` seconds — the per-user analog of
    the server's P matrix.
    """

    def __init__(self, window: float = 5.0):
        if window <= 0:
            raise PolicyError("window must be positive")
        self._window = window
        self._pairs: dict[str, dict[str, float]] = {}
        self._occurrences: dict[str, float] = {}
        self._last_doc: str | None = None
        self._last_time: float | None = None

    def observe(self, doc_id: str, timestamp: float) -> None:
        """Record one access by this user."""
        if (
            self._last_doc is not None
            and self._last_time is not None
            and self._last_doc != doc_id
            and 0.0 <= timestamp - self._last_time <= self._window
        ):
            row = self._pairs.setdefault(self._last_doc, {})
            row[doc_id] = row.get(doc_id, 0.0) + 1.0
        self._occurrences[doc_id] = self._occurrences.get(doc_id, 0.0) + 1.0
        self._last_doc = doc_id
        self._last_time = timestamp

    def transition_probability(self, source: str, target: str) -> float:
        """The user's own ``p[source, target]``."""
        base = self._occurrences.get(source, 0.0)
        if base <= 0:
            return 0.0
        return self._pairs.get(source, {}).get(target, 0.0) / base

    def followups(self, source: str) -> dict[str, float]:
        """All non-zero own-history follow-ups of a document."""
        base = self._occurrences.get(source, 0.0)
        if base <= 0:
            return {}
        return {
            target: count / base
            for target, count in self._pairs.get(source, {}).items()
        }

    def support(self, source: str) -> float:
        """How many times the user has requested ``source``."""
        return self._occurrences.get(source, 0.0)

    def as_model(self) -> DependencyModel:
        """Freeze the profile into a standard dependency model."""
        return DependencyModel.from_counts(
            {s: dict(r) for s, r in self._pairs.items()},
            dict(self._occurrences),
        )


@dataclass
class UserProfilePrefetcher:
    """Client-initiated prefetching from each user's own history.

    Attributes:
        threshold: Prefetch a follow-up when the user's own transition
            probability reaches this value.
        min_support: Require at least this many prior visits to the
            source document before trusting the estimate — a user
            profile over one visit predicts nothing (this is what makes
            the prefetcher powerless on newly-traversed patterns).
        window: Transition window for profile learning (seconds).
        max_prefetches: Cap per request.
        max_size: Skip documents larger than this.
    """

    threshold: float = 0.4
    min_support: float = 2.0
    window: float = 5.0
    max_prefetches: int = 5
    max_size: float = float("inf")

    #: Simulator contract: ``choose`` takes a ``client`` keyword.
    wants_client: bool = field(default=True, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise PolicyError("threshold must be in (0, 1]")
        if self.min_support < 1:
            raise PolicyError("min_support must be >= 1")
        if self.max_prefetches < 1:
            raise PolicyError("max_prefetches must be >= 1")
        if self.max_size <= 0:
            raise PolicyError("max_size must be positive")
        self._profiles: dict[str, UserProfile] = {}

    def profile(self, client: str) -> UserProfile:
        """This client's (possibly fresh) profile."""
        found = self._profiles.get(client)
        if found is None:
            found = UserProfile(window=self.window)
            self._profiles[client] = found
        return found

    # -- simulator hooks -----------------------------------------------------------

    def observe(self, client: str, doc_id: str, timestamp: float) -> None:
        """Simulator hook: learn from every access, online."""
        self.profile(client).observe(doc_id, timestamp)

    def choose(
        self,
        requested: str,
        model: DependencyModel,
        catalog: dict[str, Document],
        *,
        client: str | None = None,
    ) -> list[str]:
        """Prefetch decisions from the user's own history only.

        The server's aggregate ``model`` is deliberately ignored — this
        is the pure client-side protocol the paper contrasts against
        speculative service.
        """
        if client is None:
            return []
        profile = self._profiles.get(client)
        if profile is None or profile.support(requested) < self.min_support:
            return []
        ranked = sorted(
            profile.followups(requested).items(),
            key=lambda item: (-item[1], item[0]),
        )
        chosen = []
        for target, probability in ranked:
            if probability < self.threshold:
                break
            document = catalog.get(target)
            if document is None or document.size > self.max_size:
                continue
            chosen.append(target)
            if len(chosen) >= self.max_prefetches:
                break
        return chosen
