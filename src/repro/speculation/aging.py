"""Keeping the dependency model fresh.

Section 3.4 studies two mechanisms:

* **Sliding-window re-estimation** — every ``UpdateCycle`` days, rebuild
  ``P``/``P*`` from the previous ``HistoryLength`` days of trace
  (the paper's D / D′ experiments).  :class:`RollingEstimator`.
* **Aging** — the paper "envisions the use of an aging mechanism to
  phase out dependencies exhibited in older traces".
  :class:`AgingDependencyCounter` implements it: counts decay by a
  per-day factor before each new batch is folded in, so old behaviour
  fades smoothly instead of falling off a cliff at the window edge.
"""

from __future__ import annotations

from ..config import SECONDS_PER_DAY
from ..errors import DependencyModelError
from ..trace.records import Trace
from .dependency import DependencyModel


class AgingDependencyCounter:
    """Exponentially aged dependency counts.

    Args:
        decay_per_day: Multiplier applied to all counts per elapsed day
            (1.0 disables aging; 0.9 halves influence in ~6.6 days).
        window: ``T_w`` for pair counting.
        stride_timeout: Stride gap; defaults to ``window``.
    """

    def __init__(
        self,
        *,
        decay_per_day: float = 0.95,
        window: float = 5.0,
        stride_timeout: float | None = None,
    ):
        if not 0.0 < decay_per_day <= 1.0:
            raise DependencyModelError("decay_per_day must be in (0, 1]")
        self._decay = decay_per_day
        self._window = window
        self._stride_timeout = stride_timeout
        self._pairs: dict[str, dict[str, float]] = {}
        self._occurrences: dict[str, float] = {}
        self._last_time: float | None = None

    @property
    def decay_per_day(self) -> float:
        """The configured per-day decay factor."""
        return self._decay

    def observe(self, batch: Trace) -> None:
        """Fold a new batch of trace into the aged counts.

        Counts accumulated earlier decay by ``decay_per_day`` raised to
        the days elapsed between batch start times.
        """
        if len(batch) == 0:
            return
        if self._last_time is not None:
            elapsed_days = max(0.0, batch.start_time - self._last_time) / SECONDS_PER_DAY
            factor = self._decay**elapsed_days
            if factor < 1.0:
                for row in self._pairs.values():
                    for target in row:
                        row[target] *= factor
                for doc in self._occurrences:
                    self._occurrences[doc] *= factor
        self._last_time = batch.start_time

        fresh = DependencyModel.estimate(
            batch, window=self._window, stride_timeout=self._stride_timeout
        )
        for source, row in fresh.pair_counts.items():
            mine = self._pairs.setdefault(source, {})
            for target, count in row.items():
                mine[target] = mine.get(target, 0.0) + count
        for doc, count in fresh.occurrence_counts.items():
            self._occurrences[doc] = self._occurrences.get(doc, 0.0) + count

    def snapshot(self) -> DependencyModel:
        """Freeze the current aged counts into a model."""
        return DependencyModel.from_counts(
            {s: dict(r) for s, r in self._pairs.items()}, dict(self._occurrences)
        )


class RollingEstimator:
    """Sliding-window re-estimation on the paper's schedule.

    Every ``update_cycle_days`` the model is rebuilt from the previous
    ``history_length_days`` of trace.  :meth:`model_at` returns the
    model in force at a given time — i.e. the one built at the last
    update boundary, trained only on data strictly before that boundary
    (no peeking at the future).

    Args:
        trace: The full trace (training source).
        history_length_days: D′ — how much history each estimate sees.
        update_cycle_days: D — how often the estimate refreshes.
        window: ``T_w`` for pair counting.
        stride_timeout: Stride gap; defaults to ``window``.
    """

    def __init__(
        self,
        trace: Trace,
        *,
        history_length_days: float = 60.0,
        update_cycle_days: float = 1.0,
        window: float = 5.0,
        stride_timeout: float | None = None,
    ):
        if history_length_days <= 0 or update_cycle_days <= 0:
            raise DependencyModelError("history and cycle must be positive")
        self._trace = trace
        self._history = history_length_days * SECONDS_PER_DAY
        self._cycle = update_cycle_days * SECONDS_PER_DAY
        self._window = window
        self._stride_timeout = stride_timeout
        self._origin = trace.start_time
        self._cache: dict[int, DependencyModel] = {}

    def _boundary_index(self, now: float) -> int:
        if now <= self._origin:
            return 0
        return int((now - self._origin) // self._cycle)

    def model_at(self, now: float) -> DependencyModel:
        """The dependency model in force at time ``now``."""
        index = self._boundary_index(now)
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        boundary = self._origin + index * self._cycle
        training = self._trace.window(boundary - self._history, boundary)
        model = DependencyModel.estimate(
            training, window=self._window, stride_timeout=self._stride_timeout
        )
        self._cache[index] = model
        return model

    def n_updates(self, until: float) -> int:
        """How many re-estimations happen up to a time."""
        return self._boundary_index(until) + 1
