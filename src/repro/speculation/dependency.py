"""Document access interdependencies: the ``P`` matrix and closure ``P*``.

Section 3.1 defines ``p[i, j]`` as the conditional probability that
document ``D_j`` is requested within a window ``T_w`` of a request for
``D_i``.  Estimation follows the paper's stride rule: two requests from
the same client within ``StrideTimeout`` seconds are *dependent*, so
counting is confined to traversal strides.

The closure is written ``P* = P^N`` in the paper — the probability of a
*sequence* of requests leading from ``D_i`` to ``D_j`` with every gap at
most ``T_w``.  ``P`` is not a stochastic matrix (rows need not sum
to 1), so a literal matrix power has no probabilistic reading and is
O(N⁴) besides.  This implementation realizes the stated semantics as the
**best-path product**: ``p*[i, j]`` is the maximum over request chains
``i → … → j`` of the product of the per-hop conditional probabilities,
computed per source with a pruned Dijkstra search in −log space (and
``p*[i, j] >= p[i, j]`` always, with equality on direct links).  The
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter, deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..errors import DependencyModelError
from ..trace.records import Trace
from ..trace.sessions import split_strides


@dataclass(slots=True)
class _OpenOccurrence:
    """One not-yet-expired source occurrence inside an open stride."""

    timestamp: float
    doc_id: str
    #: Distinct followers already counted for this occurrence.
    seen: set[str] = field(default_factory=set)


@dataclass(slots=True)
class _OpenStride:
    """Per-client state of the traversal stride currently being built."""

    last_time: float | None = None
    #: Occurrences still young enough (within ``T_w``) to gain followers,
    #: in timestamp order.
    entries: deque[_OpenOccurrence] = field(default_factory=deque)


@dataclass(frozen=True)
class PairHistogram:
    """Histogram of ``(D_i, D_j)`` pair counts by probability range.

    This is the paper's Figure 4: the number of document pairs whose
    ``p[i, j]`` falls in each bin.  With link anchors followed uniformly
    the mass piles up near ``1/k`` for small integers ``k``, and the
    rightmost bin collects the embedding dependencies (``p ≈ 1``).
    """

    bin_edges: tuple[float, ...]
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.counts) != len(self.bin_edges) - 1:
            raise DependencyModelError("counts must have one entry per bin")

    @property
    def total_pairs(self) -> int:
        return sum(self.counts)

    def fraction_in_bin(self, index: int) -> float:
        """Share of all pairs falling in one probability bin."""
        return self.counts[index] / self.total_pairs if self.total_pairs else 0.0


class DependencyModel:
    """The estimated ``P`` matrix with on-demand ``P*`` closure rows.

    Build with :meth:`estimate` (from a trace), :meth:`from_counts`
    (from raw pair/occurrence counts, as the aging machinery does), or
    :meth:`incremental` (empty, fed one live request at a time through
    :meth:`observe` — the runtime's in-band estimation path).
    """

    def __init__(
        self,
        pair_counts: dict[str, dict[str, float]],
        occurrences: dict[str, float],
        *,
        window: float = 5.0,
        stride_timeout: float | None = None,
    ):
        if window <= 0:
            raise DependencyModelError("window must be positive")
        for source, row in pair_counts.items():
            base = occurrences.get(source, 0.0)
            if base <= 0 and row:
                raise DependencyModelError(
                    f"pairs recorded for {source!r} with no occurrences"
                )
            for target, count in row.items():
                if count < 0:
                    raise DependencyModelError("negative pair count")
                if count > base * (1 + 1e-9):
                    raise DependencyModelError(
                        f"pair count for ({source!r}, {target!r}) exceeds "
                        "source occurrences"
                    )
        self._pairs = {s: dict(row) for s, row in pair_counts.items()}
        self._occurrences = dict(occurrences)
        self._closure_cache: dict[tuple[str, float, int], dict[str, float]] = {}
        self._window = window
        self._stride_timeout = window if stride_timeout is None else stride_timeout
        self._strides: dict[str, _OpenStride] = {}

    # -- estimation --------------------------------------------------------------

    @classmethod
    def estimate(
        cls,
        trace: Trace,
        *,
        window: float = 5.0,
        stride_timeout: float | None = None,
    ) -> "DependencyModel":
        """Estimate ``P`` from a trace.

        For every request for ``D_i`` at time ``t``, each *distinct*
        later document requested by the same client in ``(t, t + window]``
        and in the same traversal stride counts one ``(i, j)`` pair
        (repeats of ``D_j`` inside one window count once, mirroring the
        conditional-probability definition).

        Args:
            trace: The (training) trace.
            window: ``T_w`` in seconds (paper: 5 s).
            stride_timeout: ``StrideTimeout``; defaults to ``window``,
                the paper's baseline coupling.
        """
        if window <= 0:
            raise DependencyModelError("window must be positive")
        stride_timeout = window if stride_timeout is None else stride_timeout

        pair_counts: dict[str, dict[str, float]] = {}
        occurrences: Counter[str] = Counter()
        for stride in split_strides(trace, stride_timeout):
            requests = stride.requests
            for index, source in enumerate(requests):
                occurrences[source.doc_id] += 1
                seen: set[str] = set()
                for follower in requests[index + 1 :]:
                    if follower.timestamp - source.timestamp > window:
                        break
                    if follower.doc_id == source.doc_id:
                        continue
                    if follower.doc_id in seen:
                        continue
                    seen.add(follower.doc_id)
                    row = pair_counts.setdefault(source.doc_id, {})
                    row[follower.doc_id] = row.get(follower.doc_id, 0.0) + 1.0
        return cls(
            pair_counts,
            dict(occurrences),
            window=window,
            stride_timeout=stride_timeout,
        )

    @classmethod
    def incremental(
        cls,
        *,
        window: float = 5.0,
        stride_timeout: float | None = None,
    ) -> "DependencyModel":
        """An empty model ready for online :meth:`observe` updates.

        The runtime's origin server estimates ``P`` in-band from the
        live request stream; feeding the same requests (in per-client
        timestamp order) through :meth:`observe` yields counts identical
        to :meth:`estimate` over the equivalent trace.
        """
        return cls({}, {}, window=window, stride_timeout=stride_timeout)

    @classmethod
    def from_counts(
        cls,
        pair_counts: dict[str, dict[str, float]],
        occurrences: dict[str, float],
    ) -> "DependencyModel":
        """Wrap precomputed counts (used by aging / merging)."""
        return cls(pair_counts, occurrences)

    # -- incremental estimation ---------------------------------------------------

    def observe(self, client: str, doc_id: str, timestamp: float) -> None:
        """Fold one live request into the pair/occurrence counts.

        Implements the same stride rule as :meth:`estimate`, one request
        at a time: a gap of at least ``StrideTimeout`` since the
        client's previous request opens a new traversal stride, and the
        new request counts one ``(i, j)`` pair for every open source
        occurrence within ``T_w`` that has not already seen ``D_j``.

        Updating the counts does **not** invalidate memoized closure
        rows — the paper re-derives ``P*`` on its UpdateCycle, not per
        request.  Call :meth:`refresh_closure` on whatever cadence the
        caller's update cycle dictates; direct reads (:meth:`p`,
        :meth:`successors`) always see the live counts.

        Raises:
            DependencyModelError: On an empty client/document id, or a
                client whose timestamps run backwards.
        """
        if not client or not doc_id:
            raise DependencyModelError("client and doc_id must be non-empty")
        state = self._strides.get(client)
        if state is None:
            state = _OpenStride()
            self._strides[client] = state
        if state.last_time is not None:
            gap = timestamp - state.last_time
            if gap < 0:
                raise DependencyModelError(
                    f"client {client!r} requests out of order"
                )
            # Mirror trace.sessions._split_by_gap: an infinite timeout
            # never splits, a non-positive one always does.
            if self._stride_timeout <= 0 or (
                not math.isinf(self._stride_timeout)
                and gap >= self._stride_timeout
            ):
                state.entries.clear()
        state.last_time = timestamp

        self._occurrences[doc_id] = self._occurrences.get(doc_id, 0.0) + 1.0
        entries = state.entries
        while entries and timestamp - entries[0].timestamp > self._window:
            entries.popleft()  # too old to gain any further followers
        for occurrence in entries:
            if occurrence.doc_id == doc_id or doc_id in occurrence.seen:
                continue
            occurrence.seen.add(doc_id)
            row = self._pairs.setdefault(occurrence.doc_id, {})
            row[doc_id] = row.get(doc_id, 0.0) + 1.0
        entries.append(_OpenOccurrence(timestamp=timestamp, doc_id=doc_id))

    def refresh_closure(
        self,
        sources: Iterable[str] | None = None,
        *,
        min_probability: float = 0.01,
        max_hops: int = 8,
    ) -> int:
        """Drop stale memoized ``P*`` rows and optionally precompute.

        Args:
            sources: Documents whose closure rows to precompute after
                the flush (e.g. the currently hot sources); ``None``
                leaves recomputation lazy.
            min_probability: Pruning floor for precomputed rows.
            max_hops: Chain-length cap for precomputed rows.

        Returns:
            Number of closure rows precomputed.
        """
        self._closure_cache.clear()
        count = 0
        for source in sources or ():
            self.closure_row(
                source, min_probability=min_probability, max_hops=max_hops
            )
            count += 1
        return count

    # -- raw access --------------------------------------------------------------

    @property
    def pair_counts(self) -> dict[str, dict[str, float]]:
        """Raw pair counts (copies; safe to mutate)."""
        return {s: dict(row) for s, row in self._pairs.items()}

    @property
    def occurrence_counts(self) -> dict[str, float]:
        return dict(self._occurrences)

    def documents(self) -> set[str]:
        """All documents seen as a source or target."""
        docs = set(self._occurrences)
        for row in self._pairs.values():
            docs.update(row)
        return docs

    # -- probabilities ------------------------------------------------------------

    def p(self, source: str, target: str) -> float:
        """Direct conditional probability ``p[i, j]``."""
        base = self._occurrences.get(source, 0.0)
        if base <= 0:
            return 0.0
        return self._pairs.get(source, {}).get(target, 0.0) / base

    def successors(self, source: str) -> dict[str, float]:
        """The non-zero entries of row ``i`` of ``P``."""
        base = self._occurrences.get(source, 0.0)
        if base <= 0:
            return {}
        return {
            target: count / base
            for target, count in self._pairs.get(source, {}).items()
            if count > 0
        }

    def closure_row(
        self,
        source: str,
        *,
        min_probability: float = 0.01,
        max_hops: int = 8,
    ) -> dict[str, float]:
        """Row ``i`` of ``P*``: best-chain probability to every target.

        Computed by Dijkstra in −log space, pruning chains whose product
        falls below ``min_probability`` or longer than ``max_hops``
        hops.  Results are memoized per (source, pruning) triple.

        Args:
            source: The requested document ``D_i``.
            min_probability: Chains below this probability are pruned.
            max_hops: Maximum chain length.

        Returns:
            Mapping target → ``p*[i, target]`` (source excluded).
        """
        if not 0.0 < min_probability <= 1.0:
            raise DependencyModelError("min_probability must be in (0, 1]")
        if max_hops < 1:
            raise DependencyModelError("max_hops must be >= 1")
        key = (source, min_probability, max_hops)
        cached = self._closure_cache.get(key)
        if cached is not None:
            return dict(cached)

        best: dict[str, float] = {source: 1.0}
        hops: dict[str, int] = {source: 0}
        heap: list[tuple[float, str]] = [(0.0, source)]
        while heap:
            neg_log, node = heapq.heappop(heap)
            # exp(-x) <= 1 for x >= 0, but clamp so the p*[i, j] in
            # [0, 1] invariant holds even under float drift in neg_log.
            probability = min(1.0, math.exp(-neg_log))
            if probability < best.get(node, 0.0) - 1e-15:
                continue  # stale heap entry
            if hops[node] >= max_hops:
                continue
            for target, edge in self.successors(node).items():
                chained = probability * edge
                if chained < min_probability:
                    continue
                if chained > best.get(target, 0.0) + 1e-15:
                    best[target] = chained
                    hops[target] = hops[node] + 1
                    heapq.heappush(heap, (-math.log(chained), target))
        best.pop(source, None)
        self._closure_cache[key] = dict(best)
        return best

    def p_star(
        self,
        source: str,
        target: str,
        *,
        min_probability: float = 0.01,
        max_hops: int = 8,
    ) -> float:
        """``p*[i, j]`` under the same pruning as :meth:`closure_row`."""
        return self.closure_row(
            source, min_probability=min_probability, max_hops=max_hops
        ).get(target, 0.0)

    # -- analyses -----------------------------------------------------------------

    def pair_histogram(self, n_bins: int = 20) -> PairHistogram:
        """Figure 4: histogram of pair counts over ``p[i, j]`` ranges."""
        if n_bins < 1:
            raise DependencyModelError("need at least one bin")
        edges = [k / n_bins for k in range(n_bins + 1)]
        counts = [0] * n_bins
        for source, row in self._pairs.items():
            base = self._occurrences.get(source, 0.0)
            if base <= 0:
                continue
            for count in row.values():
                # A pair cannot co-occur more often than its source
                # occurs, but clamp so the histogram stays in-range
                # even if counters are perturbed by aging.
                probability = min(1.0, count / base)
                if probability <= 0:
                    continue
                index = min(int(probability * n_bins), n_bins - 1)
                counts[index] += 1
        return PairHistogram(bin_edges=tuple(edges), counts=tuple(counts))
