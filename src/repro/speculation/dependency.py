"""Document access interdependencies: the ``P`` matrix and closure ``P*``.

Section 3.1 defines ``p[i, j]`` as the conditional probability that
document ``D_j`` is requested within a window ``T_w`` of a request for
``D_i``.  Estimation follows the paper's stride rule: two requests from
the same client within ``StrideTimeout`` seconds are *dependent*, so
counting is confined to traversal strides.

The closure is written ``P* = P^N`` in the paper — the probability of a
*sequence* of requests leading from ``D_i`` to ``D_j`` with every gap at
most ``T_w``.  ``P`` is not a stochastic matrix (rows need not sum
to 1), so a literal matrix power has no probabilistic reading and is
O(N⁴) besides.  This implementation realizes the stated semantics as the
**best-path product**: ``p*[i, j]`` is the maximum over request chains
``i → … → j`` of the product of the per-hop conditional probabilities,
computed by hop-bounded relaxation in the max-product semiring — the
truncated-Neumann form of ``P^N``, run for ``max_hops`` levels with
chains pruned below ``min_probability`` (and ``p*[i, j] >= p[i, j]``
always, with equality on direct links).  The substitution is recorded
in DESIGN.md.

Two interchangeable backends share these semantics, selected with
``backend=``: ``"dict"`` (pure Python, the default) and ``"sparse"``
(CSR numpy arrays, batched relaxation; see
:mod:`repro.speculation.sparse`).  The backends are bit-identical —
every probability is the same ``count / base`` division and the
relaxations chain the same IEEE-754 multiplications — so switching is
purely a performance decision.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..errors import DependencyModelError
from ..trace.records import Trace
from ..trace.sessions import split_strides
from .sparse import SparseDependencyEngine, estimate_pair_counts

#: Valid values for the ``backend=`` switch.
BACKENDS = ("dict", "sparse")


@dataclass(slots=True)
class _OpenOccurrence:
    """One not-yet-expired source occurrence inside an open stride."""

    timestamp: float
    doc_id: str
    #: Distinct followers already counted for this occurrence.
    seen: set[str] = field(default_factory=set)


@dataclass(slots=True)
class _OpenStride:
    """Per-client state of the traversal stride currently being built."""

    last_time: float | None = None
    #: Occurrences still young enough (within ``T_w``) to gain followers,
    #: in timestamp order.
    entries: deque[_OpenOccurrence] = field(default_factory=deque)


@dataclass(frozen=True)
class PairHistogram:
    """Histogram of ``(D_i, D_j)`` pair counts by probability range.

    This is the paper's Figure 4: the number of document pairs whose
    ``p[i, j]`` falls in each bin.  With link anchors followed uniformly
    the mass piles up near ``1/k`` for small integers ``k``, and the
    rightmost bin collects the embedding dependencies (``p ≈ 1``).
    """

    bin_edges: tuple[float, ...]
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.counts) != len(self.bin_edges) - 1:
            raise DependencyModelError("counts must have one entry per bin")

    @property
    def total_pairs(self) -> int:
        return sum(self.counts)

    def fraction_in_bin(self, index: int) -> float:
        """Share of all pairs falling in one probability bin.

        Raises:
            IndexError: If ``index`` is not a valid bin index (negative
                indices do not wrap).
        """
        if not 0 <= index < len(self.counts):
            raise IndexError(
                f"bin index {index} out of range; "
                f"valid bins are 0..{len(self.counts) - 1}"
            )
        return self.counts[index] / self.total_pairs if self.total_pairs else 0.0


class DependencyModel:
    """The estimated ``P`` matrix with on-demand ``P*`` closure rows.

    Build with :meth:`estimate` (from a trace), :meth:`from_counts`
    (from raw pair/occurrence counts, as the aging machinery does), or
    :meth:`incremental` (empty, fed one live request at a time through
    :meth:`observe` — the runtime's in-band estimation path).
    """

    def __init__(
        self,
        pair_counts: dict[str, dict[str, float]],
        occurrences: dict[str, float],
        *,
        window: float = 5.0,
        stride_timeout: float | None = None,
        backend: str = "dict",
        validate: bool = True,
    ):
        if window <= 0:
            raise DependencyModelError("window must be positive")
        if backend not in BACKENDS:
            raise DependencyModelError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        if validate:
            for source, row in pair_counts.items():
                base = occurrences.get(source, 0.0)
                if base <= 0 and row:
                    raise DependencyModelError(
                        f"pairs recorded for {source!r} with no occurrences"
                    )
                for target, count in row.items():
                    if count < 0:
                        raise DependencyModelError("negative pair count")
                    if count > base * (1 + 1e-9):
                        raise DependencyModelError(
                            f"pair count for ({source!r}, {target!r}) "
                            "exceeds source occurrences"
                        )
        self._pairs = {s: dict(row) for s, row in pair_counts.items()}
        self._occurrences = dict(occurrences)
        self._closure_cache: dict[tuple[str, float, int], dict[str, float]] = {}
        self._window = window
        self._stride_timeout = window if stride_timeout is None else stride_timeout
        self._strides: dict[str, _OpenStride] = {}
        self._backend = backend
        #: Documents whose row of ``P`` (outgoing probabilities) changed
        #: since the last closure refresh; drives the fine-grained cache
        #: invalidation in :meth:`refresh_closure`.
        self._dirty: set[str] = set()
        self._engine: SparseDependencyEngine | None = None
        #: Monotone mutation counter; bumped by :meth:`observe` so
        #: derived caches (e.g. the columnar replay's memoized push
        #: tables) can key on ``(model, version)`` and never serve
        #: selections computed from stale counts.
        self._version = 0

    # -- estimation --------------------------------------------------------------

    @classmethod
    def estimate(
        cls,
        trace: Trace,
        *,
        window: float = 5.0,
        stride_timeout: float | None = None,
        backend: str = "dict",
    ) -> "DependencyModel":
        """Estimate ``P`` from a trace.

        For every request for ``D_i`` at time ``t``, each *distinct*
        later document requested by the same client in ``(t, t + window]``
        and in the same traversal stride counts one ``(i, j)`` pair
        (repeats of ``D_j`` inside one window count once, mirroring the
        conditional-probability definition).

        Args:
            trace: The (training) trace.
            window: ``T_w`` in seconds (paper: 5 s).
            stride_timeout: ``StrideTimeout``; defaults to ``window``,
                the paper's baseline coupling.
            backend: ``"dict"`` counts with the reference Python loop;
                ``"sparse"`` counts vectorized (identical results) and
                keeps the sparse closure engine for later queries.
        """
        if window <= 0:
            raise DependencyModelError("window must be positive")
        stride_timeout = window if stride_timeout is None else stride_timeout
        if backend == "sparse":
            counted_pairs, counted_occurrences = estimate_pair_counts(
                trace, window=window, stride_timeout=stride_timeout
            )
            return cls(
                counted_pairs,
                counted_occurrences,
                window=window,
                stride_timeout=stride_timeout,
                backend=backend,
                # Counts are correct by construction (and parity-tested
                # against the reference loop), so skip re-validation.
                validate=False,
            )

        pair_counts: dict[str, dict[str, float]] = {}
        occurrences: Counter[str] = Counter()
        for stride in split_strides(trace, stride_timeout):
            requests = stride.requests
            for index, source in enumerate(requests):
                occurrences[source.doc_id] += 1
                seen: set[str] = set()
                for follower in requests[index + 1 :]:
                    if follower.timestamp - source.timestamp > window:
                        break
                    if follower.doc_id == source.doc_id:
                        continue
                    if follower.doc_id in seen:
                        continue
                    seen.add(follower.doc_id)
                    row = pair_counts.setdefault(source.doc_id, {})
                    row[follower.doc_id] = row.get(follower.doc_id, 0.0) + 1.0
        return cls(
            pair_counts,
            dict(occurrences),
            window=window,
            stride_timeout=stride_timeout,
            backend=backend,
        )

    @classmethod
    def incremental(
        cls,
        *,
        window: float = 5.0,
        stride_timeout: float | None = None,
        backend: str = "dict",
    ) -> "DependencyModel":
        """An empty model ready for online :meth:`observe` updates.

        The runtime's origin server estimates ``P`` in-band from the
        live request stream; feeding the same requests (in per-client
        timestamp order) through :meth:`observe` yields counts identical
        to :meth:`estimate` over the equivalent trace.
        """
        return cls(
            {}, {}, window=window, stride_timeout=stride_timeout, backend=backend
        )

    @classmethod
    def from_counts(
        cls,
        pair_counts: dict[str, dict[str, float]],
        occurrences: dict[str, float],
        *,
        backend: str = "dict",
    ) -> "DependencyModel":
        """Wrap precomputed counts (used by aging / merging)."""
        return cls(pair_counts, occurrences, backend=backend)

    # -- incremental estimation ---------------------------------------------------

    def observe(self, client: str, doc_id: str, timestamp: float) -> None:
        """Fold one live request into the pair/occurrence counts.

        Implements the same stride rule as :meth:`estimate`, one request
        at a time: a gap of at least ``StrideTimeout`` since the
        client's previous request opens a new traversal stride, and the
        new request counts one ``(i, j)`` pair for every open source
        occurrence within ``T_w`` that has not already seen ``D_j``.

        Updating the counts does **not** invalidate memoized closure
        rows — the paper re-derives ``P*`` on its UpdateCycle, not per
        request.  Call :meth:`refresh_closure` on whatever cadence the
        caller's update cycle dictates; direct reads (:meth:`p`,
        :meth:`successors`) always see the live counts.

        Raises:
            DependencyModelError: On an empty client/document id, or a
                client whose timestamps run backwards.
        """
        if not client or not doc_id:
            raise DependencyModelError("client and doc_id must be non-empty")
        state = self._strides.get(client)
        if state is None:
            state = _OpenStride()
            self._strides[client] = state
        if state.last_time is not None:
            gap = timestamp - state.last_time
            if gap < 0:
                raise DependencyModelError(
                    f"client {client!r} requests out of order"
                )
            # Mirror trace.sessions._split_by_gap: an infinite timeout
            # never splits, a non-positive one always does.
            if self._stride_timeout <= 0 or (
                not math.isinf(self._stride_timeout)
                and gap >= self._stride_timeout
            ):
                state.entries.clear()
        state.last_time = timestamp

        self._occurrences[doc_id] = self._occurrences.get(doc_id, 0.0) + 1.0
        # The occurrence base dilutes every outgoing probability of
        # doc_id, so its row of P is dirty even if no pair changes.
        self._dirty.add(doc_id)
        entries = state.entries
        while entries and timestamp - entries[0].timestamp > self._window:
            entries.popleft()  # too old to gain any further followers
        for occurrence in entries:
            if occurrence.doc_id == doc_id or doc_id in occurrence.seen:
                continue
            occurrence.seen.add(doc_id)
            row = self._pairs.setdefault(occurrence.doc_id, {})
            row[doc_id] = row.get(doc_id, 0.0) + 1.0
            self._dirty.add(occurrence.doc_id)
        entries.append(_OpenOccurrence(timestamp=timestamp, doc_id=doc_id))
        self._engine = None  # counts changed; rebuild lazily on next miss
        self._version += 1

    def refresh_closure(
        self,
        sources: Iterable[str] | None = None,
        *,
        min_probability: float = 0.01,
        max_hops: int = 8,
    ) -> int:
        """Drop stale memoized ``P*`` rows and optionally precompute.

        Invalidation is fine-grained: only rows that the observations
        since the last refresh can actually have changed are dropped.
        A cached row for source ``i`` is stale iff some dirty document
        is ``i`` itself or appears in the row: edges never exceed 1, so
        every intermediate node of a surviving chain carries a prefix
        product at or above the row's pruning floor and is therefore
        *in* the row — any new or re-weighted chain must pass through
        ``i`` or a node the old row already contains.

        Args:
            sources: Documents whose closure rows to precompute after
                the flush (e.g. the currently hot sources); ``None``
                leaves recomputation lazy.
            min_probability: Pruning floor for precomputed rows.
            max_hops: Chain-length cap for precomputed rows.

        Returns:
            Number of closure rows precomputed.
        """
        if self._dirty:
            dirty = self._dirty
            stale = [
                key
                for key, row in self._closure_cache.items()
                if key[0] in dirty or not dirty.isdisjoint(row)
            ]
            for key in stale:
                del self._closure_cache[key]
            self._dirty = set()
        wanted = list(sources or ())
        if wanted:
            self.closure_rows(
                wanted, min_probability=min_probability, max_hops=max_hops
            )
        return len(wanted)

    # -- raw access --------------------------------------------------------------

    @property
    def backend(self) -> str:
        """The closure/estimation backend: ``"dict"`` or ``"sparse"``."""
        return self._backend

    @property
    def version(self) -> int:
        """Mutation counter: increments whenever :meth:`observe` changes
        the counts.  Derived caches key on it to stay coherent."""
        return self._version

    @property
    def pair_counts(self) -> dict[str, dict[str, float]]:
        """Raw pair counts (copies; safe to mutate)."""
        return {s: dict(row) for s, row in self._pairs.items()}

    @property
    def occurrence_counts(self) -> dict[str, float]:
        return dict(self._occurrences)

    def documents(self) -> set[str]:
        """All documents seen as a source or target."""
        docs = set(self._occurrences)
        for row in self._pairs.values():
            docs.update(row)
        return docs

    # -- probabilities ------------------------------------------------------------

    def p(self, source: str, target: str) -> float:
        """Direct conditional probability ``p[i, j]``."""
        base = self._occurrences.get(source, 0.0)
        if base <= 0:
            return 0.0
        return self._pairs.get(source, {}).get(target, 0.0) / base

    def successors(self, source: str) -> dict[str, float]:
        """The non-zero entries of row ``i`` of ``P``."""
        base = self._occurrences.get(source, 0.0)
        if base <= 0:
            return {}
        return {
            target: count / base
            for target, count in self._pairs.get(source, {}).items()
            if count > 0
        }

    def _relaxed_row(
        self, source: str, min_probability: float, max_hops: int
    ) -> dict[str, float]:
        """One ``P*`` row by pure-Python max-product relaxation.

        The reference arithmetic both backends must match: per level,
        extend every improved chain by one hop, prune products below
        ``min_probability`` *before* clamping to 1.0, and keep a value
        only on strict improvement.
        """
        best: dict[str, float] = {source: 1.0}
        frontier: dict[str, float] = {source: 1.0}
        for __ in range(max_hops):
            next_frontier: dict[str, float] = {}
            for node, through in frontier.items():
                for target, edge in self.successors(node).items():
                    chained = through * edge
                    if chained < min_probability:
                        continue
                    if chained > 1.0:
                        chained = 1.0
                    if chained > best.get(target, 0.0):
                        best[target] = chained
                        next_frontier[target] = chained
            if not next_frontier:
                break
            frontier = next_frontier
        best.pop(source, None)
        return best

    def _sparse_engine(self) -> SparseDependencyEngine:
        if self._engine is None:
            self._engine = SparseDependencyEngine(self._pairs, self._occurrences)
        return self._engine

    def closure_row(
        self,
        source: str,
        *,
        min_probability: float = 0.01,
        max_hops: int = 8,
    ) -> dict[str, float]:
        """Row ``i`` of ``P*``: best-chain probability to every target.

        Computed by hop-bounded relaxation in the max-product semiring,
        pruning chains whose product falls below ``min_probability`` or
        longer than ``max_hops`` hops.  Results are memoized per
        (source, pruning) triple; both backends produce bit-identical
        rows.

        Args:
            source: The requested document ``D_i``.
            min_probability: Chains below this probability are pruned.
            max_hops: Maximum chain length.

        Returns:
            Mapping target → ``p*[i, target]`` (source excluded).
        """
        if not 0.0 < min_probability <= 1.0:
            raise DependencyModelError("min_probability must be in (0, 1]")
        if max_hops < 1:
            raise DependencyModelError("max_hops must be >= 1")
        key = (source, min_probability, max_hops)
        cached = self._closure_cache.get(key)
        if cached is not None:
            return dict(cached)
        if self._backend == "sparse":
            row = self._sparse_engine().closure_rows(
                [source], min_probability=min_probability, max_hops=max_hops
            )[0]
        else:
            row = self._relaxed_row(source, min_probability, max_hops)
        self._closure_cache[key] = row
        return dict(row)

    def closure_rows(
        self,
        sources: Iterable[str],
        *,
        min_probability: float = 0.01,
        max_hops: int = 8,
    ) -> dict[str, dict[str, float]]:
        """Many ``P*`` rows at once (the batched form of
        :meth:`closure_row`).

        On the sparse backend all cache-missing sources are computed in
        one vectorized batch; the dict backend falls back to a per-row
        loop.  Either way results land in the same memoization cache.

        Returns:
            Mapping source → closure row (duplicates collapse).
        """
        if not 0.0 < min_probability <= 1.0:
            raise DependencyModelError("min_probability must be in (0, 1]")
        if max_hops < 1:
            raise DependencyModelError("max_hops must be >= 1")
        wanted = list(dict.fromkeys(sources))
        result: dict[str, dict[str, float]] = {}
        missing: list[str] = []
        for source in wanted:
            cached = self._closure_cache.get((source, min_probability, max_hops))
            if cached is not None:
                result[source] = dict(cached)
            else:
                missing.append(source)
        if missing:
            if self._backend == "sparse":
                computed = self._sparse_engine().closure_rows(
                    missing, min_probability=min_probability, max_hops=max_hops
                )
            else:
                computed = [
                    self._relaxed_row(source, min_probability, max_hops)
                    for source in missing
                ]
            for source, row in zip(missing, computed):
                self._closure_cache[(source, min_probability, max_hops)] = row
                result[source] = dict(row)
        return result

    def p_star(
        self,
        source: str,
        target: str,
        *,
        min_probability: float = 0.01,
        max_hops: int = 8,
    ) -> float:
        """``p*[i, j]`` under the same pruning as :meth:`closure_row`."""
        return self.closure_row(
            source, min_probability=min_probability, max_hops=max_hops
        ).get(target, 0.0)

    # -- analyses -----------------------------------------------------------------

    def pair_histogram(self, n_bins: int = 20) -> PairHistogram:
        """Figure 4: histogram of pair counts over ``p[i, j]`` ranges.

        ``n_bins`` is clamped to at least one bin, so degenerate
        requests collapse to a single [0, 1] bucket instead of failing.
        """
        n_bins = max(1, n_bins)
        edges = [k / n_bins for k in range(n_bins + 1)]
        counts = [0] * n_bins
        for source, row in self._pairs.items():
            base = self._occurrences.get(source, 0.0)
            if base <= 0:
                continue
            for count in row.values():
                # A pair cannot co-occur more often than its source
                # occurs, but clamp so the histogram stays in-range
                # even if counters are perturbed by aging.
                probability = min(1.0, count / base)
                if probability <= 0:
                    continue
                index = min(int(probability * n_bins), n_bins - 1)
                counts[index] += 1
        return PairHistogram(bin_edges=tuple(edges), counts=tuple(counts))
