"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting genuine bugs (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TraceFormatError(ReproError):
    """A trace line or record could not be parsed or is internally invalid."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class CalibrationError(ReproError):
    """A synthetic workload failed to meet a calibration target."""


class TopologyError(ReproError, ValueError):
    """A routing tree or cluster definition is malformed or queried badly.

    Also subclasses :class:`ValueError` so callers probing a tree with
    unvalidated node ids (e.g. ``hops_from`` / ``subtree_leaves`` on an
    unknown id) can catch the standard exception without importing the
    library hierarchy.
    """


class AllocationError(ReproError):
    """Storage allocation inputs are infeasible or inconsistent."""


class DependencyModelError(ReproError):
    """The P / P* dependency model was queried or built incorrectly."""


class SimulationError(ReproError):
    """A trace-driven simulation was configured or driven incorrectly."""


class RuntimeProtocolError(SimulationError):
    """A live runtime peer violated the serving protocol.

    Raised when a node receives a malformed or out-of-contract message
    (unknown kind, missing fields, oversized frame) or when the live
    system's behaviour diverges from its batch reference.  Subclasses
    :class:`SimulationError` so existing broad handlers still catch it,
    while the CLI maps it to a distinct exit code.
    """


class TransportError(SimulationError):
    """A message could not be delivered or timed out in flight.

    Covers both the simulated in-memory network (dropped frames, full
    inboxes, per-request timeouts) and the real TCP transport
    (connection failures, truncated frames).  Distinct from
    :class:`RuntimeProtocolError`: the peer behaved correctly but the
    network did not.
    """


class PolicyError(ReproError):
    """A speculation policy received invalid parameters."""


class PerfRegressionError(ReproError):
    """A benchmark run regressed past the committed baseline's gate.

    Raised by :mod:`repro.perf.bench` when a measured median slows down
    beyond the allowed margin on the same machine, or when a sparse/dict
    speedup ratio falls below its floor.  The CLI maps it to a distinct
    exit code so CI can tell a perf regression from a correctness
    failure.
    """
