"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting genuine bugs (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TraceFormatError(ReproError):
    """A trace line or record could not be parsed or is internally invalid."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class CalibrationError(ReproError):
    """A synthetic workload failed to meet a calibration target."""


class TopologyError(ReproError):
    """A routing tree or cluster definition is malformed."""


class AllocationError(ReproError):
    """Storage allocation inputs are infeasible or inconsistent."""


class DependencyModelError(ReproError):
    """The P / P* dependency model was queried or built incorrectly."""


class SimulationError(ReproError):
    """A trace-driven simulation was configured or driven incorrectly."""


class PolicyError(ReproError):
    """A speculation policy received invalid parameters."""
