"""repro — reproduction of Bestavros (ICDE 1996).

Speculative data dissemination and service to reduce server load,
network traffic and service time in distributed information systems.

Public API highlights:

* :class:`repro.config.BaselineConfig` — the paper's baseline parameters.
* :mod:`repro.trace` — trace records, CLF parsing, cleaning, sessions.
* :mod:`repro.workload` — the calibrated synthetic trace generator.
* :mod:`repro.topology` — routing trees, clusters, proxy placement.
* :mod:`repro.popularity` — popularity profiles and the exponential model.
* :mod:`repro.dissemination` — optimal storage allocation + simulator.
* :mod:`repro.speculation` — P/P* dependency model, policies, simulator.
* :mod:`repro.core` — high-level facades and experiment sweeps.
"""

from .config import BASELINE, BaselineConfig
from .errors import (
    AllocationError,
    CalibrationError,
    DependencyModelError,
    PolicyError,
    ReproError,
    RuntimeProtocolError,
    SimulationError,
    TopologyError,
    TraceFormatError,
    TransportError,
)

__version__ = "1.0.0"

__all__ = [
    "BASELINE",
    "BaselineConfig",
    "ReproError",
    "TraceFormatError",
    "CalibrationError",
    "TopologyError",
    "AllocationError",
    "DependencyModelError",
    "SimulationError",
    "RuntimeProtocolError",
    "TransportError",
    "PolicyError",
    "__version__",
]
