"""Wiring: run a proxy fleet live and gate it against the single tier.

:func:`execute_fleet` replays one workload's serving half **three**
times on the in-memory transport under the virtual clock:

* **demand** — the ratio denominator: the single-tier deployment with
  empty caches and no speculation anywhere.
* **single** — the pre-fleet arrangement: one proxy per region, every
  region replicating the same origin-computed dissemination plan, with
  origin-side speculation.  Each replica holds a ``1/R`` share so the
  arm uses the same **total** storage as the fleet.
* **fleet** — the hierarchical fleet from
  :func:`~repro.fleet.plan.build_fleet_plan`: per-region and per-subnet
  nodes, per-subtree demand-driven holdings, the local → sibling →
  parent → origin lookup, and per-node speculative service.

The headline gate (:meth:`FleetReport.require_improvement`) asserts the
paper's four ratios are all better for the fleet than for the
single-tier deployment at equal total storage, and
:func:`execute_fleet_smoke` additionally proves the whole report is
bit-identical across repeated seeded runs.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable

from ..config import BASELINE, SECONDS_PER_DAY, BaselineConfig, DeploySpec
from ..core.planner import DisseminationPlanner
from ..core.sampling import estimate_ratios
from ..errors import RuntimeProtocolError, SimulationError, TransportError
from ..obs import (
    ArmObservations,
    ObsBundle,
    ObsConfig,
    RunObservations,
    run_manifest,
)
from ..runtime.clock import run_virtual
from ..runtime.estimator import OnlineDependencyEstimator
from ..runtime.faults import FaultInjector, FaultPlan
from ..runtime.loadgen import ClientRoute, LoadConfig
from ..runtime.messages import Message
from ..runtime.metrics import live_ratios, verify_conservation
from ..runtime.origin import OriginServer
from ..runtime.service import smoke_workload
from ..runtime.transport import InMemoryNetwork
from ..speculation.dependency import DependencyModel
from ..speculation.metrics import SpeculationRatios
from ..speculation.policies import SpeculationPolicy, ThresholdPolicy
from ..topology.builder import build_clientele_tree
from ..topology.tree import RoutingTree
from ..trace.profiler import TraceProfiler, WorkloadProfile
from ..trace.records import Trace
from ..trace.sampling import SampledRatioReport, SamplingConfig, sample_clients
from ..workload.generator import GeneratorConfig, SyntheticTraceGenerator
from .loadgen import FleetLoadGenerator
from .node import FleetNode
from .plan import FleetPlan, build_fleet_plan, build_single_tier_plan

#: The four headline ratios, in report order.
RATIO_NAMES = ("bandwidth", "server_load", "service_time", "miss_rate")


@dataclass(frozen=True)
class FleetSettings:
    """Knobs for one fleet run.

    Attributes:
        budget_bytes: **Total** storage across every caching node; the
            single-tier comparison arm divides the same total across
            its region replicas.
        policy: Placement policy (see
            :data:`~repro.fleet.plan.FLEET_POLICIES`).
        probe_siblings: Max siblings probed per miss (``d``).
        probe_timeout: Per-probe timeout in virtual seconds.
        region_fraction: Share of each region's budget kept at the
            region node; the rest goes to its subnets.
        node_speculation: Fleet nodes push riders from their own
            holdings (the footnote-5 per-proxy speculative service).
        concurrency: Load-generator admission-control cap.
        request_timeout: Per-attempt client/forward timeout.
        retries: Client retries per request after a timeout.
        train_fraction: Leading trace fraction used as history.
        cooperative: Piggyback client cache digests on requests.
        seed: Seeds the network and every backoff RNG.
        drop_probability: Frame-drop rate (exercises retry paths).
        schedule_seed: When not ``None``, perturb same-deadline timer
            order (the race gate; results must not change).
        codec: Wire codec the in-memory network round-trips every
            delivered message through (``"binary"`` or ``"json"``) —
            the same knob :class:`~repro.runtime.service.LiveSettings`
            has, so one :class:`~repro.config.DeploySpec` can configure
            both run kinds.
    """

    budget_bytes: float = 2_000_000.0
    policy: str = "hierarchical"
    probe_siblings: int = 2
    probe_timeout: float = 5.0
    region_fraction: float = 0.65
    node_speculation: bool = True
    concurrency: int = 32
    request_timeout: float = 30.0
    retries: int = 1
    train_fraction: float = 0.5
    cooperative: bool = True
    seed: int = 0
    drop_probability: float = 0.0
    schedule_seed: int | None = None
    codec: str = "binary"


@dataclass(frozen=True)
class FleetReport:
    """Everything one fleet run produced.

    Attributes:
        demand: Snapshot of the demand-only arm (ratio denominator).
        single: Snapshot of the single-tier arm at equal total storage.
        fleet: Snapshot of the fleet arm.
        ratios: The four ratios, fleet vs. demand.
        single_ratios: The four ratios, single-tier vs. demand.
        plan: The fleet plan's summary (policy, tiers, stored bytes).
        observed: Fleet/demand traces + time series when an enabled
            :class:`~repro.obs.ObsConfig` was passed; None otherwise.
        sampling: Horvitz–Thompson estimates of the four ratios with
            bootstrap intervals when the run replayed a client sample;
            None for full-population runs.
        profile: The sampled workload's profile when the sampling
            config asked for one; None otherwise.
    """

    demand: dict[str, Any]
    single: dict[str, Any]
    fleet: dict[str, Any]
    ratios: SpeculationRatios
    single_ratios: SpeculationRatios
    plan: dict[str, Any]
    observed: RunObservations | None = None
    sampling: SampledRatioReport | None = None
    profile: WorkloadProfile | None = None

    def improvement(self) -> dict[str, tuple[float, float]]:
        """Per-ratio ``(fleet, single_tier)`` pairs, lower is better."""
        pairs = zip(
            RATIO_NAMES,
            (
                self.ratios.bandwidth_ratio,
                self.ratios.server_load_ratio,
                self.ratios.service_time_ratio,
                self.ratios.miss_rate_ratio,
            ),
            (
                self.single_ratios.bandwidth_ratio,
                self.single_ratios.server_load_ratio,
                self.single_ratios.service_time_ratio,
                self.single_ratios.miss_rate_ratio,
            ),
        )
        return {name: (fleet, single) for name, fleet, single in pairs}

    def require_improvement(self, slack: float = 0.0) -> None:
        """Assert every headline ratio beats the single tier.

        Args:
            slack: Absolute tolerance; 0 demands a strict improvement
                on all four ratios.

        Raises:
            RuntimeProtocolError: When any fleet ratio fails to improve
                on the single-tier deployment at equal total storage.
        """
        losing = {
            name: pair
            for name, pair in self.improvement().items()
            if not pair[0] < pair[1] + slack
        }
        if losing:
            detail = ", ".join(
                f"{name} {fleet:.4f} vs single {single:.4f}"
                for name, (fleet, single) in sorted(losing.items())
            )
            raise RuntimeProtocolError(
                f"fleet fails to improve on the single tier at equal "
                f"total storage: {detail}"
            )

    def format(self) -> str:
        """Human-readable two-row ratio comparison."""
        lines = [
            f"fleet  ({self.plan.get('policy')}): {self.ratios.format()}",
            f"single (replicated):  {self.single_ratios.format()}",
        ]
        return "\n".join(lines)


def _entry_routes(
    tree: RoutingTree, plan: FleetPlan, clients: set[str]
) -> dict[str, ClientRoute]:
    """Each client's entry node: its deepest caching ancestor."""
    sites = set(plan.node_names())
    routes: dict[str, ClientRoute] = {}
    for client in clients:
        path = tree.path_from_root(client)
        entry = None
        for node in reversed(path[:-1]):
            if node in sites:
                entry = node
                break
        if entry is None:
            routes[client] = ClientRoute(
                target=tree.root, target_depth=0, depth=tree.depth(client)
            )
        else:
            routes[client] = ClientRoute(
                target=entry,
                target_depth=tree.depth(entry),
                depth=tree.depth(client),
            )
    return routes


def _tree_hop_count(tree: RoutingTree) -> Callable[[str, str], int]:
    """A memoized tree-distance latency weight for the network."""
    cache: dict[tuple[str, str], int] = {}

    def hop_count(source: str, destination: str) -> int:
        key = (source, destination)
        hops = cache.get(key)
        if hops is None:
            if source in tree and destination in tree:
                hops = tree.distance(source, destination)
            else:
                hops = 1
            hops = hops if hops > 0 else 1
            cache[key] = hops
        return hops

    return hop_count


async def _repush_holdings(
    endpoint, target: str, entries: tuple[tuple[str, int], ...], metrics, timeout
) -> None:
    """Anti-entropy: push one restarted node's planned holdings back."""
    payload_bytes = sum(size for _, size in entries)
    message = Message(
        kind="push",
        sender=endpoint.name,
        request_id=endpoint.next_request_id(),
        payload={
            "documents": [[doc, size] for doc, size in entries],
            "mode": "replace",
        },
        body_bytes=payload_bytes,
    )
    try:
        await endpoint.call(target, message, timeout=timeout)
    except TransportError:
        metrics.counter("fleet.failed_repushes").inc()
        return
    metrics.counter("fleet.repushes").inc()
    metrics.counter("fleet.repushed_bytes").inc(payload_bytes)


async def _fleet_run_once(
    serve: Trace,
    tree: RoutingTree,
    plan: FleetPlan,
    routes: dict[str, ClientRoute],
    *,
    config: BaselineConfig,
    settings: FleetSettings,
    estimator: OnlineDependencyEstimator,
    model: DependencyModel,
    origin_policy: SpeculationPolicy | None,
    node_policy: SpeculationPolicy | None,
    fault_plan: FaultPlan | None = None,
    obs: ObsConfig | None = None,
) -> tuple[dict[str, Any], ArmObservations | None]:
    """One full fleet replay; returns (snapshot, observations-or-None)."""
    network = InMemoryNetwork(
        seed=settings.seed,
        drop_probability=settings.drop_probability,
        hop_count=_tree_hop_count(tree),
        codec=settings.codec,
    )
    bundle = ObsBundle.from_config(obs)
    metrics = bundle.registry
    metrics.bind_clock(asyncio.get_running_loop().time)
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(fault_plan, seed=settings.seed, metrics=metrics)
        network.attach_faults(injector)

    origin_endpoint = network.endpoint(tree.root)
    origin = OriginServer(
        serve.documents,
        estimator=estimator,
        policy=origin_policy,
        config=config,
        metrics=metrics,
        name=tree.root,
    )
    origin_endpoint.start(origin.handle)

    endpoints = []
    nodes: list[FleetNode] = []
    for spec in plan.nodes:
        endpoint = network.endpoint(spec.name)
        directory = (
            plan.directory_for(spec.name)
            if plan.probe_mode == "directory"
            else {}
        )
        node = FleetNode(
            spec,
            endpoint,
            metrics=metrics,
            directory=directory,
            probe_mode=plan.probe_mode,
            probe_siblings=settings.probe_siblings,
            probe_timeout=settings.probe_timeout,
            model=model,
            policy=node_policy,
            catalog=serve.documents,
            config=config,
            upstream_timeout=settings.request_timeout,
            backoff_seed=settings.seed,
        )
        endpoint.start(node.handle)
        endpoints.append(endpoint)
        nodes.append(node)

    repush_tasks: list[asyncio.Task[None]] = []
    injector_task = None
    if injector is not None:

        def restart_hook(restarted: FleetNode) -> Callable[[], None]:
            entries = restarted.spec.holdings

            def hook() -> None:
                restarted.on_restart()
                if not entries:
                    return
                repush_tasks.append(
                    asyncio.get_running_loop().create_task(
                        _repush_holdings(
                            origin_endpoint,
                            restarted.name,
                            entries,
                            metrics,
                            settings.request_timeout,
                        )
                    )
                )

            return hook

        for node in nodes:
            injector.register_node(
                node.name,
                on_crash=node.on_crash,
                on_restart=restart_hook(node),
            )
        injector_task = asyncio.get_running_loop().create_task(injector.run())

    generator = FleetLoadGenerator(
        network,
        routes,
        serve.by_client(),
        origin_name=tree.root,
        config=config,
        load=LoadConfig(
            concurrency=settings.concurrency,
            request_timeout=settings.request_timeout,
            retries=settings.retries,
            cooperative=settings.cooperative,
            backoff_seed=settings.seed,
        ),
        metrics=metrics,
    )
    loop = asyncio.get_running_loop()
    started = loop.time()
    try:
        await generator.run()
    finally:
        background = [
            task
            for task in (injector_task, *repush_tasks)
            if task is not None and not task.done()
        ]
        for task in background:
            task.cancel()
        if background:
            await asyncio.gather(*background, return_exceptions=True)
        for node in nodes:
            await node.close()
        for endpoint in endpoints:
            await endpoint.close()
        await origin_endpoint.close()

    metrics.counter("run.virtual_seconds").inc(round(loop.time() - started, 9))
    for name, amount in network.stats().items():
        metrics.counter(f"network.{name}").inc(amount)
    observed = (
        bundle.observations() if obs is not None and obs.enabled else None
    )
    return metrics.snapshot(), observed


class _FleetPrepared:
    """Workload, topology and plan prep shared by every fleet arm."""

    def __init__(
        self,
        workload: GeneratorConfig,
        settings: FleetSettings,
        config: BaselineConfig,
        sampling: SamplingConfig | None = None,
    ):
        self.settings = settings
        self.config = config
        trace = SyntheticTraceGenerator(workload).generate().remote_only()
        self.sampling_report: SampledRatioReport | None = None
        self.profile: WorkloadProfile | None = None
        if sampling is not None:
            # Same contract as the loadtest engine: estimate the ratios
            # from the batch replay of the sample against the full
            # population, then thin every fleet arm to those clients.
            train_days = (
                settings.train_fraction * trace.duration / SECONDS_PER_DAY
            )
            self.sampling_report = estimate_ratios(
                trace, sampling, config=config, train_days=train_days
            )
            trace = sample_clients(
                trace, sampling.fraction, seed=sampling.seed
            )
            if sampling.profile:
                self.profile = TraceProfiler(
                    stride_timeout=config.stride_timeout
                ).profile(trace)
        if len(trace) < 10:
            raise SimulationError("workload too small for a fleet run")

        boundary = trace.start_time + settings.train_fraction * trace.duration
        self.train = trace.window(trace.start_time, boundary)
        self.serve = trace.window(boundary, trace.end_time + 1.0)
        if len(self.train) == 0 or len(self.serve) == 0:
            raise SimulationError(
                "train/serve split produced an empty half; "
                "adjust train_fraction or enlarge the workload"
            )

        self.tree = build_clientele_tree(trace)
        self.model = DependencyModel.estimate(
            self.train,
            window=config.stride_timeout,
            stride_timeout=config.stride_timeout,
        )
        self.policy = ThresholdPolicy(
            threshold=config.threshold, max_size=config.max_size
        )

        self.fleet_plan = build_fleet_plan(
            self.tree,
            self.train,
            budget_bytes=settings.budget_bytes,
            policy=settings.policy,
            region_fraction=settings.region_fraction,
        )

        serve_clients = self.serve.clients()
        regions = sorted(
            {
                node
                for client in serve_clients
                for node in self.tree.path_from_root(client)
                if node.startswith("region-")
            }
        )
        if not regions:
            raise SimulationError("no region covers any serving client")
        planner = DisseminationPlanner(remote_only=True)
        planner.add_server(self.tree.root, self.train)
        single_plan = planner.plan(settings.budget_bytes / len(regions))
        catalog = trace.documents
        single_holdings = {
            doc_id: catalog[doc_id].size
            for doc_id in single_plan.documents.get(self.tree.root, ())
            if doc_id in catalog
        }
        self.single_plan = build_single_tier_plan(
            self.tree,
            self.train,
            budget_bytes=settings.budget_bytes,
            regions=regions,
            holdings=single_holdings,
        )
        self.demand_plan = self.single_plan.without_holdings()

        self.fleet_routes = _entry_routes(
            self.tree, self.fleet_plan, serve_clients
        )
        self.single_routes = _entry_routes(
            self.tree, self.single_plan, serve_clients
        )

    def fresh_estimator(self) -> OnlineDependencyEstimator:
        """A warm, frozen estimator; each arm gets its own."""
        estimator = OnlineDependencyEstimator(
            window=self.config.stride_timeout,
            stride_timeout=self.config.stride_timeout,
            learn=False,
        )
        estimator.warm(self.train)
        return estimator

    def arm(
        self,
        kind: str,
        *,
        fault_plan: FaultPlan | None = None,
        obs: ObsConfig | None = None,
    ) -> tuple[dict[str, Any], ArmObservations | None]:
        """Run one arm (``demand`` / ``single`` / ``fleet``) virtually."""
        if kind == "demand":
            plan, routes = self.demand_plan, self.single_routes
            origin_policy = node_policy = None
        elif kind == "single":
            plan, routes = self.single_plan, self.single_routes
            origin_policy, node_policy = self.policy, None
        elif kind == "fleet":
            plan, routes = self.fleet_plan, self.fleet_routes
            origin_policy = self.policy
            node_policy = (
                self.policy if self.settings.node_speculation else None
            )
        else:
            raise SimulationError(f"unknown fleet arm {kind!r}")
        return run_virtual(
            _fleet_run_once(
                self.serve,
                self.tree,
                plan,
                routes,
                config=self.config,
                settings=self.settings,
                estimator=self.fresh_estimator(),
                model=self.model,
                origin_policy=origin_policy,
                node_policy=node_policy,
                fault_plan=fault_plan,
                obs=obs,
            ),
            schedule_seed=self.settings.schedule_seed,
        )


def execute_fleet(
    workload: GeneratorConfig,
    settings: FleetSettings | None = None,
    *,
    config: BaselineConfig = BASELINE,
    fault_plan: FaultPlan | None = None,
    obs: ObsConfig | None = None,
    sampling: SamplingConfig | None = None,
    deploy: DeploySpec | None = None,
) -> FleetReport:
    """Run demand / single-tier / fleet arms and compare the ratios.

    This is the engine behind :meth:`repro.api.Session.fleet` and the
    ``repro fleet`` CLI verb.

    Args:
        workload: Synthetic workload configuration (seeded).
        settings: Fleet knobs; defaults to :class:`FleetSettings`.
        config: The paper's cost model and timeouts.
        fault_plan: Optional scripted faults, applied to the fleet arm
            only (the comparison arms stay clean references).
        obs: Observability channels; the fleet arm's observations are
            reported as ``speculative``, the demand arm's as
            ``baseline``.
        sampling: Replay only a hash-selected client fraction and
            attach Horvitz–Thompson ratio estimates with bootstrap
            intervals; None replays the full population.
        deploy: A **local** :class:`~repro.config.DeploySpec`; its
            ``codec`` (when set) overrides ``settings.codec`` so fleet
            runs read their wire format from the same spec as every
            other run kind.  Distributed specs are rejected — the
            multi-process path is :func:`repro.deploy.execute_deploy`.

    Returns:
        A :class:`FleetReport` with all three snapshots and both ratio
        sets.

    Raises:
        SimulationError: On an unusable workload or plan, or a
            distributed ``deploy`` spec.
        RuntimeProtocolError: On a byte/frame conservation violation.
    """
    settings = settings if settings is not None else FleetSettings()
    if deploy is not None:
        if not deploy.local:
            raise SimulationError(
                f"DeploySpec(processes={deploy.processes}) is distributed; "
                "fleet runs are in-process — use repro.deploy.execute_deploy "
                "for multi-process topologies"
            )
        if deploy.codec is not None:
            settings = replace(settings, codec=deploy.codec)
    prepared = _FleetPrepared(workload, settings, config, sampling)

    demand_snap, demand_obs = prepared.arm("demand", obs=obs)
    single_snap, _ = prepared.arm("single", obs=obs)
    fleet_snap, fleet_obs = prepared.arm(
        "fleet", fault_plan=fault_plan, obs=obs
    )
    strict = settings.drop_probability == 0.0 and fault_plan is None
    verify_conservation(demand_snap, strict=strict)
    verify_conservation(single_snap, strict=strict)
    verify_conservation(fleet_snap, strict=strict)

    observed = None
    if fleet_obs is not None and demand_obs is not None:
        extra: dict[str, Any] = {}
        if prepared.sampling_report is not None:
            extra["sampling"] = prepared.sampling_report.to_dict()
        if prepared.profile is not None:
            extra["workload_profile"] = prepared.profile.to_dict()
        observed = RunObservations(
            speculative=fleet_obs,
            baseline=demand_obs,
            manifest=run_manifest(
                seed=workload.seed,
                config={
                    "workload": asdict(workload),
                    "settings": asdict(settings),
                    "cost_model": asdict(config),
                    "plan": prepared.fleet_plan.summary(),
                },
                extra=extra or None,
            ),
        )
    return FleetReport(
        demand=demand_snap,
        single=single_snap,
        fleet=fleet_snap,
        ratios=live_ratios(fleet_snap, demand_snap),
        single_ratios=live_ratios(single_snap, demand_snap),
        plan=prepared.fleet_plan.summary(),
        observed=observed,
        sampling=prepared.sampling_report,
        profile=prepared.profile,
    )


def fleet_smoke_settings(seed: int = 0) -> FleetSettings:
    """The deterministic knobs ``repro fleet --smoke`` runs with."""
    return FleetSettings(seed=seed)


def _canonical_counters(report: FleetReport) -> str:
    """Canonical JSON of all three arms' counters (determinism check)."""
    return json.dumps(
        {
            "demand": report.demand.get("counters", {}),
            "single": report.single.get("counters", {}),
            "fleet": report.fleet.get("counters", {}),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def execute_fleet_smoke(
    seed: int = 0,
    *,
    obs: ObsConfig | None = None,
) -> FleetReport:
    """The ``repro fleet --smoke`` self-test.

    Runs the smoke workload through :func:`execute_fleet` **twice** and
    requires byte-identical counters across the repeats (the
    determinism gate), then asserts the four headline ratios improve on
    the single-tier deployment at equal total storage — the check CI
    runs after the chaos gate.

    Raises:
        RuntimeProtocolError: On any nondeterminism between repeats, a
            conservation violation, or a ratio that fails to improve.
    """
    report = execute_fleet(
        smoke_workload(seed), fleet_smoke_settings(seed), obs=obs
    )
    repeat = execute_fleet(smoke_workload(seed), fleet_smoke_settings(seed))
    first, second = _canonical_counters(report), _canonical_counters(repeat)
    if first != second:
        raise RuntimeProtocolError(
            "fleet smoke run is not deterministic: repeated seeded runs "
            "produced different counters"
        )
    report.require_improvement()
    return report
