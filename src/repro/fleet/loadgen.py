"""Load generation for fleet runs: path-aware bytes × hops accounting.

The single-tier load generator can infer hop counts from geometry alone
(a reply came either from the client's proxy or from the origin).  In a
fleet, a reply may have travelled entry node → sibling → parent →
origin chains of any shape, so fleet replies carry ``path_hops`` — the
tree edges accumulated **above** the client's entry node — and the
client adds its own leg below the entry node.  Everything else
(admission control, retries, caches, digests) is inherited unchanged
from :class:`~repro.runtime.loadgen.LoadGenerator`.
"""

from __future__ import annotations

from ..runtime.loadgen import ClientRoute, LoadGenerator
from ..speculation.caches import ClientCache
from ..trace.records import Request


class FleetLoadGenerator(LoadGenerator):
    """A load generator that costs replies by their travelled path."""

    def _account(
        self,
        route: ClientRoute,
        request: Request,
        payload: dict,
        cache: ClientCache,
    ) -> None:
        """Attribute one reply in batch-identical cost units.

        ``hops = (client → entry node) + path_hops``.  Replies without
        ``path_hops`` (a client routed straight at the origin) fall
        back to the full root path.  Riders travelled with the demand
        reply, so they pay the same hop count — cheaper than
        origin-side speculation whenever the serving node sits below
        the root, which is exactly the fleet's bandwidth advantage.
        """
        metrics = self.metrics
        config = self._config
        depth = route.depth
        size = int(payload.get("size", request.size))
        served_by = payload.get("served_by", self._origin_name)
        travelled = payload.get("path_hops")
        if isinstance(travelled, (int, float)):
            hops = (depth - route.target_depth) + int(travelled)
        else:
            hops = depth

        metrics.counter("received_bytes").inc(size)
        if served_by == self._origin_name:
            metrics.counter("origin_requests").inc()
        else:
            metrics.counter("proxy_requests").inc()
        metrics.counter("bytes_hops").inc(size * hops)
        metrics.counter("service_cost").inc(
            config.serv_cost
            + config.comm_cost * size * (hops / depth if depth else 1.0)
        )
        cache.insert(request.doc_id, size)

        for entry in payload.get("speculated", ()):
            rider_id, rider_size = str(entry[0]), int(entry[1])
            metrics.counter("speculated_documents").inc()
            metrics.counter("speculated_bytes").inc(rider_size)
            metrics.counter("bytes_hops").inc(rider_size * hops)
            cache.insert(rider_id, rider_size)
