"""One fleet cache node: local hit, sibling probe, parent, origin.

A :class:`FleetNode` runs the deterministic lookup protocol at one
caching node of the routing tree:

1. **Local**: the document is among this node's disseminated holdings —
   serve it (optionally with locally-speculated riders) at zero extra
   path hops.
2. **Sibling probe**: ask up to ``d`` same-parent siblings, one at a
   time in deterministic order.  A probe is a normal ``request`` with a
   ``probe`` flag; the probed node answers **only** from its own
   holdings (a protocol-error reply signals a probe miss) so probes can
   never recurse or loop.
3. **Parent**: forward to the upstream caching node (which runs the
   same protocol) behind the standard circuit breaker with seeded
   retry backoff.
4. **Origin**: the recursion's base case — the root upstream is the
   origin server itself.

Replies accumulate ``path_hops``, the tree edges the document travelled
*above* the client's entry node, so the load generator can attribute
bytes × hops exactly (the client adds its own leg below the entry
node).  Failure semantics mirror
:class:`~repro.runtime.proxy.ProxyNode`: open breakers fast-fail and
queue misses, restarts lose volatile holdings until a re-push, and
retried demands are counted as duplicate service — with every counter
labelled ``fleet.<node>.*`` so multi-node runs never collide.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Callable

from ..config import BASELINE, BaselineConfig
from ..errors import RuntimeProtocolError, TransportError
from ..runtime.messages import Message, make_error, make_request, make_response
from ..runtime.metrics import MetricsRegistry, default_registry
from ..runtime.resilience import (
    BREAKER_OPEN,
    BackoffPolicy,
    CircuitBreaker,
    DuplicateFilter,
    retry_rng,
)
from ..runtime.transport import Endpoint
from ..speculation.dependency import DependencyModel
from ..speculation.policies import SpeculationPolicy
from ..trace.records import Document
from .plan import FleetNodeSpec, _hashed_rank


class FleetNode:
    """Protocol logic of one fleet cache; bind ``handle`` to its endpoint.

    Args:
        spec: The node's planned geometry (upstream, siblings,
            distances) and initial holdings.
        endpoint: The node's own endpoint (used for probes/forwards).
        metrics: Shared metrics registry; counters are labelled
            ``fleet.<name>.*``.
        directory: ``doc_id → sibling names`` probe map from the plan
            (directory mode); ignored in hashed mode.
        probe_mode: ``"directory"`` or ``"hashed"`` sibling choice.
        probe_siblings: Max siblings probed per miss (``d``); 0
            disables probing.
        probe_timeout: Per-probe timeout in (virtual) seconds.
        model: Frozen dependency model for local speculation; None
            disables node-side riders.
        policy: Speculation policy sharing the origin's semantics;
            riders are restricted to this node's own holdings (a cache
            can only push bytes it actually has).
        catalog: Full document catalog (rider candidate lookup).
        config: Cost model (``max_size`` caps riders).
        upstream_timeout: Per-forward timeout (None waits forever).
        breaker: Upstream circuit breaker; a default one is built when
            omitted.
        backoff: Retry backoff policy for upstream forwards.
        forward_retries: Extra upstream attempts after a transport
            failure.
        backoff_seed: Seeds this node's retry-jitter RNG.
        miss_queue_limit: Bound on misses queued while the upstream is
            unreachable.
        resolve_upstream: Optional ``(doc_id, attempt) -> endpoint
            name`` shard resolver.  Only consulted when this node's
            upstream is the origin itself: sharded deployments map the
            logical origin onto the consistent-hash owner of each
            document, and retry attempts fail over across replicas.
            Forwards to a *caching* parent are never resolved — the
            tree geometry is fixed by the plan.
    """

    def __init__(
        self,
        spec: FleetNodeSpec,
        endpoint: Endpoint,
        *,
        metrics: MetricsRegistry | None = None,
        directory: dict[str, tuple[str, ...]] | None = None,
        probe_mode: str = "directory",
        probe_siblings: int = 2,
        probe_timeout: float | None = 5.0,
        model: DependencyModel | None = None,
        policy: SpeculationPolicy | None = None,
        catalog: dict[str, Document] | None = None,
        config: BaselineConfig = BASELINE,
        upstream_timeout: float | None = None,
        breaker: CircuitBreaker | None = None,
        backoff: BackoffPolicy | None = None,
        forward_retries: int = 1,
        backoff_seed: int = 0,
        miss_queue_limit: int = 64,
        resolve_upstream: Callable[[str, int], str] | None = None,
    ):
        self.name = spec.name
        self.spec = spec
        self._endpoint = endpoint
        self._holdings: dict[str, int] = dict(spec.holdings)
        self.metrics = metrics if metrics is not None else default_registry()
        self._directory = dict(directory or {})
        self._probe_mode = probe_mode
        self._probe_siblings = max(0, probe_siblings)
        self._probe_timeout = probe_timeout
        self._model = model
        self._policy = policy
        self._catalog = dict(catalog or {})
        self._config = config
        self._upstream_timeout = upstream_timeout
        if breaker is None:
            reset = 2.0 * (upstream_timeout if upstream_timeout else 30.0)
            breaker = CircuitBreaker(failure_threshold=4, reset_timeout=reset)
        breaker.watch(self._breaker_transition)
        self._breaker = breaker
        self._backoff = backoff if backoff is not None else BackoffPolicy()
        self._forward_retries = max(0, forward_retries)
        self._rng = retry_rng(backoff_seed, spec.name)
        self._missed: OrderedDict[str, float] = OrderedDict()
        self._miss_queue_limit = miss_queue_limit
        self._dedupe = DuplicateFilter()
        self._recovery_task: asyncio.Task[None] | None = None
        self._resolve_upstream = resolve_upstream

    def _upstream_for(self, doc_id: str, attempt: int) -> str:
        """Destination of one upstream call (shard owner when resolving)."""
        if self._resolve_upstream is None:
            return self.spec.upstream
        return self._resolve_upstream(doc_id, attempt)

    # -- state ----------------------------------------------------------------

    @property
    def holdings(self) -> dict[str, int]:
        """Current holdings (``doc_id → size``), a defensive copy."""
        return dict(self._holdings)

    @property
    def breaker(self) -> CircuitBreaker:
        """The upstream circuit breaker (exposed for tests and chaos)."""
        return self._breaker

    @property
    def queued_misses(self) -> tuple[str, ...]:
        """Doc ids queued while the upstream was unreachable."""
        return tuple(self._missed)

    def _counter(self, suffix: str):
        return self.metrics.counter(f"fleet.{self.name}.{suffix}")

    def _breaker_transition(self, old_state: str, new_state: str) -> None:
        self._counter(f"breaker.{new_state}").inc()
        self.metrics.record_event(
            self._loop_time(), f"breaker:{self.name}:{old_state}->{new_state}"
        )

    def _loop_time(self) -> float:
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:  # outside a loop (unit tests)
            return 0.0

    def on_crash(self) -> None:
        """Fault hook: the process died — volatile holdings are lost."""
        lost = len(self._holdings)
        self._holdings = {}
        self._missed.clear()
        self._counter("crashes").inc()
        if lost:
            self._counter("holdings_lost").inc(lost)

    def on_restart(self) -> None:
        """Fault hook: back up, empty-handed until holdings are re-pushed."""
        self._counter("restarts").inc()

    async def close(self) -> None:
        """Cancel the background miss-recovery task, if any."""
        task = self._recovery_task
        self._recovery_task = None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    # -- protocol -------------------------------------------------------------

    async def handle(self, message: Message) -> Message | None:
        """Serve, probe-answer, forward, or apply a push."""
        if message.kind == "push":
            return self._apply_push(message)
        if message.kind == "request":
            return await self._serve(message)
        return make_error(
            self.name,
            message.request_id,
            "protocol",
            f"fleet node cannot handle kind {message.kind!r}",
        )

    def _apply_push(self, message: Message) -> Message:
        documents = message.payload.get("documents")
        if not isinstance(documents, list):
            return make_error(
                self.name, message.request_id, "protocol",
                "push needs a documents list",
            )
        mode = message.payload.get("mode", "replace")
        incoming: dict[str, int] = {}
        for entry in documents:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
            ):
                # one malformed entry poisons the whole push
                return make_error(
                    self.name, message.request_id, "protocol",
                    "push entries must be (doc_id, size) pairs",
                )
            incoming[entry[0]] = int(entry[1])
        if mode == "replace":
            self._holdings = incoming
        else:
            self._holdings.update(incoming)
        pushed_bytes = 0
        for size in incoming.values():
            pushed_bytes += size
        self._counter("pushes").inc()
        self._counter("pushed_bytes").inc(pushed_bytes)
        self.metrics.trace_event(
            "push",
            time=self._loop_time(),
            proxy=self.name,
            documents=len(incoming),
            bytes=pushed_bytes,
            mode=str(mode),
        )
        return Message(
            kind="ack",
            sender=self.name,
            request_id=message.request_id,
            payload={"documents": len(incoming)},
            body_bytes=16,
        )

    def _local_riders(
        self, doc_id: str, cached: set[str]
    ) -> list[tuple[str, int]]:
        """Riders this node can push from its own holdings.

        The footnote-5 refinement: the node speculates from the shared
        dependency model but can only send documents dissemination
        actually placed here.
        """
        if self._policy is None or self._model is None:
            return []
        riders: list[tuple[str, int]] = []
        for candidate in self._policy.select(
            doc_id, self._model, self._catalog
        ):
            size = self._holdings.get(candidate.doc_id)
            if size is None or size > self._config.max_size:
                continue
            if candidate.doc_id in cached:
                continue
            riders.append((candidate.doc_id, size))
        return riders

    def _local_response(
        self, message: Message, doc_id: str, size: int, *, probe: bool
    ) -> Message:
        demand_key = message.payload.get("req")
        duplicate = (
            isinstance(demand_key, str)
            and bool(demand_key)
            and self._dedupe.seen(demand_key)
        )
        if duplicate:
            self._counter("duplicate_requests").inc()
            self._counter("duplicate_bytes").inc(size)
        else:
            self._counter("hits").inc()
            self._counter("bytes_served").inc(size)
            if self._breaker.state == BREAKER_OPEN:
                # Partitioned from upstream but still serving what
                # dissemination left here (the paper's immutable copies).
                self._counter("stale_serves").inc()

        cached = {str(entry) for entry in message.payload.get("digest", ())}
        cached.add(doc_id)
        riders = self._local_riders(doc_id, cached)
        for rider_id, rider_size in riders:
            if duplicate:
                self._counter("duplicate_bytes").inc(rider_size)
            else:
                self._counter("speculated_documents").inc()
                self._counter("speculated_bytes").inc(rider_size)
        response = make_response(
            self.name,
            message.request_id,
            doc_id,
            size,
            self.name,
            speculated=riders,
        )
        response.payload["path_hops"] = 0
        if self.metrics.tracer is not None and not duplicate:
            self.metrics.trace_event(
                "fleet-serve",
                time=self._loop_time(),
                node=self.name,
                doc=doc_id,
                source="probe" if probe else "local",
                riders=len(riders),
            )
        return response

    def _queue_miss(self, doc_id: str, timestamp: float) -> None:
        if doc_id in self._missed:
            return
        if len(self._missed) >= self._miss_queue_limit:
            self._counter("miss_queue_overflow").inc()
            return
        self._missed[doc_id] = timestamp
        self._counter("queued_misses").inc()

    def _schedule_recovery(self) -> None:
        if not self._missed:
            return
        if self._recovery_task is not None and not self._recovery_task.done():
            return
        loop = asyncio.get_running_loop()
        self._recovery_task = loop.create_task(self._recover_misses())

    async def _recover_misses(self) -> None:
        """Fetch queued misses into holdings once the upstream is back."""
        while self._missed:
            doc_id, timestamp = next(iter(self._missed.items()))
            message = make_request(
                self.name,
                self._endpoint.next_request_id(),
                doc_id,
                timestamp,
            )
            try:
                reply = await self._endpoint.call(
                    self._upstream_for(doc_id, 0),
                    message,
                    timeout=self._upstream_timeout,
                )
            except TransportError:
                self._breaker.record_failure()
                return  # upstream flaky again; retry on the next close
            except RuntimeProtocolError:
                # e.g. the document no longer exists; drop it for good.
                # Safe window: pop(doc_id, None) tolerates a concurrent
                # _queue_miss re-adding the key — it just re-queues and
                # the next while-pass re-reads fresh state.
                self._missed.pop(doc_id, None)  # repro-lint: disable=A001
                continue
            self._breaker.record_success()
            # Safe window: same pop-with-default idiom as above.
            self._missed.pop(doc_id, None)  # repro-lint: disable=A001
            size = reply.payload.get("size")
            if isinstance(size, (int, float)):
                self._holdings[doc_id] = int(size)
                self._counter("recovered_misses").inc()

    def _probe_targets(self, doc_id: str) -> tuple[str, ...]:
        """Siblings to probe for one miss, in deterministic order."""
        if self._probe_siblings <= 0 or not self.spec.siblings:
            return ()
        if self._probe_mode == "hashed":
            ranked = sorted(
                self.spec.siblings,
                key=lambda sibling: _hashed_rank(doc_id, sibling),
            )
            return tuple(ranked[: self._probe_siblings])
        listed = self._directory.get(doc_id, ())
        return tuple(listed[: self._probe_siblings])

    async def _probe(self, sibling: str, message: Message) -> Message | None:
        """One sibling probe; None on miss or transport failure."""
        # Fresh correlation id per probe: a slow probe reply must never
        # be mistaken for the upstream forward that follows it.
        probe = Message(
            kind="request",
            sender=self.name,
            request_id=self._endpoint.next_request_id(),
            payload=dict(message.payload, probe=True),
            body_bytes=message.body_bytes,
        )
        try:
            reply = await self._endpoint.call(
                sibling, probe, timeout=self._probe_timeout
            )
        except TransportError:
            self._counter("probe_failures").inc()
            self._trace_probe(sibling, message, hit=False)
            return None
        except RuntimeProtocolError:
            self._counter("probe_misses").inc()
            self._trace_probe(sibling, message, hit=False)
            return None
        self._counter("sibling_hits").inc()
        self._trace_probe(sibling, message, hit=True)
        return reply

    def _trace_probe(self, sibling: str, message: Message, *, hit: bool) -> None:
        if self.metrics.tracer is None:
            return
        self.metrics.trace_event(
            "fleet-probe",
            time=self._loop_time(),
            node=self.name,
            sibling=sibling,
            doc=str(message.payload.get("doc_id")),
            hit=hit,
        )

    def _relay(self, message: Message, reply: Message, extra_hops: int) -> Message:
        """Pass a reply down, accumulating the hops it travelled."""
        payload = dict(reply.payload)
        travelled = payload.get("path_hops")
        base = int(travelled) if isinstance(travelled, (int, float)) else 0
        payload["path_hops"] = base + extra_hops
        return Message(
            kind="response",
            sender=self.name,
            request_id=message.request_id,
            payload=payload,
            body_bytes=reply.body_bytes,
        )

    async def _serve(self, message: Message) -> Message:
        doc_id = message.payload.get("doc_id")
        if not isinstance(doc_id, str):
            return make_error(
                self.name, message.request_id, "protocol",
                "request needs a doc_id",
            )
        probe = bool(message.payload.get("probe"))
        size = self._holdings.get(doc_id)
        if size is not None:
            return self._local_response(message, doc_id, size, probe=probe)
        if probe:
            # Probes answer only from local holdings — never recurse —
            # so sibling lookups cannot loop.
            self._counter("probe_rejects").inc()
            return make_error(
                self.name, message.request_id, "protocol",
                f"probe miss for {doc_id!r}",
            )

        for sibling in self._probe_targets(doc_id):
            reply = await self._probe(sibling, message)
            if reply is not None:
                return self._relay(message, reply, self.spec.sibling_distance)

        timestamp = message.payload.get("timestamp")
        timestamp = float(timestamp) if isinstance(timestamp, (int, float)) else 0.0
        if not self._breaker.allow():
            # Fast-fail: don't burn an upstream timeout per miss while
            # the breaker is open; remember the miss for recovery.
            self._queue_miss(doc_id, timestamp)
            self._counter("breaker_fast_fails").inc()
            return make_error(
                self.name, message.request_id, "transport",
                f"upstream {self.spec.upstream!r} unavailable (circuit open)",
            )

        self._counter("forwards").inc()
        forwarded = Message(
            kind="request",
            sender=self.name,
            request_id=message.request_id,
            payload=dict(message.payload),
            body_bytes=message.body_bytes,
        )
        attempts = 1 + self._forward_retries
        for attempt in range(attempts):
            try:
                reply = await self._endpoint.call(
                    self._upstream_for(doc_id, attempt),
                    forwarded,
                    timeout=self._upstream_timeout,
                )
            except TransportError as err:
                self._breaker.record_failure()
                if attempt + 1 < attempts and self._breaker.allow():
                    self._counter("forward_retries").inc()
                    delay = self._backoff.delay(attempt, self._rng)
                    if delay > 0:
                        await asyncio.sleep(delay)
                    continue
                self._queue_miss(doc_id, timestamp)
                return make_error(
                    self.name, message.request_id, "transport",
                    f"upstream {self.spec.upstream!r} unreachable: {err}",
                )
            except RuntimeProtocolError as err:
                # The upstream answered (connectivity is fine): the
                # request itself is bad, and retrying cannot fix it.
                self._breaker.record_success()
                return make_error(
                    self.name, message.request_id, "protocol", str(err)
                )
            self._breaker.record_success()
            self._schedule_recovery()
            return self._relay(message, reply, self.spec.upstream_distance)
        raise AssertionError("unreachable: forward loop always returns")
