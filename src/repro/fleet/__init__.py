"""``repro.fleet`` — hierarchical cooperative caching over the routing tree.

The paper's footnote-5 refinement, run live: instead of one origin plus
a single tier of region proxies, a *fleet* of caching nodes occupies
both the per-region and per-subnet levels of the clientele
:class:`~repro.topology.tree.RoutingTree`.  Each node's holdings are
planned from its **own subtree's demand**, the total storage budget is
divided across nodes by the storage-partition optimizer, and lookups
run a deterministic local → sibling probe → parent → origin protocol
on the existing :mod:`repro.runtime` transports.  Pluggable placement
policies cover the paper's log-driven and geographic baselines plus the
cooperative (Avrachenkov et al.) and power-of-d (Pourmiri et al.)
refinements from the related-work set.

Entry points: :meth:`repro.api.Session.fleet` (the front door), the
``repro fleet`` CLI verb, or :func:`~repro.fleet.service.execute_fleet`
/ :func:`~repro.fleet.service.execute_fleet_smoke` directly.
"""

from .loadgen import FleetLoadGenerator
from .node import FleetNode
from .plan import (
    FLEET_POLICIES,
    FleetNodeSpec,
    FleetPlan,
    build_fleet_plan,
    build_single_tier_plan,
)
from .service import (
    FleetReport,
    FleetSettings,
    execute_fleet,
    execute_fleet_smoke,
    fleet_smoke_settings,
)

__all__ = [
    "FLEET_POLICIES",
    "FleetLoadGenerator",
    "FleetNode",
    "FleetNodeSpec",
    "FleetPlan",
    "FleetReport",
    "FleetSettings",
    "build_fleet_plan",
    "build_single_tier_plan",
    "execute_fleet",
    "execute_fleet_smoke",
    "fleet_smoke_settings",
]
