"""Fleet planning: which tree nodes cache, what they hold, who they ask.

The paper's footnote-5 refinement distributes the dissemination budget
over a *hierarchy* of proxies, each driven by its own subtree's demand.
:func:`build_fleet_plan` turns a training trace and the clientele
:class:`~repro.topology.tree.RoutingTree` into a frozen
:class:`FleetPlan`: one :class:`FleetNodeSpec` per caching node with its
holdings, its upstream (the nearest caching ancestor, else the origin)
and its sibling group (same-parent caching nodes it may probe on a
miss).

The storage-partition optimizer
(:func:`~repro.dissemination.allocation.exponential_allocation`) divides
the total budget across regions in proportion to the marginal coverage
of each region's demand, so the comparison against a single-tier
deployment is at **equal total storage**.

Placement policies
------------------

``hierarchical``
    Region + subnet nodes; each region's share splits between the
    region node (the hot head of the whole region) and its subnets
    (each packing its own subtree's demand, deduplicated against the
    region node).  The footnote-5 default.
``cooperative``
    Same sites, but sibling subnets coordinate (Avrachenkov et al.'s
    geographic-constraint cooperative caching): every subnet replicates
    the region's hot head and the tail is partitioned round-robin
    across the sibling group, reachable by one sibling probe.
``power-of-d``
    Cooperative placement, but lookups probe ``d`` siblings chosen by a
    deterministic hash of (document, sibling) instead of the directory
    (Pourmiri et al.'s proximity-aware power-of-d choices).
``greedy``
    Sites from :func:`~repro.topology.placement.greedy_tree_placement`
    (demand-weighted hop savings), budgets split by the optimizer.
``geographic``
    Sites from :func:`~repro.topology.placement.geographic_placement`
    (Gwertzman–Seltzer regions only), budgets split by the optimizer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from ..dissemination.allocation import ServerModel, exponential_allocation
from ..errors import AllocationError, SimulationError
from ..topology.placement import geographic_placement, greedy_tree_placement
from ..topology.tree import RoutingTree
from ..trace.records import Trace

#: Placement policies :func:`build_fleet_plan` understands.
FLEET_POLICIES = (
    "hierarchical",
    "cooperative",
    "power-of-d",
    "greedy",
    "geographic",
)


@dataclass(frozen=True)
class FleetNodeSpec:
    """One caching node of the fleet.

    Attributes:
        name: Tree node id (doubles as the endpoint name).
        depth: Tree depth of the node.
        upstream: Endpoint misses are forwarded to — the nearest
            caching ancestor, or the tree root (origin).
        upstream_distance: Tree hops between this node and its
            upstream (cost of one forwarded byte).
        siblings: Same-parent caching nodes, in deterministic order;
            candidates for the sibling-probe step of a lookup.
        sibling_distance: Tree hops to a sibling (up to the shared
            parent and back down: 2 for a true sibling group).
        holdings: Disseminated ``(doc_id, size)`` pairs, sorted.
    """

    name: str
    depth: int
    upstream: str
    upstream_distance: int
    siblings: tuple[str, ...] = ()
    sibling_distance: int = 2
    holdings: tuple[tuple[str, int], ...] = ()

    @property
    def holdings_bytes(self) -> int:
        """Total disseminated bytes at this node."""
        return sum(size for _, size in self.holdings)


@dataclass(frozen=True)
class FleetPlan:
    """A frozen deployment: nodes, holdings, and lookup geometry.

    Attributes:
        root: The origin's tree node id.
        policy: Placement policy name (one of :data:`FLEET_POLICIES`).
        budget_bytes: Total storage budget the plan divided.
        nodes: Every caching node, sorted by (depth, name).
        probe_mode: ``"directory"`` probes only siblings the plan
            placed the document at; ``"hashed"`` probes ``d`` siblings
            ranked by a deterministic document hash.
    """

    root: str
    policy: str
    budget_bytes: float
    nodes: tuple[FleetNodeSpec, ...]
    probe_mode: str = "directory"

    def node_names(self) -> tuple[str, ...]:
        """All caching node ids, in plan order."""
        return tuple(spec.name for spec in self.nodes)

    def holdings_of(self, name: str) -> dict[str, int]:
        """One node's planned holdings as a ``doc_id → size`` dict."""
        for spec in self.nodes:
            if spec.name == name:
                return dict(spec.holdings)
        raise SimulationError(f"no fleet node named {name!r}")

    def total_bytes(self) -> int:
        """Disseminated bytes summed over every node (≤ the budget)."""
        return sum(spec.holdings_bytes for spec in self.nodes)

    def directory_for(self, name: str) -> dict[str, tuple[str, ...]]:
        """Which siblings of ``name`` hold each document (probe map)."""
        spec = next((s for s in self.nodes if s.name == name), None)
        if spec is None:
            raise SimulationError(f"no fleet node named {name!r}")
        by_name = {s.name: s for s in self.nodes}
        directory: dict[str, list[str]] = {}
        for sibling in spec.siblings:
            held = by_name.get(sibling)
            if held is None:
                continue
            for doc_id, _ in held.holdings:
                directory.setdefault(doc_id, []).append(sibling)
        return {doc: tuple(names) for doc, names in directory.items()}

    def without_holdings(self) -> "FleetPlan":
        """The same deployment with every cache empty (demand-only arm)."""
        return replace(
            self,
            nodes=tuple(replace(spec, holdings=()) for spec in self.nodes),
        )

    def summary(self) -> dict[str, object]:
        """Compact JSON-friendly description for reports and the CLI."""
        tiers: dict[str, int] = {}
        for spec in self.nodes:
            tier = spec.name.split("-")[0]
            tiers[tier] = tiers.get(tier, 0) + 1
        return {
            "policy": self.policy,
            "probe_mode": self.probe_mode,
            "nodes": len(self.nodes),
            "tiers": dict(sorted(tiers.items())),
            "budget_bytes": self.budget_bytes,
            "stored_bytes": self.total_bytes(),
        }


def _subtree_demand(
    tree: RoutingTree, train: Trace, sites: list[str]
) -> tuple[dict[str, dict[str, tuple[int, int, float]]], dict[str, float]]:
    """Per-site per-document demand, plus per-client byte totals.

    One pass over the training trace; each request is credited to every
    candidate site on its client's root path.  Per site and document the
    result records ``(distinct clients, requests, bytes)``.
    """
    site_set = set(sites)
    path_cache: dict[str, tuple[str, ...]] = {}
    tallies: dict[str, dict[str, list]] = {site: {} for site in sites}
    per_client: dict[str, float] = {}
    for request in train:
        client = request.client
        path = path_cache.get(client)
        if path is None:
            path = tuple(
                node
                for node in tree.path_from_root(client)
                if node in site_set
            )
            path_cache[client] = path
        per_client[client] = per_client.get(client, 0.0) + request.size
        for site in path:
            bucket = tallies[site]
            entry = bucket.get(request.doc_id)
            if entry is None:
                entry = [set(), 0, 0.0]
                bucket[request.doc_id] = entry
            entry[0].add(client)
            entry[1] += 1
            entry[2] += request.size
    per_site = {
        site: {
            doc: (len(entry[0]), entry[1], entry[2])
            for doc, entry in bucket.items()
        }
        for site, bucket in tallies.items()
    }
    return per_site, per_client


def _demand_bytes(bucket: dict[str, tuple[int, int, float]]) -> float:
    """Total demand bytes a site's subtree generated."""
    return sum(stat[2] for stat in bucket.values())


def _ranked_docs(
    demand: dict[str, tuple[int, int, float]], sizes: dict[str, int]
) -> list[tuple[str, int]]:
    """Documents by serveable misses, with catalog sizes.

    A caching node intercepts at most one miss per (client, document)
    pair — the client's own cache absorbs repeats — so the rank key is
    distinct subtree clients, then raw requests, then id for
    determinism.  Ranking by demand *bytes* instead would favour a
    handful of large documents that intercept almost nothing.
    """
    ranked = sorted(
        demand.items(), key=lambda item: (-item[1][0], -item[1][1], item[0])
    )
    return [(doc, sizes[doc]) for doc, _ in ranked if doc in sizes]


def _pack(
    ranked: list[tuple[str, int]], budget: float, exclude: frozenset[str]
) -> tuple[tuple[str, int], ...]:
    """Greedily pack ranked docs into a byte budget, skipping misfits."""
    picked: list[tuple[str, int]] = []
    used = 0
    for doc_id, size in ranked:
        if doc_id in exclude or size <= 0:
            continue
        if used + size > budget:
            continue
        picked.append((doc_id, size))
        used += size
    picked.sort()
    return tuple(picked)


def _split_budget(
    demand_bytes: dict[str, float],
    unique_bytes: dict[str, float],
    budget: float,
) -> dict[str, float]:
    """Divide a budget across sites with the storage-partition optimizer.

    Each site becomes a :class:`~repro.dissemination.allocation.ServerModel`
    whose coverage saturates around its unique working-set size — the
    marginal value of storage decays once a site can hold everything its
    subtree asks for.  Degenerate inputs (no demand anywhere, optimizer
    infeasibility) fall back to a demand-proportional split.
    """
    names = sorted(demand_bytes)
    total = sum(demand_bytes.values())
    if budget <= 0 or not names:
        return {name: 0.0 for name in names}
    if total <= 0:
        share = budget / len(names)
        return {name: share for name in names}
    servers = []
    for name in names:
        working_set = unique_bytes.get(name, 0.0)
        if demand_bytes[name] <= 0 or working_set <= 0:
            continue
        servers.append(
            ServerModel(
                name=name,
                rate=demand_bytes[name],
                lam=1.0 / working_set,
            )
        )
    if servers:
        try:
            result = exponential_allocation(servers, budget)
            shares = {name: 0.0 for name in names}
            shares.update(result.allocations)
            return shares
        except AllocationError:
            pass  # degenerate optimizer input: fall through
    return {
        name: budget * demand_bytes[name] / total for name in names
    }


def _group_siblings(
    tree: RoutingTree, sites: list[str]
) -> dict[str, tuple[str, ...]]:
    """Sibling groups: caching sites that share a tree parent."""
    by_parent: dict[str, list[str]] = {}
    for site in sites:
        parent = tree.parent(site)
        if parent is not None:
            by_parent.setdefault(parent, []).append(site)
    groups: dict[str, tuple[str, ...]] = {}
    for members in by_parent.values():
        members.sort()
        for site in members:
            groups[site] = tuple(m for m in members if m != site)
    return groups


def _nearest_site_ancestor(
    tree: RoutingTree, site: str, site_set: set[str]
) -> str:
    """The deepest caching ancestor of a site, else the root."""
    path = tree.path_from_root(site)
    for node in reversed(path[:-1]):
        if node in site_set:
            return node
    return tree.root


def _hashed_rank(doc_id: str, sibling: str) -> str:
    """Deterministic per-(doc, sibling) rank for power-of-d probing."""
    key = f"{doc_id}|{sibling}".encode("utf-8")
    return hashlib.sha1(key).hexdigest()


def _build_specs(
    tree: RoutingTree,
    sites: list[str],
    holdings: dict[str, tuple[tuple[str, int], ...]],
) -> tuple[FleetNodeSpec, ...]:
    """Assemble node specs (upstream, siblings, distances) for sites."""
    site_set = set(sites)
    siblings = _group_siblings(tree, sites)
    specs = []
    for site in sorted(sites, key=lambda s: (tree.depth(s), s)):
        upstream = _nearest_site_ancestor(tree, site, site_set)
        specs.append(
            FleetNodeSpec(
                name=site,
                depth=tree.depth(site),
                upstream=upstream,
                upstream_distance=tree.distance(site, upstream),
                siblings=siblings.get(site, ()),
                sibling_distance=2,
                holdings=holdings.get(site, ()),
            )
        )
    return tuple(specs)


def _hierarchy_sites(
    tree: RoutingTree, per_client: dict[str, float]
) -> tuple[list[str], dict[str, list[str]]]:
    """Region and subnet sites with demand, and subnets per region."""
    regions: list[str] = []
    subnets_of: dict[str, list[str]] = {}
    demand_clients = {c for c, d in per_client.items() if d > 0}
    for node in sorted(tree.internal_nodes()):
        if not (node.startswith("region-") or node.startswith("subnet-")):
            continue
        if not (tree.subtree_leaves(node) & demand_clients):
            continue
        if node.startswith("region-"):
            regions.append(node)
        else:
            parent = tree.parent(node)
            subnets_of.setdefault(parent or tree.root, []).append(node)
    sites = list(regions)
    for region in regions:
        sites.extend(sorted(subnets_of.get(region, [])))
    return sites, subnets_of


def _hierarchical_holdings(
    tree: RoutingTree,
    per_site: dict[str, dict[str, float]],
    sizes: dict[str, int],
    regions: list[str],
    subnets_of: dict[str, list[str]],
    budget_bytes: float,
    region_fraction: float,
    policy: str,
) -> dict[str, tuple[tuple[str, int], ...]]:
    """Holdings for the hierarchical / cooperative placement families."""
    region_demand = {
        region: _demand_bytes(per_site.get(region, {})) for region in regions
    }
    region_unique = {
        region: float(
            sum(sizes[d] for d in per_site.get(region, {}) if d in sizes)
        )
        for region in regions
    }
    region_budget = _split_budget(region_demand, region_unique, budget_bytes)

    holdings: dict[str, tuple[tuple[str, int], ...]] = {}
    for region in regions:
        ranked = _ranked_docs(per_site.get(region, {}), sizes)
        head_budget = region_fraction * region_budget.get(region, 0.0)
        holdings[region] = _pack(ranked, head_budget, frozenset())
        region_docs = frozenset(doc for doc, _ in holdings[region])

        subnets = sorted(subnets_of.get(region, []))
        if not subnets:
            continue
        remainder = region_budget.get(region, 0.0) - sum(
            size for _, size in holdings[region]
        )
        subnet_demand = {
            subnet: _demand_bytes(per_site.get(subnet, {}))
            for subnet in subnets
        }
        demand_total = sum(subnet_demand.values())
        budgets = {
            subnet: (
                remainder * subnet_demand[subnet] / demand_total
                if demand_total > 0
                else remainder / max(1, len(subnets))
            )
            for subnet in subnets
        }
        if policy == "hierarchical":
            for subnet in subnets:
                ranked_subnet = _ranked_docs(per_site.get(subnet, {}), sizes)
                holdings[subnet] = _pack(
                    ranked_subnet, budgets[subnet], region_docs
                )
        else:  # cooperative / power-of-d: coordinate across siblings
            tail = [
                (doc, size)
                for doc, size in _ranked_docs(per_site.get(region, {}), sizes)
                if doc not in region_docs
            ]
            picked: dict[str, list[tuple[str, int]]] = {
                subnet: [] for subnet in subnets
            }
            used = {subnet: 0 for subnet in subnets}
            # Hot head: replicate at every subnet (half the budget).
            replicated: dict[str, frozenset[str]] = {}
            for subnet in subnets:
                head = _pack(tail, 0.5 * budgets[subnet], frozenset())
                picked[subnet] = list(head)
                used[subnet] = sum(size for _, size in head)
                replicated[subnet] = frozenset(doc for doc, _ in head)
            # Tail: partition round-robin across the sibling group.
            for index, (doc, size) in enumerate(tail):
                subnet = subnets[index % max(1, len(subnets))]
                if doc in replicated[subnet]:
                    continue
                if used[subnet] + size > budgets[subnet]:
                    continue
                picked[subnet].append((doc, size))
                used[subnet] += size
            for subnet in subnets:
                entries = sorted(set(picked[subnet]))
                holdings[subnet] = tuple(entries)
    return holdings


def _flat_holdings(
    per_site: dict[str, dict[str, float]],
    sizes: dict[str, int],
    tree: RoutingTree,
    sites: list[str],
    budget_bytes: float,
) -> dict[str, tuple[tuple[str, int], ...]]:
    """Holdings for the flat (greedy / geographic) site families."""
    demand = {site: _demand_bytes(per_site.get(site, {})) for site in sites}
    unique = {
        site: float(
            sum(sizes[d] for d in per_site.get(site, {}) if d in sizes)
        )
        for site in sites
    }
    budgets = _split_budget(demand, unique, budget_bytes)
    site_set = set(sites)
    holdings: dict[str, tuple[tuple[str, int], ...]] = {}
    # Dedupe against the nearest caching ancestor, shallowest first.
    for site in sorted(sites, key=lambda s: (tree.depth(s), s)):
        exclude: set[str] = set()
        ancestor = _nearest_site_ancestor(tree, site, site_set)
        if ancestor in holdings:
            exclude = {doc for doc, _ in holdings[ancestor]}
        ranked = _ranked_docs(per_site.get(site, {}), sizes)
        holdings[site] = _pack(
            ranked, budgets.get(site, 0.0), frozenset(exclude)
        )
    return holdings


def build_fleet_plan(
    tree: RoutingTree,
    train: Trace,
    *,
    budget_bytes: float,
    policy: str = "hierarchical",
    region_fraction: float = 0.5,
) -> FleetPlan:
    """Plan a proxy fleet from a training trace at a total storage budget.

    Args:
        tree: The clientele routing tree.
        train: Training (history) trace driving demand estimates.
        budget_bytes: **Total** storage across every fleet node.
        policy: One of :data:`FLEET_POLICIES`.
        region_fraction: Fraction of each region's share kept at the
            region node (the rest goes to its subnets).

    Raises:
        SimulationError: On an unknown policy or a fractional knob out
            of range.
    """
    if policy not in FLEET_POLICIES:
        raise SimulationError(
            f"unknown fleet policy {policy!r}; choose from {FLEET_POLICIES}"
        )
    if not 0.0 <= region_fraction <= 1.0:
        raise SimulationError("region_fraction must be within [0, 1]")
    sizes = {doc_id: doc.size for doc_id, doc in train.documents.items()}

    if policy in ("hierarchical", "cooperative", "power-of-d"):
        probe_sites = sorted(
            node
            for node in tree.internal_nodes()
            if node.startswith("region-") or node.startswith("subnet-")
        )
        per_site, per_client = _subtree_demand(tree, train, probe_sites)
        sites, subnets_of = _hierarchy_sites(tree, per_client)
        regions = [s for s in sites if s.startswith("region-")]
        holdings = _hierarchical_holdings(
            tree,
            per_site,
            sizes,
            regions,
            subnets_of,
            budget_bytes,
            region_fraction,
            policy,
        )
        probe_mode = "hashed" if policy == "power-of-d" else "directory"
        return FleetPlan(
            root=tree.root,
            policy=policy,
            budget_bytes=budget_bytes,
            nodes=_build_specs(tree, sites, holdings),
            probe_mode=probe_mode,
        )

    # Flat families: sites come from the existing placement functions.
    internal = sorted(tree.internal_nodes())
    per_client_demand: dict[str, float] = {}
    for request in train:
        per_client_demand[request.client] = (
            per_client_demand.get(request.client, 0.0) + request.size
        )
    n_sites = sum(
        1
        for node in internal
        if node.startswith("region-") or node.startswith("subnet-")
    )
    if policy == "greedy":
        sites = greedy_tree_placement(tree, per_client_demand, n_sites)
    else:
        sites = geographic_placement(tree, per_client_demand, n_sites)
    per_site, _ = _subtree_demand(tree, train, sites)
    holdings = _flat_holdings(per_site, sizes, tree, sites, budget_bytes)
    return FleetPlan(
        root=tree.root,
        policy=policy,
        budget_bytes=budget_bytes,
        nodes=_build_specs(tree, sites, holdings),
        probe_mode="directory",
    )


def build_single_tier_plan(
    tree: RoutingTree,
    train: Trace,
    *,
    budget_bytes: float,
    regions: list[str],
    holdings: dict[str, int],
) -> FleetPlan:
    """The single-tier reference deployment at equal total storage.

    Every region proxy replicates the same origin-computed dissemination
    plan — the pre-fleet runtime's arrangement — with each replica
    holding a ``1/len(regions)`` share of the budget so total storage
    matches the fleet plan it is compared against.
    """
    entries = tuple(sorted((doc, int(size)) for doc, size in holdings.items()))
    per_region = {region: entries for region in regions}
    return FleetPlan(
        root=tree.root,
        policy="single-tier",
        budget_bytes=budget_bytes,
        nodes=_build_specs(tree, list(regions), per_region),
        probe_mode="directory",
    )
