"""Wire protocol shared by every runtime transport.

One message shape serves both transports: the in-memory network passes
:class:`Message` objects by reference, the TCP transport serialises them
as JSON behind a 4-byte big-endian length prefix.  Keeping the schema
tiny (a kind tag, a sender, a correlation id, a payload dict) means the
protocol layer — origin, proxies, load generator — never knows which
transport carried a message.

Message kinds
-------------

``request``      client → proxy/origin: fetch one document.
``response``     the demand document plus any speculated rider documents.
``push``         dissemination daemon → proxy: replace/extend holdings.
``ack``          proxy → daemon: push applied.
``stats``        ops → origin: report counters.
``stats-reply``  origin → ops: the counter snapshot.
``error``        any node → requester: the request failed; the payload's
                 ``error_kind`` says whether the *protocol* was violated
                 or the *transport* failed, so callers can re-raise the
                 right exception class.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..errors import RuntimeProtocolError

#: Hard cap on one frame's encoded size (TCP transport).
MAX_FRAME_BYTES = 8 * 1024 * 1024
#: Length-prefix width in bytes (big-endian unsigned).
HEADER_BYTES = 4

#: Every message kind the protocol defines.
KINDS = frozenset(
    {"request", "response", "push", "ack", "stats", "stats-reply", "error"}
)
#: Kinds that answer an earlier message and carry its ``request_id``.
REPLY_KINDS = frozenset({"response", "ack", "stats-reply", "error"})


@dataclass(frozen=True)
class Message:
    """One protocol message.

    Attributes:
        kind: One of :data:`KINDS`.
        sender: Endpoint name of the node that produced the message.
        request_id: Correlation id; replies echo their request's id.
        payload: Kind-specific fields (JSON-serialisable).
        body_bytes: Nominal body size used by the simulated network's
            latency model.  The TCP transport measures actual encoded
            bytes instead; for in-memory delivery this carries the
            *document* bytes a response represents.
    """

    kind: str
    sender: str
    request_id: str = ""
    payload: dict[str, Any] = field(default_factory=dict)
    body_bytes: int = 0

    def encode(self) -> bytes:
        """Serialise to canonical JSON bytes (sorted keys → stable)."""
        return json.dumps(
            {
                "kind": self.kind,
                "sender": self.sender,
                "request_id": self.request_id,
                "payload": self.payload,
                "body_bytes": self.body_bytes,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def decode(cls, raw: bytes) -> "Message":
        """Parse JSON bytes back into a message.

        Raises:
            RuntimeProtocolError: On malformed JSON, a non-object body,
                or an unknown message kind.
        """
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise RuntimeProtocolError(f"undecodable frame: {err}") from err
        if not isinstance(data, dict):
            raise RuntimeProtocolError("frame must encode a JSON object")
        kind = data.get("kind")
        if kind not in KINDS:
            raise RuntimeProtocolError(f"unknown message kind {kind!r}")
        payload = data.get("payload", {})
        if not isinstance(payload, dict):
            raise RuntimeProtocolError("message payload must be an object")
        return cls(
            kind=kind,
            sender=str(data.get("sender", "")),
            request_id=str(data.get("request_id", "")),
            payload=payload,
            body_bytes=int(data.get("body_bytes", 0)),
        )


def frame(message: Message) -> bytes:
    """Length-prefix a message for stream transports.

    Raises:
        RuntimeProtocolError: If the encoded body exceeds
            :data:`MAX_FRAME_BYTES`.
    """
    body = message.encode()
    if len(body) > MAX_FRAME_BYTES:
        raise RuntimeProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return len(body).to_bytes(HEADER_BYTES, "big") + body


def make_request(
    sender: str,
    request_id: str,
    doc_id: str,
    timestamp: float,
    *,
    digest: tuple[str, ...] = (),
    demand: str = "",
) -> Message:
    """A client's demand request, optionally piggybacking its cache digest.

    ``demand`` is the *stable* demand key: retries of one logical
    request carry fresh ``request_id`` correlation ids but the same
    demand key, which lets servers classify re-served requests as
    duplicate service instead of fresh load (at-least-once accounting).
    """
    payload: dict[str, Any] = {
        "doc_id": doc_id,
        "client": sender,
        "timestamp": timestamp,
        "digest": list(digest),
    }
    if demand:
        payload["req"] = demand
    return Message(
        kind="request",
        sender=sender,
        request_id=request_id,
        payload=payload,
        body_bytes=64 + 8 * len(digest),
    )


def make_response(
    sender: str,
    request_id: str,
    doc_id: str,
    size: int,
    served_by: str,
    *,
    speculated: list[tuple[str, int]] | None = None,
) -> Message:
    """The demand document plus speculated (doc_id, size) riders."""
    riders = speculated or []
    rider_bytes = 0
    for _, rider_size in riders:
        rider_bytes += rider_size
    return Message(
        kind="response",
        sender=sender,
        request_id=request_id,
        payload={
            "doc_id": doc_id,
            "size": size,
            "served_by": served_by,
            "speculated": [list(pair) for pair in riders],
        },
        body_bytes=size + rider_bytes,
    )


def make_error(
    sender: str, request_id: str, error_kind: str, reason: str
) -> Message:
    """A failure reply; ``error_kind`` is ``"protocol"`` or ``"transport"``."""
    return Message(
        kind="error",
        sender=sender,
        request_id=request_id,
        payload={"error_kind": error_kind, "reason": reason},
        body_bytes=64,
    )


def raise_if_error(message: Message) -> Message:
    """Re-raise an ``error`` reply as the exception class it encodes.

    Returns the message unchanged when it is not an error, so callers
    can write ``reply = raise_if_error(await ...)``.

    Raises:
        TransportError: When the peer reported a transport failure.
        RuntimeProtocolError: When the peer reported a protocol
            violation.
    """
    if message.kind != "error":
        return message
    reason = str(message.payload.get("reason", "unspecified error"))
    if message.payload.get("error_kind") == "transport":
        from ..errors import TransportError

        raise TransportError(f"{message.sender}: {reason}")
    raise RuntimeProtocolError(f"{message.sender}: {reason}")
