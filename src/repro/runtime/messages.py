"""Wire protocol shared by every runtime transport.

One message shape serves both transports: the in-memory network
round-trips :class:`Message` objects through the configured codec, the
TCP transport serialises them behind a 4-byte big-endian length prefix.
Keeping the schema tiny (a kind tag, a sender, a correlation id, a
payload dict) means the protocol layer — origin, proxies, load
generator — never knows which transport carried a message.

Two codecs serialise that schema:

* :data:`BINARY_CODEC` — the default.  A ``struct``-packed header
  (magic, version, kind, payload format, field lengths, body bytes)
  followed by a packed payload.  The hot ``request`` and ``response``
  payloads use fixed packed layouts; everything else falls back to a
  tagged value encoding that covers exactly the JSON value domain.
  Decoding reads straight out of a ``memoryview`` — no intermediate
  copies, no text parse.
* :data:`JSON_CODEC` — canonical JSON, kept as the debug/interop mode
  (``repro serve --codec json``).  ``Message.encode`` is this form.

Both codecs accept the same payload value domain (``None``, ``bool``,
``int``, ``float``, ``str``, ``list``, string-keyed ``dict``) and
:meth:`Message.decode` sniffs the codec from the first byte (binary
frames start with ``0xAB``, which no JSON document can), so every layer
above the codec is codec-agnostic and roundtrip equivalence is enforced
here, once.

Message kinds
-------------

``request``      client → proxy/origin: fetch one document.
``response``     the demand document plus any speculated rider documents.
``push``         dissemination daemon → proxy: replace/extend holdings.
``ack``          proxy → daemon: push applied.
``stats``        ops → origin: report counters.
``stats-reply``  origin → ops: the counter snapshot.
``error``        any node → requester: the request failed; the payload's
                 ``error_kind`` says whether the *protocol* was violated
                 or the *transport* failed, so callers can re-raise the
                 right exception class.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Union

from ..errors import RuntimeProtocolError

#: Default cap on one frame's encoded size (TCP transport).  Transports
#: accept a per-connection override; see ``read_frame``.
MAX_FRAME_BYTES = 8 * 1024 * 1024
#: Length-prefix width in bytes (big-endian unsigned).
HEADER_BYTES = 4

#: Every message kind the protocol defines.
KINDS = frozenset(
    {"request", "response", "push", "ack", "stats", "stats-reply", "error"}
)
#: Kinds that answer an earlier message and carry its ``request_id``.
REPLY_KINDS = frozenset({"response", "ack", "stats-reply", "error"})


@dataclass(frozen=True)
class Message:
    """One protocol message.

    Attributes:
        kind: One of :data:`KINDS`.
        sender: Endpoint name of the node that produced the message.
        request_id: Correlation id; replies echo their request's id.
        payload: Kind-specific fields (JSON-serialisable).
        body_bytes: Nominal body size used by the simulated network's
            latency model.  The TCP transport measures actual encoded
            bytes instead; for in-memory delivery this carries the
            *document* bytes a response represents.
    """

    kind: str
    sender: str
    request_id: str = ""
    payload: dict[str, Any] = field(default_factory=dict)
    body_bytes: int = 0

    def encode(self) -> bytes:
        """Serialise to canonical JSON bytes (sorted keys → stable)."""
        return json.dumps(
            {
                "kind": self.kind,
                "sender": self.sender,
                "request_id": self.request_id,
                "payload": self.payload,
                "body_bytes": self.body_bytes,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def decode(cls, raw: bytes) -> "Message":
        """Parse encoded bytes back into a message, sniffing the codec.

        Binary frames are recognised by their ``0xAB`` magic byte —
        unreachable by JSON, whose first byte is always ASCII — so one
        decoder serves both wire formats and peers never have to agree
        on a codec out of band.

        Raises:
            RuntimeProtocolError: On malformed input, a non-object
                body, or an unknown message kind.
        """
        if raw[:1] == _MAGIC_BYTE:
            return BINARY_CODEC.decode(raw)
        return JSON_CODEC.decode(raw)


class JsonCodec:
    """Canonical-JSON wire codec: the debug/interop format.

    Frames are ``json.dumps(..., sort_keys=True)`` of the message
    fields — human-readable on the wire and accepted by any peer,
    at the cost of text parsing on every decode.
    """

    name = "json"

    def encode(self, message: Message) -> bytes:
        """Serialise ``message`` to canonical JSON bytes."""
        return message.encode()

    def decode(self, raw: bytes) -> Message:
        """Parse JSON bytes back into a message.

        Raises:
            RuntimeProtocolError: On malformed JSON, a non-object body,
                or an unknown message kind.
        """
        try:
            data = json.loads(bytes(raw).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise RuntimeProtocolError(f"undecodable frame: {err}") from err
        if not isinstance(data, dict):
            raise RuntimeProtocolError("frame must encode a JSON object")
        kind = data.get("kind")
        if kind not in KINDS:
            raise RuntimeProtocolError(f"unknown message kind {kind!r}")
        payload = data.get("payload", {})
        if not isinstance(payload, dict):
            raise RuntimeProtocolError("message payload must be an object")
        return Message(
            kind=kind,
            sender=str(data.get("sender", "")),
            request_id=str(data.get("request_id", "")),
            payload=payload,
            body_bytes=int(data.get("body_bytes", 0)),
        )


# --------------------------------------------------------------------------
# Binary codec
#
# Frame layout (all integers big-endian):
#
#   magic      2 bytes   0xAB 0x52 — 0xAB is not a valid leading UTF-8/JSON
#                        byte, so codec sniffing is unambiguous
#   version    1 byte    wire format version (currently 1)
#   kind       1 byte    index into _KIND_CODES
#   format     1 byte    payload encoding: 0 generic tagged, 1 packed
#   sender     u16 len   + UTF-8 bytes
#   request_id u16 len   + UTF-8 bytes
#   body_bytes i64
#   payload    format-dependent (see _pack_request/_pack_response and
#              the tagged-value encoding in _write_value)

_MAGIC = b"\xabR"
_MAGIC_BYTE = b"\xab"
_WIRE_VERSION = 1
_FORMAT_GENERIC = 0
_FORMAT_PACKED = 1

#: Stable kind numbering for the one-byte kind field.
_KIND_CODES: tuple[str, ...] = tuple(sorted(KINDS))
_KIND_INDEX = {kind: index for index, kind in enumerate(_KIND_CODES)}

_HEADER = struct.Struct("!2sBBBHHq")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_REQ_HEAD = struct.Struct("!dHHHII")
_RESP_HEAD = struct.Struct("!qHHIIB")

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def _pack_request(payload: dict[str, Any]) -> bytes | None:
    """Pack a canonical ``make_request`` payload, or ``None`` if the
    payload deviates from that shape (extra keys, unexpected types,
    oversize fields) and must take the generic encoding instead."""
    try:
        doc_id = payload["doc_id"]
        client = payload["client"]
        timestamp = payload["timestamp"]
        digest = payload["digest"]
    except (KeyError, TypeError):
        return None
    demand = payload.get("req")
    if len(payload) != 4 + (demand is not None):
        return None
    if type(doc_id) is not str or type(client) is not str:
        return None
    if type(timestamp) is not float or type(digest) is not list:
        return None
    if demand is None:
        demand_raw = b""
    elif type(demand) is str and demand:
        demand_raw = demand.encode("utf-8")
    else:
        return None
    doc_raw = doc_id.encode("utf-8")
    client_raw = client.encode("utf-8")
    if max(len(doc_raw), len(client_raw), len(demand_raw)) > 0xFFFF:
        return None
    # The digest travels as one UTF-8 blob plus a codepoint-length
    # array, so both encode and decode are single C-level passes.
    try:
        lengths = [len(entry) for entry in digest]
        blob = "".join(digest).encode("utf-8")
    except TypeError:
        return None
    if len(digest) > 0xFFFFFFFF or len(blob) > 0xFFFFFFFF:
        return None
    if lengths and max(lengths) > 0xFFFF:
        return None
    return b"".join(
        (
            _REQ_HEAD.pack(
                timestamp,
                len(doc_raw),
                len(client_raw),
                len(demand_raw),
                len(digest),
                len(blob),
            ),
            doc_raw,
            client_raw,
            demand_raw,
            struct.pack(f"!{len(digest)}H", *lengths),
            blob,
        )
    )


def _unpack_request(view: memoryview, offset: int) -> tuple[dict[str, Any], int]:
    """Inverse of :func:`_pack_request`; returns payload + next offset."""
    timestamp, doc_len, client_len, demand_len, count, blob_len = (
        _REQ_HEAD.unpack_from(view, offset)
    )
    offset += _REQ_HEAD.size
    doc_id = str(view[offset : offset + doc_len], "utf-8")
    offset += doc_len
    client = str(view[offset : offset + client_len], "utf-8")
    offset += client_len
    demand = str(view[offset : offset + demand_len], "utf-8")
    offset += demand_len
    lengths = struct.unpack_from(f"!{count}H", view, offset)
    offset += 2 * count
    joined = str(view[offset : offset + blob_len], "utf-8")
    offset += blob_len
    digest: list[str] = []
    append = digest.append
    position = 0
    for length in lengths:
        append(joined[position : position + length])
        position += length
    if position != len(joined):
        raise RuntimeProtocolError("request digest blob length mismatch")
    payload: dict[str, Any] = {
        "doc_id": doc_id,
        "client": client,
        "timestamp": timestamp,
        "digest": digest,
    }
    if demand_len:
        payload["req"] = demand
    return payload, offset


def _pack_response(payload: dict[str, Any]) -> bytes | None:
    """Pack a canonical ``make_response`` payload (optionally stamped
    with the TCP server's ``service_seconds``), or ``None`` when it
    must take the generic encoding."""
    try:
        doc_id = payload["doc_id"]
        size = payload["size"]
        served_by = payload["served_by"]
        speculated = payload["speculated"]
    except (KeyError, TypeError):
        return None
    service = payload.get("service_seconds")
    if len(payload) != 4 + (service is not None):
        return None
    if type(doc_id) is not str or type(served_by) is not str:
        return None
    if type(size) is not int or not _I64_MIN <= size <= _I64_MAX:
        return None
    if type(speculated) is not list:
        return None
    if service is not None and type(service) is not float:
        return None
    doc_raw = doc_id.encode("utf-8")
    served_raw = served_by.encode("utf-8")
    if max(len(doc_raw), len(served_raw)) > 0xFFFF:
        return None
    # Rider ids travel as one UTF-8 blob plus codepoint-length and
    # size arrays — single C-level packs, mirroring the digest layout.
    rider_ids: list[str] = []
    rider_sizes: list[int] = []
    for pair in speculated:
        if type(pair) is not list or len(pair) != 2:
            return None
        rider_id, rider_size = pair
        if type(rider_id) is not str or type(rider_size) is not int:
            return None
        if not _I64_MIN <= rider_size <= _I64_MAX or len(rider_id) > 0xFFFF:
            return None
        rider_ids.append(rider_id)
        rider_sizes.append(rider_size)
    blob = "".join(rider_ids).encode("utf-8")
    count = len(rider_ids)
    if count > 0xFFFFFFFF or len(blob) > 0xFFFFFFFF:
        return None
    chunks = [
        _RESP_HEAD.pack(
            size,
            len(doc_raw),
            len(served_raw),
            count,
            len(blob),
            service is not None,
        ),
    ]
    if service is not None:
        chunks.append(_F64.pack(service))
    chunks.append(doc_raw)
    chunks.append(served_raw)
    chunks.append(struct.pack(f"!{count}H", *map(len, rider_ids)))
    chunks.append(struct.pack(f"!{count}q", *rider_sizes))
    chunks.append(blob)
    return b"".join(chunks)


def _unpack_response(view: memoryview, offset: int) -> tuple[dict[str, Any], int]:
    """Inverse of :func:`_pack_response`; returns payload + next offset."""
    size, doc_len, served_len, count, blob_len, has_service = (
        _RESP_HEAD.unpack_from(view, offset)
    )
    offset += _RESP_HEAD.size
    service = None
    if has_service:
        (service,) = _F64.unpack_from(view, offset)
        offset += 8
    doc_id = str(view[offset : offset + doc_len], "utf-8")
    offset += doc_len
    served_by = str(view[offset : offset + served_len], "utf-8")
    offset += served_len
    lengths = struct.unpack_from(f"!{count}H", view, offset)
    offset += 2 * count
    sizes = struct.unpack_from(f"!{count}q", view, offset)
    offset += 8 * count
    joined = str(view[offset : offset + blob_len], "utf-8")
    offset += blob_len
    speculated: list[list[Any]] = []
    append = speculated.append
    position = 0
    for length, rider_size in zip(lengths, sizes):
        append([joined[position : position + length], rider_size])
        position += length
    if position != len(joined):
        raise RuntimeProtocolError("response rider blob length mismatch")
    payload: dict[str, Any] = {
        "doc_id": doc_id,
        "size": size,
        "served_by": served_by,
        "speculated": speculated,
    }
    if has_service:
        payload["service_seconds"] = service
    return payload, offset


def _write_value(chunks: list[bytes], value: Any) -> None:
    """Append the tagged encoding of one JSON-domain value.

    The tag set mirrors the JSON value domain exactly — tuples encode
    like lists (JSON coerces them the same way) and dict keys must be
    strings — so the two codecs stay roundtrip-equivalent.

    Raises:
        RuntimeProtocolError: On a value outside the JSON domain.
    """
    kind = type(value)
    if kind is str:
        raw = value.encode("utf-8")
        chunks.append(b"s" + _U32.pack(len(raw)))
        chunks.append(raw)
    elif kind is int:
        if _I64_MIN <= value <= _I64_MAX:
            chunks.append(b"i" + _I64.pack(value))
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            chunks.append(b"I" + _U32.pack(len(raw)))
            chunks.append(raw)
    elif kind is float:
        chunks.append(b"d" + _F64.pack(value))
    elif kind is bool:
        chunks.append(b"T" if value else b"F")
    elif value is None:
        chunks.append(b"N")
    elif kind is list or kind is tuple:
        chunks.append(b"l" + _U32.pack(len(value)))
        for item in value:
            _write_value(chunks, item)
    elif kind is dict:
        chunks.append(b"m" + _U32.pack(len(value)))
        for key in sorted(value):
            if type(key) is not str:
                raise RuntimeProtocolError(
                    f"binary codec requires string payload keys, got {key!r}"
                )
            raw = key.encode("utf-8")
            chunks.append(_U32.pack(len(raw)))
            chunks.append(raw)
            _write_value(chunks, value[key])
    else:
        raise RuntimeProtocolError(
            f"payload value of type {kind.__name__} is not wire-encodable"
        )


def _read_value(view: memoryview, offset: int) -> tuple[Any, int]:
    """Inverse of :func:`_write_value`; returns value + next offset.

    Raises:
        RuntimeProtocolError: On an unknown tag byte.
    """
    tag = view[offset]
    offset += 1
    if tag == 0x73:  # "s"
        (length,) = _U32.unpack_from(view, offset)
        offset += 4
        return str(view[offset : offset + length], "utf-8"), offset + length
    if tag == 0x69:  # "i"
        (value,) = _I64.unpack_from(view, offset)
        return value, offset + 8
    if tag == 0x49:  # "I"
        (length,) = _U32.unpack_from(view, offset)
        offset += 4
        big = int.from_bytes(view[offset : offset + length], "big", signed=True)
        return big, offset + length
    if tag == 0x64:  # "d"
        (value,) = _F64.unpack_from(view, offset)
        return value, offset + 8
    if tag == 0x54:  # "T"
        return True, offset
    if tag == 0x46:  # "F"
        return False, offset
    if tag == 0x4E:  # "N"
        return None, offset
    if tag == 0x6C:  # "l"
        (count,) = _U32.unpack_from(view, offset)
        offset += 4
        items: list[Any] = []
        for _ in range(count):
            item, offset = _read_value(view, offset)
            items.append(item)
        return items, offset
    if tag == 0x6D:  # "m"
        (count,) = _U32.unpack_from(view, offset)
        offset += 4
        mapping: dict[str, Any] = {}
        for _ in range(count):
            (length,) = _U32.unpack_from(view, offset)
            offset += 4
            key = str(view[offset : offset + length], "utf-8")
            offset += length
            mapping[key], offset = _read_value(view, offset)
        return mapping, offset
    raise RuntimeProtocolError(f"unknown binary value tag {tag:#04x}")


class BinaryCodec:
    """Struct-packed wire codec: the default transport format.

    The header is one ``struct`` pack; the hot ``request``/``response``
    payload shapes get fixed packed layouts and everything else takes a
    tagged value encoding covering exactly the JSON value domain, so
    ``binary → decode`` and ``json → decode`` agree on every message.
    Decoding is zero-copy: fields are unpacked straight out of a
    ``memoryview`` of the frame.
    """

    name = "binary"

    def encode(self, message: Message) -> bytes:
        """Serialise ``message`` to binary frame bytes.

        Raises:
            RuntimeProtocolError: On an unknown kind, an out-of-range
                header field, or a payload value outside the wire
                value domain.
        """
        kind_code = _KIND_INDEX.get(message.kind)
        if kind_code is None:
            raise RuntimeProtocolError(f"unknown message kind {message.kind!r}")
        payload = message.payload
        packed: bytes | None = None
        if message.kind == "request":
            packed = _pack_request(payload)
        elif message.kind == "response":
            packed = _pack_response(payload)
        if packed is None:
            if type(payload) is not dict:
                raise RuntimeProtocolError("message payload must be an object")
            chunks: list[bytes] = []
            _write_value(chunks, payload)
            payload_format = _FORMAT_GENERIC
            body = b"".join(chunks)
        else:
            payload_format = _FORMAT_PACKED
            body = packed
        sender_raw = message.sender.encode("utf-8")
        request_raw = message.request_id.encode("utf-8")
        try:
            header = _HEADER.pack(
                _MAGIC,
                _WIRE_VERSION,
                kind_code,
                payload_format,
                len(sender_raw),
                len(request_raw),
                message.body_bytes,
            )
        except struct.error as err:
            raise RuntimeProtocolError(f"unencodable message header: {err}") from err
        return b"".join((header, sender_raw, request_raw, body))

    def decode(self, raw: bytes) -> Message:
        """Parse binary frame bytes back into a message.

        Raises:
            RuntimeProtocolError: On a bad magic/version, a truncated
                or overlong frame, or a malformed payload.
        """
        view = memoryview(raw)
        try:
            (
                magic,
                version,
                kind_code,
                payload_format,
                sender_len,
                request_len,
                body_bytes,
            ) = _HEADER.unpack_from(view, 0)
            if magic != _MAGIC:
                raise RuntimeProtocolError("bad binary frame magic")
            if version != _WIRE_VERSION:
                raise RuntimeProtocolError(
                    f"unsupported wire version {version}"
                )
            if kind_code >= len(_KIND_CODES):
                raise RuntimeProtocolError(f"unknown kind code {kind_code}")
            offset = _HEADER.size
            sender = str(view[offset : offset + sender_len], "utf-8")
            offset += sender_len
            request_id = str(view[offset : offset + request_len], "utf-8")
            offset += request_len
            kind = _KIND_CODES[kind_code]
            payload: Any
            if payload_format == _FORMAT_PACKED and kind == "request":
                payload, offset = _unpack_request(view, offset)
            elif payload_format == _FORMAT_PACKED and kind == "response":
                payload, offset = _unpack_response(view, offset)
            elif payload_format == _FORMAT_GENERIC:
                payload, offset = _read_value(view, offset)
            else:
                raise RuntimeProtocolError(
                    f"payload format {payload_format} is invalid for kind {kind!r}"
                )
        except (struct.error, UnicodeDecodeError, IndexError) as err:
            raise RuntimeProtocolError(f"undecodable binary frame: {err}") from err
        if offset != len(view):
            raise RuntimeProtocolError(
                f"binary frame has {len(view) - offset} trailing bytes"
            )
        if not isinstance(payload, dict):
            raise RuntimeProtocolError("message payload must be an object")
        return Message(
            kind=kind,
            sender=sender,
            request_id=request_id,
            payload=payload,
            body_bytes=body_bytes,
        )


#: Union of the concrete codec types (both are duck-compatible).
Codec = Union[JsonCodec, BinaryCodec]

#: Singleton codec instances (codecs are stateless).
JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()

#: Codec registry keyed by wire-format name.
CODECS: dict[str, Codec] = {"json": JSON_CODEC, "binary": BINARY_CODEC}


def resolve_codec(codec: str | Codec | None) -> Codec:
    """Map a codec name (or codec instance, or ``None``) to a codec.

    ``None`` resolves to the default :data:`BINARY_CODEC`.

    Raises:
        RuntimeProtocolError: On an unknown codec name.
    """
    if codec is None:
        return BINARY_CODEC
    if isinstance(codec, str):
        try:
            return CODECS[codec]
        except KeyError:
            raise RuntimeProtocolError(
                f"unknown codec {codec!r}; expected one of {sorted(CODECS)}"
            ) from None
    return codec


def sniff_codec(raw: bytes) -> Codec:
    """Identify which codec produced ``raw`` from its first byte."""
    return BINARY_CODEC if raw[:1] == _MAGIC_BYTE else JSON_CODEC


def frame(
    message: Message,
    codec: str | Codec | None = None,
    *,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> bytes:
    """Length-prefix a message for stream transports.

    Raises:
        RuntimeProtocolError: If the encoded body exceeds
            ``max_frame_bytes``.
    """
    body = resolve_codec(codec).encode(message)
    if len(body) > max_frame_bytes:
        raise RuntimeProtocolError(
            f"frame of {len(body)} bytes exceeds the {max_frame_bytes}-byte cap"
        )
    return len(body).to_bytes(HEADER_BYTES, "big") + body


def make_request(
    sender: str,
    request_id: str,
    doc_id: str,
    timestamp: float,
    *,
    digest: tuple[str, ...] = (),
    demand: str = "",
) -> Message:
    """A client's demand request, optionally piggybacking its cache digest.

    ``demand`` is the *stable* demand key: retries of one logical
    request carry fresh ``request_id`` correlation ids but the same
    demand key, which lets servers classify re-served requests as
    duplicate service instead of fresh load (at-least-once accounting).
    """
    payload: dict[str, Any] = {
        "doc_id": doc_id,
        "client": sender,
        "timestamp": timestamp,
        "digest": list(digest),
    }
    if demand:
        payload["req"] = demand
    return Message(
        kind="request",
        sender=sender,
        request_id=request_id,
        payload=payload,
        body_bytes=64 + 8 * len(digest),
    )


def make_response(
    sender: str,
    request_id: str,
    doc_id: str,
    size: int,
    served_by: str,
    *,
    speculated: list[tuple[str, int]] | None = None,
) -> Message:
    """The demand document plus speculated (doc_id, size) riders."""
    riders = speculated or []
    rider_bytes = 0
    for _, rider_size in riders:
        rider_bytes += rider_size
    return Message(
        kind="response",
        sender=sender,
        request_id=request_id,
        payload={
            "doc_id": doc_id,
            "size": size,
            "served_by": served_by,
            "speculated": [list(pair) for pair in riders],
        },
        body_bytes=size + rider_bytes,
    )


def make_error(
    sender: str, request_id: str, error_kind: str, reason: str
) -> Message:
    """A failure reply; ``error_kind`` is ``"protocol"`` or ``"transport"``."""
    return Message(
        kind="error",
        sender=sender,
        request_id=request_id,
        payload={"error_kind": error_kind, "reason": reason},
        body_bytes=64,
    )


def raise_if_error(message: Message) -> Message:
    """Re-raise an ``error`` reply as the exception class it encodes.

    Returns the message unchanged when it is not an error, so callers
    can write ``reply = raise_if_error(await ...)``.

    Raises:
        TransportError: When the peer reported a transport failure.
        RuntimeProtocolError: When the peer reported a protocol
            violation.
    """
    if message.kind != "error":
        return message
    reason = str(message.payload.get("reason", "unspecified error"))
    if message.payload.get("error_kind") == "transport":
        from ..errors import TransportError

        raise TransportError(f"{message.sender}: {reason}")
    raise RuntimeProtocolError(f"{message.sender}: {reason}")
