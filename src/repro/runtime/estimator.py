"""Online dependency estimation for the live origin.

Wraps :class:`~repro.speculation.dependency.DependencyModel`'s
incremental API so speculation decisions can happen **in-band**: every
served request feeds :meth:`observe`, and after every
``refresh_interval`` observations the estimator re-derives a *bounded*
set of closure rows — the hottest sources since the last refresh — the
runtime analogue of the paper's UpdateCycle re-estimation (section 3.2),
kept cheap enough to run on the serving path.
"""

from __future__ import annotations

from ..speculation.dependency import DependencyModel
from ..trace.records import Trace


class OnlineDependencyEstimator:
    """Feeds the live request stream into a dependency model.

    Args:
        window: Lookahead window ``T_w`` in seconds.
        stride_timeout: Traversal-stride gap (defaults to ``window``).
        learn: When False, in-band requests do not update the model —
            the frozen-model mode ``repro loadtest`` uses so a live run
            is decision-for-decision comparable with batch replay.
        refresh_interval: Observations between bounded closure
            refreshes (0 disables periodic refresh).
        hot_sources: How many of the most-requested documents get their
            closure rows precomputed per refresh.
        min_probability: Closure pruning floor.
        max_hops: Closure chain-length cap.
    """

    def __init__(
        self,
        *,
        window: float = 5.0,
        stride_timeout: float | None = None,
        learn: bool = True,
        refresh_interval: int = 512,
        hot_sources: int = 32,
        min_probability: float = 0.01,
        max_hops: int = 8,
    ):
        # The sparse backend computes refresh batches vectorized and is
        # bit-identical to the dict backend, so live decisions stay
        # decision-for-decision comparable with batch replay.
        self._model = DependencyModel.incremental(
            window=window, stride_timeout=stride_timeout, backend="sparse"
        )
        self._learn = learn
        self._refresh_interval = refresh_interval
        self._hot_sources = hot_sources
        self._min_probability = min_probability
        self._max_hops = max_hops
        self._request_counts: dict[str, int] = {}
        self._since_refresh = 0
        self.observations = 0
        self.refreshes = 0

    @property
    def model(self) -> DependencyModel:
        """The wrapped model (hand this to speculation policies)."""
        return self._model

    @property
    def learning(self) -> bool:
        return self._learn

    def warm(self, trace: Trace) -> None:
        """Train on a history trace, then refresh the full closure.

        Used at startup (the paper's HistoryLength warm-up) regardless
        of the ``learn`` flag.
        """
        for request in trace:
            self._model.observe(request.client, request.doc_id, request.timestamp)
        self._model.refresh_closure(
            min_probability=self._min_probability, max_hops=self._max_hops
        )

    def observe(self, client: str, doc_id: str, timestamp: float) -> None:
        """Feed one live request; may trigger a bounded closure refresh."""
        self.observations += 1
        self._request_counts[doc_id] = self._request_counts.get(doc_id, 0) + 1
        if not self._learn:
            return
        self._model.observe(client, doc_id, timestamp)
        self._since_refresh += 1
        if self._refresh_interval > 0 and self._since_refresh >= (
            self._refresh_interval
        ):
            self.refresh()

    def refresh(self) -> int:
        """Recompute closure rows for the hottest sources since last time.

        Returns:
            Number of closure rows recomputed.
        """
        hot = sorted(
            self._request_counts,
            key=lambda doc: (-self._request_counts[doc], doc),
        )[: self._hot_sources]
        refreshed = self._model.refresh_closure(
            hot,
            min_probability=self._min_probability,
            max_hops=self._max_hops,
        )
        self._request_counts.clear()
        self._since_refresh = 0
        self.refreshes += 1
        return refreshed
