"""``repro.runtime`` — the asyncio online serving layer.

Runs both of the paper's protocols **live** instead of in batch replay:
an origin server speculates in-band from an online-estimated dependency
model, proxy nodes serve disseminated documents, a daemon replans
dissemination from observed popularity, and a load generator drives
seeded workload sessions with admission control.  Two transports share
one message protocol — a deterministic in-memory network under a
virtual clock (tests, benchmarks, ``repro loadtest``) and real TCP
(``repro serve``).

Entry points: :func:`~repro.runtime.service.run_loadtest` /
:func:`~repro.runtime.service.run_smoke`, or the ``repro serve`` and
``repro loadtest`` CLI commands.
"""

from .clock import VirtualClock, run_virtual
from .daemon import DisseminationDaemon
from .estimator import OnlineDependencyEstimator
from .loadgen import ClientRoute, LoadConfig, LoadGenerator
from .messages import Message
from .metrics import Counter, Histogram, MetricsRegistry, live_ratios
from .origin import OriginServer
from .proxy import ProxyNode
from .service import (
    LiveReport,
    LiveSettings,
    run_loadtest,
    run_smoke,
    smoke_workload,
)
from .transport import Endpoint, InMemoryNetwork, TcpServer, tcp_call

__all__ = [
    "ClientRoute",
    "Counter",
    "DisseminationDaemon",
    "Endpoint",
    "Histogram",
    "InMemoryNetwork",
    "LiveReport",
    "LiveSettings",
    "LoadConfig",
    "LoadGenerator",
    "Message",
    "MetricsRegistry",
    "OnlineDependencyEstimator",
    "OriginServer",
    "ProxyNode",
    "TcpServer",
    "VirtualClock",
    "live_ratios",
    "run_loadtest",
    "run_smoke",
    "run_virtual",
    "smoke_workload",
    "tcp_call",
]
