"""``repro.runtime`` — the asyncio online serving layer.

Runs both of the paper's protocols **live** instead of in batch replay:
an origin server speculates in-band from an online-estimated dependency
model, proxy nodes serve disseminated documents, a daemon replans
dissemination from observed popularity, and a load generator drives
seeded workload sessions with admission control.  Two transports share
one message protocol — a deterministic in-memory network under a
virtual clock (tests, benchmarks, ``repro loadtest``) and real TCP
(``repro serve``).

The layer is hardened against injected failures: a scripted, seeded
fault plan (:mod:`~repro.runtime.faults`) can crash proxies, partition
links, ramp frame drops and brown out the origin, while the resilience
machinery (:mod:`~repro.runtime.resilience` — retry backoff, circuit
breakers, duplicate-service accounting, daemon anti-entropy re-push)
carries the run through with the paper's four ratios intact.

Entry points: :class:`repro.api.Session` (the front door), the
``repro serve``, ``repro loadtest`` and ``repro chaos`` CLI commands,
or the engine functions :func:`~repro.runtime.service.execute_loadtest`
/ :func:`~repro.runtime.service.execute_chaos`.  The historical
``run_loadtest`` / ``run_smoke`` / ``run_chaos`` / ``run_chaos_smoke``
names remain as deprecated shims.
"""

from .clock import VirtualClock, run_virtual
from .daemon import DisseminationDaemon
from .estimator import OnlineDependencyEstimator
from .faults import FaultEvent, FaultInjector, FaultPlan
from .loadgen import ClientRoute, LoadConfig, LoadGenerator
from .messages import (
    BINARY_CODEC,
    CODECS,
    JSON_CODEC,
    BinaryCodec,
    JsonCodec,
    Message,
    resolve_codec,
    sniff_codec,
)
from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    default_registry,
    live_ratios,
    verify_conservation,
)
from .origin import OriginServer
from .proxy import ProxyNode
from .resilience import BackoffPolicy, CircuitBreaker, DuplicateFilter, retry_rng
from .service import (
    ChaosReport,
    ChaosSettings,
    LiveReport,
    LiveSettings,
    chaos_smoke_settings,
    execute_chaos,
    execute_chaos_smoke,
    execute_loadtest,
    execute_smoke,
    prepare_live_run,
    require_shard_exact,
    run_chaos,
    run_chaos_smoke,
    run_loadtest,
    run_smoke,
    smoke_workload,
)
from .transport import Endpoint, InMemoryNetwork, TcpServer, tcp_call

__all__ = [
    "BINARY_CODEC",
    "BackoffPolicy",
    "BinaryCodec",
    "CODECS",
    "ChaosReport",
    "ChaosSettings",
    "CircuitBreaker",
    "ClientRoute",
    "Counter",
    "DisseminationDaemon",
    "DuplicateFilter",
    "Endpoint",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Histogram",
    "InMemoryNetwork",
    "JSON_CODEC",
    "JsonCodec",
    "LiveReport",
    "LiveSettings",
    "LoadConfig",
    "LoadGenerator",
    "Message",
    "MetricsRegistry",
    "OnlineDependencyEstimator",
    "OriginServer",
    "ProxyNode",
    "TcpServer",
    "VirtualClock",
    "chaos_smoke_settings",
    "default_registry",
    "execute_chaos",
    "execute_chaos_smoke",
    "execute_loadtest",
    "execute_smoke",
    "live_ratios",
    "prepare_live_run",
    "require_shard_exact",
    "resolve_codec",
    "retry_rng",
    "run_chaos",
    "run_chaos_smoke",
    "run_loadtest",
    "run_smoke",
    "run_virtual",
    "smoke_workload",
    "sniff_codec",
    "tcp_call",
    "verify_conservation",
]
