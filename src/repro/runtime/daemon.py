"""The dissemination daemon: periodic replan + push proxy-ward.

The paper's dissemination protocol is *server-initiated*: the home
server decides, from its own logs, what to push toward its clientele
(section 2.2).  This daemon closes that loop live — every ``interval``
(virtual) seconds it rebuilds a
:class:`~repro.core.planner.DisseminationPlan` from the origin's
recently-served requests and pushes the chosen documents to every
proxy.

For fault tolerance the daemon also acts as the *anti-entropy* channel:
when a proxy restarts after a crash (its volatile holdings are gone),
:meth:`DisseminationDaemon.request_repush` wakes the daemon to re-push
the **last** plan to that proxy without replanning, so the proxy's
holdings converge back to the pre-crash state deterministically.
"""

from __future__ import annotations

import asyncio

from ..core.planner import DisseminationPlanner
from ..errors import AllocationError, TransportError
from .messages import Message
from .metrics import MetricsRegistry, default_registry
from .origin import OriginServer
from .transport import Endpoint


class DisseminationDaemon:
    """Periodically replans dissemination from observed popularity.

    Args:
        origin: The origin whose request history drives the plan.
        endpoint: Endpoint to push from (typically the origin's own).
        proxies: Proxy endpoint names to push to.
        budget_bytes: Proxy storage budget per replan.
        interval: Seconds between replans (the paper's UpdateCycle);
            None disables periodic replanning — the daemon then only
            answers explicit re-push requests (anti-entropy mode).
        push_timeout: Per-push ack timeout.
        metrics: Shared metrics registry.
        static_entries: Seed ``(doc_id, size)`` holdings to re-push
            before the first replan has happened (typically the offline
            dissemination plan the proxies started with).
        name: Optional label; counters become ``daemon.<name>.*`` so
            several daemons sharing one registry (a fleet run) never
            collide.  Unlabelled daemons keep the historical
            ``daemon.*`` names.
    """

    def __init__(
        self,
        origin: OriginServer,
        endpoint: Endpoint,
        proxies: list[str],
        *,
        budget_bytes: float,
        interval: float | None = 3600.0,
        push_timeout: float | None = 30.0,
        metrics: MetricsRegistry | None = None,
        static_entries: list[list] | None = None,
        name: str | None = None,
    ):
        self._origin = origin
        self._endpoint = endpoint
        self._proxies = list(proxies)
        self._budget_bytes = budget_bytes
        self._interval = interval
        self._push_timeout = push_timeout
        self.metrics = metrics if metrics is not None else default_registry()
        self._prefix = f"daemon.{name}." if name else "daemon."
        self.replans = 0
        self._last_entries: list[list] = [
            [str(doc_id), int(size)] for doc_id, size in (static_entries or [])
        ]
        self._paused = False
        self._repush_pending: set[str] = set()
        self._wake = asyncio.Event()

    @property
    def paused(self) -> bool:
        """True while a fault plan has the daemon paused."""
        return self._paused

    def pause(self) -> None:
        """Fault hook: stop replanning/pushing until :meth:`resume`."""
        self._paused = True
        self.metrics.counter(f"{self._prefix}pauses").inc()

    def resume(self) -> None:
        """Fault hook: resume, and immediately serve any queued re-pushes."""
        self._paused = False
        self.metrics.counter(f"{self._prefix}resumes").inc()
        if self._repush_pending:
            self._wake.set()

    def request_repush(self, proxy: str) -> None:
        """Queue an anti-entropy re-push of the last plan to one proxy.

        Called from a restarted proxy's fault hook; the daemon's run
        loop picks it up immediately (or as soon as it is resumed).
        """
        self._repush_pending.add(proxy)
        self.metrics.counter(f"{self._prefix}repush_requests").inc()
        if not self._paused:
            self._wake.set()

    def compute_plan_documents(self) -> tuple[str, ...]:
        """One replan from the origin's recent history.

        Returns:
            The document ids the plan disseminates (empty when there is
            no usable history yet).
        """
        trace = self._origin.recent_trace()
        if len(trace) == 0:
            return ()
        planner = DisseminationPlanner(remote_only=True)
        planner.add_server(self._origin.name, trace)
        try:
            plan = planner.plan(self._budget_bytes)
        except AllocationError:
            return ()  # degenerate history (e.g. zero remote bytes)
        return plan.documents.get(self._origin.name, ())

    async def _push_to(self, proxy: str, entries: list[list]) -> bool:
        """Push one holdings snapshot to one proxy; False on timeout."""
        payload_bytes = 0
        for _, size in entries:
            payload_bytes += size
        message = Message(
            kind="push",
            sender=self._endpoint.name,
            request_id=self._endpoint.next_request_id(),
            payload={"documents": entries, "mode": "replace"},
            body_bytes=payload_bytes,
        )
        try:
            await self._endpoint.call(proxy, message, timeout=self._push_timeout)
        except TransportError:
            self.metrics.counter(f"{self._prefix}failed_pushes").inc()
            return False
        self.metrics.counter(f"{self._prefix}pushes").inc()
        self.metrics.counter(f"{self._prefix}pushed_bytes").inc(payload_bytes)
        self.metrics.trace_event(
            "dissemination",
            proxy=proxy,
            documents=len(entries),
            bytes=payload_bytes,
        )
        return True

    async def push_once(self) -> tuple[str, ...]:
        """Replan and push the resulting holdings to every proxy.

        Proxies that fail to ack within the timeout are skipped (they
        keep their previous holdings); the push counts as degraded, not
        fatal.
        """
        documents = self.compute_plan_documents()
        if not documents:
            return ()
        catalog = self._origin.recent_trace().documents
        entries = [
            [doc_id, catalog[doc_id].size]
            for doc_id in documents
            if doc_id in catalog
        ]
        self._last_entries = entries
        for proxy in self._proxies:
            await self._push_to(proxy, entries)
        self.replans += 1
        self.metrics.counter(f"{self._prefix}replans").inc()
        return documents

    async def repush_pending(self) -> None:
        """Serve queued anti-entropy re-pushes from the last known plan."""
        while self._repush_pending:
            proxy = min(self._repush_pending)  # deterministic order
            self._repush_pending.discard(proxy)
            if not self._last_entries:
                continue
            if await self._push_to(proxy, list(self._last_entries)):
                self.metrics.counter(f"{self._prefix}repushes").inc()
            else:
                # proxy still unreachable — leave it queued for later.
                # Safe window: this task removed `proxy` above, add() is
                # idempotent, and a concurrent request_repush for the
                # same proxy converges to the same queued state.
                self._repush_pending.add(proxy)  # repro-lint: disable=A001
                return

    async def run(self) -> None:
        """Replan on the UpdateCycle and serve re-push requests.

        Cancel the task to stop.  With ``interval=None`` the loop only
        wakes for :meth:`request_repush` calls.
        """
        while True:
            cycle_due = False
            if self._interval is None:
                await self._wake.wait()
            else:
                try:
                    await asyncio.wait_for(self._wake.wait(), self._interval)
                except asyncio.TimeoutError:
                    cycle_due = True
            # Consume the wake-up only *after* waking.  Clearing at the
            # top of the loop (the previous shape of this function)
            # lost any request_repush() that arrived while the last
            # iteration was awaiting inside push_once()/repush_pending):
            # the event was set mid-service, cleared before the wait,
            # and with interval=None the daemon slept forever with a
            # non-empty queue.
            self._wake.clear()
            if self._paused:
                if cycle_due:
                    self.metrics.counter(f"{self._prefix}skipped_cycles").inc()
                continue
            if self._repush_pending:
                await self.repush_pending()
            if cycle_due:
                await self.push_once()
