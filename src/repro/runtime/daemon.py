"""The dissemination daemon: periodic replan + push proxy-ward.

The paper's dissemination protocol is *server-initiated*: the home
server decides, from its own logs, what to push toward its clientele
(section 2.2).  This daemon closes that loop live — every ``interval``
(virtual) seconds it rebuilds a
:class:`~repro.core.planner.DisseminationPlan` from the origin's
recently-served requests and pushes the chosen documents to every
proxy.
"""

from __future__ import annotations

import asyncio

from ..core.planner import DisseminationPlanner
from ..errors import AllocationError, TransportError
from .messages import Message
from .metrics import MetricsRegistry
from .origin import OriginServer
from .transport import Endpoint


class DisseminationDaemon:
    """Periodically replans dissemination from observed popularity.

    Args:
        origin: The origin whose request history drives the plan.
        endpoint: Endpoint to push from (typically the origin's own).
        proxies: Proxy endpoint names to push to.
        budget_bytes: Proxy storage budget per replan.
        interval: Seconds between replans (the paper's UpdateCycle).
        push_timeout: Per-push ack timeout.
        metrics: Shared metrics registry.
    """

    def __init__(
        self,
        origin: OriginServer,
        endpoint: Endpoint,
        proxies: list[str],
        *,
        budget_bytes: float,
        interval: float = 3600.0,
        push_timeout: float | None = 30.0,
        metrics: MetricsRegistry | None = None,
    ):
        self._origin = origin
        self._endpoint = endpoint
        self._proxies = list(proxies)
        self._budget_bytes = budget_bytes
        self._interval = interval
        self._push_timeout = push_timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.replans = 0

    def compute_plan_documents(self) -> tuple[str, ...]:
        """One replan from the origin's recent history.

        Returns:
            The document ids the plan disseminates (empty when there is
            no usable history yet).
        """
        trace = self._origin.recent_trace()
        if len(trace) == 0:
            return ()
        planner = DisseminationPlanner(remote_only=True)
        planner.add_server(self._origin.name, trace)
        try:
            plan = planner.plan(self._budget_bytes)
        except AllocationError:
            return ()  # degenerate history (e.g. zero remote bytes)
        return plan.documents.get(self._origin.name, ())

    async def push_once(self) -> tuple[str, ...]:
        """Replan and push the resulting holdings to every proxy.

        Proxies that fail to ack within the timeout are skipped (they
        keep their previous holdings); the push counts as degraded, not
        fatal.
        """
        documents = self.compute_plan_documents()
        if not documents:
            return ()
        catalog = self._origin.recent_trace().documents
        entries = [
            [doc_id, catalog[doc_id].size]
            for doc_id in documents
            if doc_id in catalog
        ]
        payload_bytes = 0
        for _, size in entries:
            payload_bytes += size
        for proxy in self._proxies:
            message = Message(
                kind="push",
                sender=self._endpoint.name,
                request_id=self._endpoint.next_request_id(),
                payload={"documents": entries, "mode": "replace"},
                body_bytes=payload_bytes,
            )
            try:
                await self._endpoint.call(
                    proxy, message, timeout=self._push_timeout
                )
            except TransportError:
                self.metrics.counter("daemon.failed_pushes").inc()
                continue
            self.metrics.counter("daemon.pushes").inc()
            self.metrics.counter("daemon.pushed_bytes").inc(payload_bytes)
        self.replans += 1
        self.metrics.counter("daemon.replans").inc()
        return documents

    async def run(self) -> None:
        """Replan forever on the UpdateCycle; cancel the task to stop."""
        while True:
            await asyncio.sleep(self._interval)
            await self.push_once()
