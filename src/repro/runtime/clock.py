"""Deterministic virtual time for asyncio event loops.

The runtime's in-memory transport must be **replayable**: the same seed
and workload have to produce the same metrics snapshot, and a simulated
minute must cost no wall-clock time.  Both follow from one substitution:
instead of letting the selector block until the next timer is due, the
loop's selector is patched to *jump* virtual time forward by exactly the
timeout it was asked to block for, and ``loop.time()`` is patched to
read that virtual clock.  Every ``asyncio.sleep``, ``call_later`` and
``wait_for`` then runs against simulated time, in the deterministic
order of the loop's timer heap (ties broken by its monotone sequence
counter), and a 90-day workload replays in milliseconds.

Real-I/O transports (the TCP transport) must **not** run under a
virtual clock — a patched selector never waits for sockets; use a
normal ``asyncio.run`` for those.
"""

from __future__ import annotations

import asyncio
import heapq
import selectors
from collections.abc import Coroutine
from typing import Any, TypeVar

import numpy as np

from ..errors import RuntimeProtocolError, SimulationError

T = TypeVar("T")


class _RankedTimerHandle(asyncio.TimerHandle):
    """Timer handle whose heap order breaks ties by a seeded rank.

    The stock loop resolves timers scheduled for the *same* deadline by
    an unstable heap order that happens to follow insertion sequence.
    Any code whose results depend on that order is racy — it would
    break under a different-but-legal scheduler.  The race gate
    (``repro racecheck``) shuffles exactly those ties: each handle gets
    a seeded random rank consulted only when two deadlines are equal,
    so every perturbation is a schedule a conforming event loop could
    have produced.
    """

    __slots__ = ("_tie_rank",)

    def __lt__(self, other: object) -> bool:
        if isinstance(other, _RankedTimerHandle):
            return (self._when, self._tie_rank) < (other._when, other._tie_rank)
        when = getattr(other, "_when", None)
        if when is None:
            return NotImplemented
        return self._when < when

    def __le__(self, other: object) -> bool:
        less = self.__lt__(other)
        if less is NotImplemented:
            return NotImplemented
        return less or self._when == getattr(other, "_when", None)


class VirtualClock:
    """A manually-advanced clock that can drive a selector event loop.

    Args:
        start: Initial virtual time in seconds.
        tie_seed: When not ``None``, same-deadline timers fire in a
            seeded random order instead of insertion order (see
            :class:`_RankedTimerHandle`).  Used by ``repro racecheck``
            to prove results do not depend on tie-break order.
    """

    def __init__(self, start: float = 0.0, tie_seed: int | None = None):
        self._now = float(start)
        self._tie_seed = tie_seed

    def time(self) -> float:
        """Current virtual time in seconds (monotone, starts at ``start``)."""
        return self._now

    def install(self, loop: asyncio.AbstractEventLoop) -> None:
        """Patch a selector event loop to run on virtual time.

        The loop's ``time()`` is replaced by this clock and its
        selector's ``select(timeout)`` is replaced by a non-blocking
        poll that advances the clock by ``timeout`` — so timers fire in
        order at zero wall cost.

        Raises:
            SimulationError: If the loop is not selector-based.
            RuntimeProtocolError: (later, while running) if every task
                blocks with no timer scheduled — a virtual-time
                deadlock, surfaced instead of spinning forever.
        """
        selector: selectors.BaseSelector | None = getattr(loop, "_selector", None)
        if selector is None:
            raise SimulationError(
                "virtual clock needs a selector event loop "
                f"(got {type(loop).__name__})"
            )
        original_select = selector.select

        def virtual_select(
            timeout: float | None = None,
        ) -> list[tuple[selectors.SelectorKey, int]]:
            if timeout is None:
                # No ready callbacks and no timers: nothing can ever
                # advance the clock again.
                raise RuntimeProtocolError(
                    "virtual-clock deadlock: all tasks are blocked and "
                    "no timer is scheduled"
                )
            if timeout > 0:
                self._now += timeout
            return original_select(0)

        selector.select = virtual_select  # type: ignore[method-assign]
        loop.time = self.time  # type: ignore[method-assign]
        if self._tie_seed is not None:
            self._install_tie_shuffle(loop)

    def _install_tie_shuffle(self, loop: asyncio.AbstractEventLoop) -> None:
        """Replace ``loop.call_at`` so equal-deadline timers get seeded
        tie-break ranks.  ``call_later`` delegates to ``call_at``, so
        one patch covers both; ready-queue (``call_soon``) FIFO order
        is untouched because it reflects causal program order."""
        rng = np.random.default_rng(self._tie_seed)

        def ranked_call_at(
            when: float,
            callback: Any,
            *args: Any,
            context: Any = None,
        ) -> asyncio.TimerHandle:
            timer = _RankedTimerHandle(when, callback, args, loop, context)
            timer._tie_rank = float(rng.random())
            # The loop rebuilds ``_scheduled`` when compacting
            # cancelled timers, so fetch it per call.
            heapq.heappush(
                loop._scheduled, timer  # type: ignore[attr-defined]
            )
            timer._scheduled = True
            return timer

        loop.call_at = ranked_call_at  # type: ignore[method-assign]


def run_virtual(
    coro: Coroutine[Any, Any, T],
    *,
    start: float = 0.0,
    schedule_seed: int | None = None,
) -> T:
    """Run a coroutine to completion on a fresh virtual-clock loop.

    The drop-in replacement for ``asyncio.run`` used by tests, the
    benchmarks and ``repro loadtest``: all sleeps and timeouts resolve
    against virtual time, so runs are fast and bit-reproducible.

    Args:
        coro: The coroutine to drive.
        start: Initial virtual time.
        schedule_seed: When not ``None``, perturb the firing order of
            same-deadline timers with this seed (legal-schedule
            shuffling for the race gate; results must not change).

    Returns:
        Whatever the coroutine returns.
    """
    clock = VirtualClock(start, tie_seed=schedule_seed)
    loop = asyncio.new_event_loop()
    try:
        clock.install(loop)
        return loop.run_until_complete(coro)
    finally:
        try:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            loop.close()
