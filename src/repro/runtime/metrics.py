"""Live metrics: counters, histograms, deterministic JSON snapshots.

The batch simulators return one result object at the end of a replay;
a live system needs the same numbers *while running*.  This registry
keeps named monotone counters (requests, bytes×hops, cost units) and
histograms (per-request latency), renders them as canonically-sorted
JSON — byte-identical across runs with the same seed, which is what the
``repro loadtest --smoke`` determinism check asserts — and converts a
(speculation, baseline) snapshot pair into the paper's four
:class:`~repro.speculation.metrics.SpeculationRatios`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable

from ..errors import RuntimeProtocolError
from ..speculation.metrics import SpeculationRatios


class Counter:
    """A named monotone counter (int or float increments)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative to stay monotone)."""
        self.value += amount


class Histogram:
    """Stores raw observations; quantiles are computed on demand.

    Exact rather than bucketed: live runs are bounded by the workload
    trace, so storing every observation is affordable and keeps p50/p99
    deterministic to the last bit.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile; 0.0 when empty."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> dict[str, float]:
        """Count, mean and the standard quantiles, rounded for stability."""
        if not self._values:
            return {"count": 0}
        total = sum(self._values)
        return {
            "count": len(self._values),
            "mean": round(total / len(self._values), 9),
            "p50": round(self.quantile(0.50), 9),
            "p90": round(self.quantile(0.90), 9),
            "p99": round(self.quantile(0.99), 9),
            "max": round(max(self._values), 9),
        }


class MetricsRegistry:
    """Creates-on-first-use registry of counters, histograms and events."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._events: list[tuple[float, str]] = []

    def counter(self, name: str) -> Counter:
        """The named counter, created at zero on first use."""
        found = self._counters.get(name)
        if found is None:
            found = Counter()
            self._counters[name] = found
        return found

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created empty on first use."""
        found = self._histograms.get(name)
        if found is None:
            found = Histogram()
            self._histograms[name] = found
        return found

    def value(self, name: str) -> float:
        """Current value of a counter; 0 if it was never touched."""
        found = self._counters.get(name)
        return found.value if found is not None else 0

    def record_event(self, time: float, name: str) -> None:
        """Append one timestamped event (fault injections, recoveries)."""
        self._events.append((round(float(time), 9), name))

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict snapshot: sorted counters + histogram summaries.

        The event timeline is included only when non-empty, so clean
        runs keep their historical snapshot shape.
        """
        snapshot: dict[str, Any] = {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }
        if self._events:
            snapshot["events"] = [[time, name] for time, name in self._events]
        return snapshot

    def to_json(self, *, indent: int | None = None) -> str:
        """Canonical JSON rendering — identical runs give identical text."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)


class SnapshotReporter:
    """Emits periodic JSON snapshots of a registry on the event loop.

    Args:
        registry: The registry to snapshot.
        interval: Seconds (virtual seconds, under a virtual clock)
            between snapshots.
        sink: Called with each JSON snapshot string.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float,
        sink: Callable[[str], None],
    ):
        self._registry = registry
        self._interval = interval
        self._sink = sink

    async def run(self) -> None:
        """Snapshot forever; cancel the task to stop."""
        while True:
            await asyncio.sleep(self._interval)
            self._sink(self._registry.to_json())


def _ratio(numerator: float, denominator: float) -> float:
    if denominator == 0:
        return 1.0 if numerator == 0 else float("inf")
    return numerator / denominator


def live_ratios(
    speculation: dict[str, Any], baseline: dict[str, Any]
) -> SpeculationRatios:
    """The paper's four ratios from two registry snapshots.

    Expects the counters the load generator maintains: ``bytes_hops``,
    ``origin_requests``, ``service_cost``, ``miss_bytes`` and
    ``accessed_bytes``.
    """
    spec = speculation.get("counters", {})
    base = baseline.get("counters", {})

    def miss_rate(counters: dict[str, float]) -> float:
        accessed = counters.get("accessed_bytes", 0)
        return _ratio(counters.get("miss_bytes", 0), accessed) if accessed else 0.0

    return SpeculationRatios(
        bandwidth_ratio=_ratio(
            spec.get("bytes_hops", 0), base.get("bytes_hops", 0)
        ),
        server_load_ratio=_ratio(
            spec.get("origin_requests", 0), base.get("origin_requests", 0)
        ),
        service_time_ratio=_ratio(
            spec.get("service_cost", 0), base.get("service_cost", 0)
        ),
        miss_rate_ratio=_ratio(miss_rate(spec), miss_rate(base)),
    )


def verify_conservation(snapshot: dict[str, Any], *, strict: bool = False) -> None:
    """Check byte/frame conservation invariants on one run snapshot.

    Two families of invariants:

    * **Network identity** (always): every frame the network accepted
      was delivered, dropped, rejected, or is still in flight —
      ``frames_sent == delivered + dropped + rejected + inflight``,
      and the same identity over body bytes.  Each term is counted on
      an independent code path, so this cross-checks the transport's
      accounting rather than restating it.
    * **Service conservation**: clients cannot receive more demand or
      speculated bytes than servers served (including duplicate and
      stale service).  With ``strict=True`` — valid only for fault-free
      runs, where nothing is lost in flight — the relation must be
      exact equality per category.

    Raises:
        RuntimeProtocolError: When an invariant is violated.
    """
    counters = snapshot.get("counters", {})

    def value(name: str) -> float:
        return counters.get(name, 0)

    sent = value("network.frames_sent")
    settled = (
        value("network.frames_delivered")
        + value("network.frames_dropped")
        + value("network.frames_rejected")
        + value("network.frames_inflight")
    )
    if sent != settled:
        raise RuntimeProtocolError(
            f"frame conservation violated: sent {sent:g} != settled {settled:g}"
        )
    sent_bytes = value("network.bytes_sent")
    settled_bytes = (
        value("network.bytes_delivered")
        + value("network.bytes_dropped")
        + value("network.bytes_rejected")
        + value("network.bytes_inflight")
    )
    if sent_bytes != settled_bytes:
        raise RuntimeProtocolError(
            f"byte conservation violated on the wire: sent {sent_bytes:g} "
            f"!= settled {settled_bytes:g}"
        )

    proxy_demand = sum(
        amount
        for name, amount in counters.items()
        if name.startswith("proxy.") and name.endswith(".bytes_served")
    )
    proxy_duplicates = sum(
        amount
        for name, amount in counters.items()
        if name.startswith("proxy.") and name.endswith(".duplicate_bytes")
    )
    served_demand = value("origin.bytes_served") + proxy_demand
    served_riders = value("origin.speculated_bytes")
    duplicates = value("origin.duplicate_bytes") + proxy_duplicates
    received_demand = value("received_bytes")
    received_riders = value("speculated_bytes")

    if strict:
        if received_demand != served_demand or duplicates != 0:
            raise RuntimeProtocolError(
                "byte conservation violated (strict): received "
                f"{received_demand:g} demand bytes vs served {served_demand:g} "
                f"(+{duplicates:g} duplicate)"
            )
        if received_riders != served_riders:
            raise RuntimeProtocolError(
                "byte conservation violated (strict): received "
                f"{received_riders:g} speculated bytes vs served "
                f"{served_riders:g}"
            )
        return
    served_total = served_demand + served_riders + duplicates
    received_total = received_demand + received_riders
    if received_total > served_total:
        raise RuntimeProtocolError(
            f"byte conservation violated: clients received {received_total:g} "
            f"bytes but servers only served {served_total:g}"
        )
