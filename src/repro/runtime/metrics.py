"""Live metrics: counters, histograms, deterministic JSON snapshots.

The metric primitives — :class:`~repro.obs.timeseries.Counter`,
:class:`~repro.obs.timeseries.Histogram` and the
:class:`~repro.obs.timeseries.MetricsRegistry` with its
canonically-sorted JSON snapshot — now live in :mod:`repro.obs` (the
observability layer shared with the batch simulators) and are
re-exported here unchanged for the runtime's historical import paths.
This module keeps what is genuinely runtime-side: the periodic
:class:`SnapshotReporter`, the four-ratio conversion of a
(speculation, baseline) snapshot pair, and the byte/frame conservation
invariants the chaos gate checks.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from ..errors import RuntimeProtocolError
from ..obs import default_registry
from ..obs.timeseries import (
    Counter,
    Histogram,
    MetricsRegistry,
    ratios_from_counters,
)
from ..speculation.metrics import SpeculationRatios

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "SnapshotReporter",
    "default_registry",
    "live_ratios",
    "verify_conservation",
]


class SnapshotReporter:
    """Emits periodic JSON snapshots of a registry on the event loop.

    Args:
        registry: The registry to snapshot.
        interval: Seconds (virtual seconds, under a virtual clock)
            between snapshots.
        sink: Called with each JSON snapshot string.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float,
        sink: Callable[[str], None],
    ):
        self._registry = registry
        self._interval = interval
        self._sink = sink

    async def run(self) -> None:
        """Snapshot forever; cancel the task to stop."""
        while True:
            await asyncio.sleep(self._interval)
            self._sink(self._registry.to_json())


def live_ratios(
    speculation: dict[str, Any], baseline: dict[str, Any]
) -> SpeculationRatios:
    """The paper's four ratios from two registry snapshots.

    Expects the counters the load generator maintains: ``bytes_hops``,
    ``origin_requests``, ``service_cost``, ``miss_bytes`` and
    ``accessed_bytes``.
    """
    return ratios_from_counters(
        speculation.get("counters", {}), baseline.get("counters", {})
    )


def verify_conservation(snapshot: dict[str, Any], *, strict: bool = False) -> None:
    """Check byte/frame conservation invariants on one run snapshot.

    Two families of invariants:

    * **Network identity** (always): every frame the network accepted
      was delivered, dropped, rejected, or is still in flight —
      ``frames_sent == delivered + dropped + rejected + inflight``,
      and the same identity over body bytes.  Each term is counted on
      an independent code path, so this cross-checks the transport's
      accounting rather than restating it.
    * **Service conservation**: clients cannot receive more demand or
      speculated bytes than servers served (including duplicate and
      stale service).  With ``strict=True`` — valid only for fault-free
      runs, where nothing is lost in flight — the relation must be
      exact equality per category.

    Raises:
        RuntimeProtocolError: When an invariant is violated.
    """
    counters = snapshot.get("counters", {})

    def value(name: str) -> float:
        return counters.get(name, 0)

    sent = value("network.frames_sent")
    settled = (
        value("network.frames_delivered")
        + value("network.frames_dropped")
        + value("network.frames_rejected")
        + value("network.frames_inflight")
    )
    if sent != settled:
        raise RuntimeProtocolError(
            f"frame conservation violated: sent {sent:g} != settled {settled:g}"
        )
    sent_bytes = value("network.bytes_sent")
    settled_bytes = (
        value("network.bytes_delivered")
        + value("network.bytes_dropped")
        + value("network.bytes_rejected")
        + value("network.bytes_inflight")
    )
    if sent_bytes != settled_bytes:
        raise RuntimeProtocolError(
            f"byte conservation violated on the wire: sent {sent_bytes:g} "
            f"!= settled {settled_bytes:g}"
        )

    def node_sum(suffix: str) -> float:
        # Single-tier proxies label counters proxy.<name>.*, fleet
        # nodes fleet.<name>.*; both serve bytes the clients receive.
        return sum(
            amount
            for name, amount in counters.items()
            if name.startswith(("proxy.", "fleet.")) and name.endswith(suffix)
        )

    served_demand = value("origin.bytes_served") + node_sum(".bytes_served")
    served_riders = value("origin.speculated_bytes") + node_sum(
        ".speculated_bytes"
    )
    duplicates = value("origin.duplicate_bytes") + node_sum(".duplicate_bytes")
    received_demand = value("received_bytes")
    received_riders = value("speculated_bytes")

    if strict:
        if received_demand != served_demand or duplicates != 0:
            raise RuntimeProtocolError(
                "byte conservation violated (strict): received "
                f"{received_demand:g} demand bytes vs served {served_demand:g} "
                f"(+{duplicates:g} duplicate)"
            )
        if received_riders != served_riders:
            raise RuntimeProtocolError(
                "byte conservation violated (strict): received "
                f"{received_riders:g} speculated bytes vs served "
                f"{served_riders:g}"
            )
        return
    served_total = served_demand + served_riders + duplicates
    received_total = received_demand + received_riders
    if received_total > served_total:
        raise RuntimeProtocolError(
            f"byte conservation violated: clients received {received_total:g} "
            f"bytes but servers only served {served_total:g}"
        )
