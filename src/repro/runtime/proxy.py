"""Proxy nodes: serve disseminated documents, forward the rest.

A proxy sits at an internal node of the routing tree.  Requests from
clients below it are answered locally when the document is among its
(disseminated) holdings — the bytes then travel only the hops below the
proxy and the origin never sees the request (section 2's
load-balancing effect).  Everything else is forwarded upstream, and the
origin's reply (including speculated riders) is relayed back unchanged.

Holdings change at runtime via ``push`` messages from the dissemination
daemon.

Failure semantics (see ``docs/runtime.md``):

* Upstream forwards go through a per-upstream
  :class:`~repro.runtime.resilience.CircuitBreaker`; after repeated
  transport failures the proxy fast-fails misses instead of burning a
  full timeout per request, and probes the upstream again after the
  breaker's reset window.
* Forward attempts retry with seeded exponential backoff before the
  client's own timeout gives up.
* While the upstream is unreachable the proxy keeps serving its
  disseminated holdings (counted as stale service) and queues the
  misses it had to reject; once the breaker closes again the queued
  misses are fetched and folded into holdings.
* Retried requests whose earlier reply was lost are served again but
  counted as duplicate service (at-least-once accounting).
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Callable

from ..errors import RuntimeProtocolError, TransportError
from .messages import Message, make_error, make_request, make_response
from .metrics import MetricsRegistry, default_registry
from .resilience import (
    BREAKER_OPEN,
    BackoffPolicy,
    CircuitBreaker,
    DuplicateFilter,
    retry_rng,
)
from .transport import Endpoint


class ProxyNode:
    """Protocol logic of one proxy; bind ``handle`` to its endpoint.

    Args:
        name: Endpoint/tree-node name of this proxy.
        endpoint: The proxy's own endpoint (used to call upstream).
        upstream: Endpoint name to forward misses to (origin or a
            higher proxy).
        holdings: Initial ``doc_id → size`` holdings.
        metrics: Shared metrics registry.
        upstream_timeout: Per-forward timeout in seconds (None waits
            forever).
        breaker: Upstream circuit breaker; a default one (4 failures,
            reset after two upstream timeouts) is built when omitted.
        backoff: Backoff policy between forward retry attempts.
        forward_retries: Extra forward attempts after a transport
            failure before giving up on a request.
        backoff_seed: Seeds this proxy's retry-jitter RNG.
        miss_queue_limit: Bound on misses remembered while the
            upstream is unreachable (oldest kept).
        resolve_upstream: Optional ``(doc_id, attempt) -> endpoint
            name`` shard resolver.  When set, every upstream call is
            routed through it instead of the static ``upstream`` name —
            sharded deployments map the logical origin onto the
            consistent-hash owner, and retry attempts fail over across
            replicas.  ``upstream`` remains the logical name used in
            breaker scoping and error text.
    """

    def __init__(
        self,
        name: str,
        endpoint: Endpoint,
        *,
        upstream: str,
        holdings: dict[str, int] | None = None,
        metrics: MetricsRegistry | None = None,
        upstream_timeout: float | None = None,
        breaker: CircuitBreaker | None = None,
        backoff: BackoffPolicy | None = None,
        forward_retries: int = 1,
        backoff_seed: int = 0,
        miss_queue_limit: int = 64,
        resolve_upstream: Callable[[str, int], str] | None = None,
    ):
        self.name = name
        self._endpoint = endpoint
        self._upstream = upstream
        self._holdings: dict[str, int] = dict(holdings or {})
        self.metrics = metrics if metrics is not None else default_registry()
        self._upstream_timeout = upstream_timeout
        if breaker is None:
            reset = 2.0 * (upstream_timeout if upstream_timeout else 30.0)
            breaker = CircuitBreaker(failure_threshold=4, reset_timeout=reset)
        breaker.watch(self._breaker_transition)
        self._breaker = breaker
        self._backoff = backoff if backoff is not None else BackoffPolicy()
        self._forward_retries = max(0, forward_retries)
        self._rng = retry_rng(backoff_seed, name)
        self._missed: OrderedDict[str, float] = OrderedDict()
        self._miss_queue_limit = miss_queue_limit
        self._dedupe = DuplicateFilter()
        self._recovery_task: asyncio.Task[None] | None = None
        self._resolve_upstream = resolve_upstream

    def _upstream_for(self, doc_id: str, attempt: int) -> str:
        """Destination of one upstream call (shard owner when resolving)."""
        if self._resolve_upstream is None:
            return self._upstream
        return self._resolve_upstream(doc_id, attempt)

    @property
    def holdings(self) -> dict[str, int]:
        """Current holdings (``doc_id → size``), a defensive copy."""
        return dict(self._holdings)

    @property
    def breaker(self) -> CircuitBreaker:
        """The upstream circuit breaker (exposed for tests and chaos)."""
        return self._breaker

    @property
    def queued_misses(self) -> tuple[str, ...]:
        """Doc ids queued while the upstream was unreachable."""
        return tuple(self._missed)

    def _breaker_transition(self, old_state: str, new_state: str) -> None:
        self.metrics.counter(f"proxy.{self.name}.breaker.{new_state}").inc()
        self.metrics.record_event(
            self._loop_time(), f"breaker:{self.name}:{old_state}->{new_state}"
        )

    def _loop_time(self) -> float:
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:  # outside a loop (unit tests)
            return 0.0

    def on_crash(self) -> None:
        """Fault hook: the process died — volatile holdings are lost."""
        lost = len(self._holdings)
        self._holdings = {}
        self._missed.clear()
        self.metrics.counter(f"proxy.{self.name}.crashes").inc()
        if lost:
            self.metrics.counter(f"proxy.{self.name}.holdings_lost").inc(lost)

    def on_restart(self) -> None:
        """Fault hook: back up, empty-handed until the daemon re-pushes."""
        self.metrics.counter(f"proxy.{self.name}.restarts").inc()

    async def close(self) -> None:
        """Cancel the background miss-recovery task, if any."""
        task = self._recovery_task
        self._recovery_task = None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def handle(self, message: Message) -> Message | None:
        """Serve, forward, or apply a push."""
        if message.kind == "push":
            return self._apply_push(message)
        if message.kind == "request":
            return await self._serve(message)
        return make_error(
            self.name,
            message.request_id,
            "protocol",
            f"proxy cannot handle kind {message.kind!r}",
        )

    def _apply_push(self, message: Message) -> Message:
        documents = message.payload.get("documents")
        if not isinstance(documents, list):
            return make_error(
                self.name, message.request_id, "protocol",
                "push needs a documents list",
            )
        mode = message.payload.get("mode", "replace")
        incoming: dict[str, int] = {}
        for entry in documents:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
            ):
                # one malformed entry poisons the whole push
                return make_error(
                    self.name, message.request_id, "protocol",
                    "push entries must be (doc_id, size) pairs",
                )
            incoming[entry[0]] = int(entry[1])
        if mode == "replace":
            self._holdings = incoming
        else:
            self._holdings.update(incoming)
        pushed_bytes = 0
        for size in incoming.values():
            pushed_bytes += size
        self.metrics.counter(f"proxy.{self.name}.pushes").inc()
        self.metrics.counter(f"proxy.{self.name}.pushed_bytes").inc(pushed_bytes)
        self.metrics.trace_event(
            "push",
            time=self._loop_time(),
            proxy=self.name,
            documents=len(incoming),
            bytes=pushed_bytes,
            mode=str(mode),
        )
        return Message(
            kind="ack",
            sender=self.name,
            request_id=message.request_id,
            payload={"documents": len(incoming)},
            body_bytes=16,
        )

    def _local_response(self, message: Message, doc_id: str, size: int) -> Message:
        demand_key = message.payload.get("req")
        duplicate = (
            isinstance(demand_key, str)
            and bool(demand_key)
            and self._dedupe.seen(demand_key)
        )
        if duplicate:
            self.metrics.counter(f"proxy.{self.name}.duplicate_requests").inc()
            self.metrics.counter(f"proxy.{self.name}.duplicate_bytes").inc(size)
        else:
            self.metrics.counter(f"proxy.{self.name}.hits").inc()
            self.metrics.counter(f"proxy.{self.name}.bytes_served").inc(size)
            if self._breaker.state == BREAKER_OPEN:
                # Partitioned from the origin but still serving what
                # dissemination left here — possibly stale, better than
                # nothing (the paper's proxies hold immutable copies).
                self.metrics.counter(f"proxy.{self.name}.stale_serves").inc()
        return make_response(
            self.name, message.request_id, doc_id, size, self.name
        )

    def _queue_miss(self, doc_id: str, timestamp: float) -> None:
        if doc_id in self._missed:
            return
        if len(self._missed) >= self._miss_queue_limit:
            self.metrics.counter(f"proxy.{self.name}.miss_queue_overflow").inc()
            return
        self._missed[doc_id] = timestamp
        self.metrics.counter(f"proxy.{self.name}.queued_misses").inc()

    def _schedule_recovery(self) -> None:
        if not self._missed:
            return
        if self._recovery_task is not None and not self._recovery_task.done():
            return
        loop = asyncio.get_running_loop()
        self._recovery_task = loop.create_task(self._recover_misses())

    async def _recover_misses(self) -> None:
        """Fetch queued misses into holdings once the upstream is back."""
        while self._missed:
            doc_id, timestamp = next(iter(self._missed.items()))
            message = make_request(
                self.name,
                self._endpoint.next_request_id(),
                doc_id,
                timestamp,
            )
            try:
                reply = await self._endpoint.call(
                    self._upstream_for(doc_id, 0),
                    message,
                    timeout=self._upstream_timeout,
                )
            except TransportError:
                self._breaker.record_failure()
                return  # upstream flaky again; retry on the next close
            except RuntimeProtocolError:
                # e.g. the document no longer exists; drop it for good.
                # Safe window: pop(doc_id, None) tolerates a concurrent
                # _queue_miss re-adding the key — it just re-queues and
                # the next while-pass re-reads fresh state.
                self._missed.pop(doc_id, None)  # repro-lint: disable=A001
                continue
            self._breaker.record_success()
            # Safe window: same pop-with-default idiom as above; a
            # concurrent re-queue of doc_id after our successful fetch
            # is served from holdings on its next request anyway.
            self._missed.pop(doc_id, None)  # repro-lint: disable=A001
            size = reply.payload.get("size")
            if isinstance(size, (int, float)):
                self._holdings[doc_id] = int(size)
                self.metrics.counter(
                    f"proxy.{self.name}.recovered_misses"
                ).inc()

    async def _serve(self, message: Message) -> Message:
        doc_id = message.payload.get("doc_id")
        if not isinstance(doc_id, str):
            return make_error(
                self.name, message.request_id, "protocol",
                "request needs a doc_id",
            )
        size = self._holdings.get(doc_id)
        if size is not None:
            return self._local_response(message, doc_id, size)

        timestamp = message.payload.get("timestamp")
        timestamp = float(timestamp) if isinstance(timestamp, (int, float)) else 0.0
        if not self._breaker.allow():
            # Fast-fail: don't burn an upstream timeout per miss while
            # the breaker is open; remember the miss for recovery.
            self._queue_miss(doc_id, timestamp)
            self.metrics.counter(f"proxy.{self.name}.breaker_fast_fails").inc()
            return make_error(
                self.name, message.request_id, "transport",
                f"upstream {self._upstream!r} unavailable (circuit open)",
            )

        self.metrics.counter(f"proxy.{self.name}.forwards").inc()
        forwarded = Message(
            kind="request",
            sender=self.name,
            request_id=message.request_id,
            payload=dict(message.payload),
            body_bytes=message.body_bytes,
        )
        attempts = 1 + self._forward_retries
        for attempt in range(attempts):
            try:
                reply = await self._endpoint.call(
                    self._upstream_for(doc_id, attempt),
                    forwarded,
                    timeout=self._upstream_timeout,
                )
            except TransportError as err:
                self._breaker.record_failure()
                if attempt + 1 < attempts and self._breaker.allow():
                    self.metrics.counter(
                        f"proxy.{self.name}.forward_retries"
                    ).inc()
                    delay = self._backoff.delay(attempt, self._rng)
                    if delay > 0:
                        await asyncio.sleep(delay)
                    continue
                self._queue_miss(doc_id, timestamp)
                return make_error(
                    self.name, message.request_id, "transport",
                    f"upstream {self._upstream!r} unreachable: {err}",
                )
            except RuntimeProtocolError as err:
                # The upstream answered (connectivity is fine): the
                # request itself is bad, and retrying cannot fix it.
                self._breaker.record_success()
                return make_error(
                    self.name, message.request_id, "protocol", str(err)
                )
            self._breaker.record_success()
            self._schedule_recovery()
            return Message(
                kind="response",
                sender=self.name,
                request_id=message.request_id,
                payload=dict(reply.payload),
                body_bytes=reply.body_bytes,
            )
        raise AssertionError("unreachable: forward loop always returns")
