"""Proxy nodes: serve disseminated documents, forward the rest.

A proxy sits at an internal node of the routing tree.  Requests from
clients below it are answered locally when the document is among its
(disseminated) holdings — the bytes then travel only the hops below the
proxy and the origin never sees the request (section 2's
load-balancing effect).  Everything else is forwarded upstream, and the
origin's reply (including speculated riders) is relayed back unchanged.

Holdings change at runtime via ``push`` messages from the dissemination
daemon.
"""

from __future__ import annotations

from ..errors import RuntimeProtocolError, TransportError
from .messages import Message, make_error, make_response
from .metrics import MetricsRegistry
from .transport import Endpoint


class ProxyNode:
    """Protocol logic of one proxy; bind ``handle`` to its endpoint.

    Args:
        name: Endpoint/tree-node name of this proxy.
        endpoint: The proxy's own endpoint (used to call upstream).
        upstream: Endpoint name to forward misses to (origin or a
            higher proxy).
        holdings: Initial ``doc_id → size`` holdings.
        metrics: Shared metrics registry.
        upstream_timeout: Per-forward timeout in seconds (None waits
            forever).
    """

    def __init__(
        self,
        name: str,
        endpoint: Endpoint,
        *,
        upstream: str,
        holdings: dict[str, int] | None = None,
        metrics: MetricsRegistry | None = None,
        upstream_timeout: float | None = None,
    ):
        self.name = name
        self._endpoint = endpoint
        self._upstream = upstream
        self._holdings: dict[str, int] = dict(holdings or {})
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._upstream_timeout = upstream_timeout

    @property
    def holdings(self) -> dict[str, int]:
        """Current holdings (``doc_id → size``), a defensive copy."""
        return dict(self._holdings)

    async def handle(self, message: Message) -> Message | None:
        """Serve, forward, or apply a push."""
        if message.kind == "push":
            return self._apply_push(message)
        if message.kind == "request":
            return await self._serve(message)
        return make_error(
            self.name,
            message.request_id,
            "protocol",
            f"proxy cannot handle kind {message.kind!r}",
        )

    def _apply_push(self, message: Message) -> Message:
        documents = message.payload.get("documents")
        if not isinstance(documents, list):
            return make_error(
                self.name, message.request_id, "protocol",
                "push needs a documents list",
            )
        mode = message.payload.get("mode", "replace")
        incoming: dict[str, int] = {}
        for entry in documents:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
            ):
                # one malformed entry poisons the whole push
                return make_error(
                    self.name, message.request_id, "protocol",
                    "push entries must be (doc_id, size) pairs",
                )
            incoming[entry[0]] = int(entry[1])
        if mode == "replace":
            self._holdings = incoming
        else:
            self._holdings.update(incoming)
        pushed_bytes = 0
        for size in incoming.values():
            pushed_bytes += size
        self.metrics.counter(f"proxy.{self.name}.pushes").inc()
        self.metrics.counter(f"proxy.{self.name}.pushed_bytes").inc(pushed_bytes)
        return Message(
            kind="ack",
            sender=self.name,
            request_id=message.request_id,
            payload={"documents": len(incoming)},
            body_bytes=16,
        )

    async def _serve(self, message: Message) -> Message:
        doc_id = message.payload.get("doc_id")
        if not isinstance(doc_id, str):
            return make_error(
                self.name, message.request_id, "protocol",
                "request needs a doc_id",
            )
        size = self._holdings.get(doc_id)
        if size is not None:
            self.metrics.counter(f"proxy.{self.name}.hits").inc()
            self.metrics.counter(f"proxy.{self.name}.bytes_served").inc(size)
            return make_response(
                self.name, message.request_id, doc_id, size, self.name
            )

        self.metrics.counter(f"proxy.{self.name}.forwards").inc()
        forwarded = Message(
            kind="request",
            sender=self.name,
            request_id=message.request_id,
            payload=dict(message.payload),
            body_bytes=message.body_bytes,
        )
        try:
            reply = await self._endpoint.call(
                self._upstream, forwarded, timeout=self._upstream_timeout
            )
        except TransportError as err:
            return make_error(
                self.name, message.request_id, "transport",
                f"upstream {self._upstream!r} unreachable: {err}",
            )
        except RuntimeProtocolError as err:
            return make_error(
                self.name, message.request_id, "protocol", str(err)
            )
        return Message(
            kind="response",
            sender=self.name,
            request_id=message.request_id,
            payload=dict(reply.payload),
            body_bytes=reply.body_bytes,
        )
