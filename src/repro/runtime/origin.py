"""The live origin (home) server.

Answers ``request`` messages with the demand document plus any
speculated riders the policy selects — the paper's *speculative
service*: the server, not the client, decides what else to send
(section 3.1).  Each served request also feeds the online dependency
estimator and a bounded history buffer the dissemination daemon
replans from.
"""

from __future__ import annotations

from collections import deque

from ..config import BASELINE, BaselineConfig
from ..speculation.policies import SpeculationPolicy
from ..trace.records import Document, Request, Trace
from .estimator import OnlineDependencyEstimator
from .messages import Message, make_error, make_response
from .metrics import MetricsRegistry, default_registry
from .resilience import DuplicateFilter


class OriginServer:
    """Protocol logic of the origin; transport-agnostic.

    Wire ``handle`` into either transport: an in-memory
    :class:`~repro.runtime.transport.Endpoint` or a
    :class:`~repro.runtime.transport.TcpServer`.

    Args:
        catalog: The servable documents.
        estimator: Online dependency estimator (already warmed, or
            learning in-band).
        policy: Speculation policy; None serves demand-only (the
            baseline arm).
        config: Cost model (``max_size`` caps speculated documents).
        metrics: Shared metrics registry.
        name: Endpoint name used in replies.
        history_limit: Served requests kept for the dissemination
            daemon's replans.
    """

    def __init__(
        self,
        catalog: dict[str, Document],
        *,
        estimator: OnlineDependencyEstimator,
        policy: SpeculationPolicy | None = None,
        config: BaselineConfig = BASELINE,
        metrics: MetricsRegistry | None = None,
        name: str = "home-server",
        history_limit: int = 200_000,
    ):
        self._catalog = catalog
        self._estimator = estimator
        self._policy = policy
        self._config = config
        self.metrics = metrics if metrics is not None else default_registry()
        self.name = name
        self._history: deque[Request] = deque(maxlen=history_limit)
        self._dedupe = DuplicateFilter()

    async def handle(self, message: Message) -> Message | None:
        """Answer one inbound message; never raises to the transport."""
        if message.kind == "request":
            return self._respond(message)
        if message.kind == "stats":
            return Message(
                kind="stats-reply",
                sender=self.name,
                request_id=message.request_id,
                payload=self.metrics.snapshot(),
                body_bytes=256,
            )
        return make_error(
            self.name,
            message.request_id,
            "protocol",
            f"origin cannot handle kind {message.kind!r}",
        )

    def _respond(self, message: Message) -> Message:
        payload = message.payload
        doc_id = payload.get("doc_id")
        client = payload.get("client") or message.sender
        timestamp = payload.get("timestamp")
        if not isinstance(doc_id, str) or not isinstance(timestamp, (int, float)):
            return make_error(
                self.name, message.request_id, "protocol",
                "request needs doc_id and a numeric timestamp",
            )
        document = self._catalog.get(doc_id)
        if document is None:
            return make_error(
                self.name, message.request_id, "protocol",
                f"unknown document {doc_id!r}",
            )

        # At-least-once accounting: a retry of a demand the origin
        # already served (its reply was lost in flight) is served again
        # but counted as duplicate service, not fresh load — otherwise
        # every dropped reply would inflate server load and speculative
        # push bytes beyond what the batch replay can reproduce.
        demand_key = payload.get("req")
        duplicate = (
            isinstance(demand_key, str)
            and bool(demand_key)
            and self._dedupe.seen(demand_key)
        )
        if duplicate:
            self.metrics.counter("origin.duplicate_requests").inc()
            self.metrics.counter("origin.duplicate_bytes").inc(document.size)
        else:
            self.metrics.counter("origin.requests").inc()
            self.metrics.counter("origin.bytes_served").inc(document.size)
            self._history.append(
                Request(
                    timestamp=float(timestamp),
                    client=str(client),
                    doc_id=doc_id,
                    size=document.size,
                )
            )
            self._estimator.observe(str(client), doc_id, float(timestamp))

        riders: list[tuple[str, int]] = []
        if self._policy is not None:
            cached = set(payload.get("digest", ()))
            cached.add(doc_id)  # the demand document rides anyway
            for candidate in self._policy.select(
                doc_id, self._estimator.model, self._catalog
            ):
                rider = self._catalog.get(candidate.doc_id)
                if rider is None or rider.size > self._config.max_size:
                    continue
                if candidate.doc_id in cached:
                    continue
                riders.append((rider.doc_id, rider.size))
                if duplicate:
                    self.metrics.counter("origin.duplicate_bytes").inc(
                        rider.size
                    )
                else:
                    self.metrics.counter("origin.speculated_documents").inc()
                    self.metrics.counter("origin.speculated_bytes").inc(
                        rider.size
                    )
                    self.metrics.trace_event(
                        "speculation",
                        time=float(timestamp),
                        demand=doc_id,
                        rider=rider.doc_id,
                        bytes=rider.size,
                        client=str(client),
                    )

        return make_response(
            self.name,
            message.request_id,
            doc_id,
            document.size,
            self.name,
            speculated=riders,
        )

    def recent_trace(self) -> Trace:
        """The buffered served requests as a trace (daemon replan input)."""
        return Trace(list(self._history), self._catalog.values(), sort=True)
