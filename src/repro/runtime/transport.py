"""Pluggable transports: a simulated in-memory network and real TCP.

Two transports implement the same request/reply contract over
:class:`~repro.runtime.messages.Message`:

* :class:`InMemoryNetwork` — endpoints exchange messages through
  bounded asyncio queues with **seeded** latency/bandwidth/jitter and
  optional frame drops, scheduled with ``loop.call_at``.  Run it under
  :func:`~repro.runtime.clock.run_virtual` and the whole system is
  deterministic: same seed and workload → same delivery order → same
  metrics snapshot.  Per-link delivery is FIFO (a later message never
  overtakes an earlier one on the same src→dst link, mirroring a TCP
  stream).
* :class:`TcpServer` / :func:`tcp_call` — the same messages as codec
  frames behind a 4-byte big-endian length prefix on real sockets, for
  ``repro serve``.

Both transports speak a negotiated wire codec (see
:mod:`~repro.runtime.messages`): the packed binary codec by default,
canonical JSON as the debug/interop mode.  The in-memory network
round-trips every delivered message through its codec so simulated runs
exercise the same serialisation path as real sockets; the TCP server
mirrors each connection's first inbound frame unless a codec is forced.

Failure mapping: anything the *network* did wrong (timeout, dropped
frame, refused connection, truncated stream) raises
:class:`~repro.errors.TransportError`; anything the *peer* did wrong
(bad frame contents, unknown kind, oversized frame) raises
:class:`~repro.errors.RuntimeProtocolError`.
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import TYPE_CHECKING, Awaitable, Callable

import numpy as np

from ..errors import RuntimeProtocolError, TransportError
from .messages import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    REPLY_KINDS,
    Codec,
    Message,
    frame,
    make_error,
    raise_if_error,
    resolve_codec,
    sniff_codec,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .faults import FaultInjector

#: An async message handler: returns a reply message or None.
Handler = Callable[[Message], Awaitable[Message | None]]


class Endpoint:
    """One addressable node on an :class:`InMemoryNetwork`.

    Owns a bounded inbox, a pump task that dispatches inbound messages,
    and the pending-reply futures for requests issued via :meth:`call`.
    Obtain instances from :meth:`InMemoryNetwork.endpoint`.
    """

    def __init__(self, network: "InMemoryNetwork", name: str, inbox_limit: int):
        self._network = network
        self.name = name
        self._inbox: asyncio.Queue[Message] = asyncio.Queue(maxsize=inbox_limit)
        self._pending: dict[str, asyncio.Future[Message]] = {}
        self._handler: Handler | None = None
        self._pump_task: asyncio.Task[None] | None = None
        self._dispatch_tasks: set[asyncio.Task[None]] = set()
        self._next_id = 0

    def start(self, handler: Handler | None = None) -> None:
        """Begin pumping the inbox; ``handler`` answers inbound requests."""
        self._handler = handler
        if self._pump_task is None:
            loop = asyncio.get_running_loop()
            self._pump_task = loop.create_task(self._pump())

    def next_request_id(self) -> str:
        """A fresh, globally-unique correlation id."""
        self._next_id += 1
        return f"{self.name}#{self._next_id}"

    async def _pump(self) -> None:
        while True:
            message = await self._inbox.get()
            if message.kind in REPLY_KINDS:
                future = self._pending.pop(message.request_id, None)
                if future is not None and not future.done():
                    future.set_result(message)
                # else: the requester gave up (timed out); drop the reply.
                continue
            if self._handler is None:
                continue
            loop = asyncio.get_running_loop()
            task = loop.create_task(self._dispatch(message))
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._dispatch_tasks.discard)

    async def _dispatch(self, message: Message) -> None:
        assert self._handler is not None
        try:
            reply = await self._handler(message)
        except asyncio.CancelledError:
            raise
        except Exception as err:  # repro-lint: disable=H002
            # Deliberately broad: this is the dispatch boundary, and ANY
            # handler crash must become an error reply instead of
            # stranding the requester until its timeout.  The error-kind
            # mapping preserves the exception class across the wire.
            self._network.handler_errors += 1
            kind = "transport" if isinstance(err, TransportError) else "protocol"
            reply = make_error(
                self.name,
                message.request_id,
                kind,
                f"handler failed: {type(err).__name__}: {err}",
            )
        if reply is not None:
            self._network.deliver(self.name, message.sender, reply)

    async def call(
        self, destination: str, message: Message, *, timeout: float | None = None
    ) -> Message:
        """Send a message and await the reply with its ``request_id``.

        Raises:
            TransportError: On timeout, or when the peer reports a
                transport-level failure.
            RuntimeProtocolError: When the peer reports a protocol
                violation.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future[Message] = loop.create_future()
        self._pending[message.request_id] = future
        self._network.deliver(self.name, destination, message)
        try:
            if timeout is None:
                reply = await future
            else:
                reply = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            raise TransportError(
                f"request {message.request_id} to {destination!r} "
                f"timed out after {timeout}s"
            ) from None
        finally:
            # Cleans up after timeouts AND cancellation of the awaiting
            # task; without this, a cancelled call leaks its future in
            # _pending forever.
            self._pending.pop(message.request_id, None)
        return raise_if_error(reply)

    def cast(self, destination: str, message: Message) -> None:
        """Fire-and-forget send (no reply expected)."""
        self._network.deliver(self.name, destination, message)

    async def close(self) -> None:
        """Cancel the pump and any in-flight dispatch tasks."""
        tasks = list(self._dispatch_tasks)
        if self._pump_task is not None:
            tasks.append(self._pump_task)
            self._pump_task = None
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


class InMemoryNetwork:
    """A deterministic simulated network connecting named endpoints.

    Args:
        seed: Seeds the latency-jitter / frame-drop RNG.
        base_latency: Propagation delay per hop in seconds.
        bandwidth: Link bandwidth in bytes/second (transfer delay is
            ``body_bytes / bandwidth`` per hop).
        jitter: Uniform multiplicative jitter on propagation delay
            (0.2 → up to +20%).
        drop_probability: Chance a frame silently vanishes (senders see
            a timeout) — the retry-path test knob.
        hop_count: Maps ``(src, dst)`` to the hop distance; defaults to
            1 hop for every pair.  The service harness wires in routing
            tree distances here.
        codec: Wire codec name (``"binary"`` or ``"json"``).  Every
            delivered message is round-tripped through this codec, so
            simulated runs exercise the same serialisation path as the
            TCP transport; ``body_bytes`` still drives the latency
            model either way.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        base_latency: float = 0.005,
        bandwidth: float = 1e7,
        jitter: float = 0.2,
        drop_probability: float = 0.0,
        hop_count: Callable[[str, str], int] | None = None,
        codec: str | Codec = "binary",
    ):
        if base_latency < 0:
            raise TransportError("base_latency must be non-negative")
        if bandwidth <= 0:
            raise TransportError("bandwidth must be positive")
        if not 0.0 <= drop_probability < 1.0:
            raise TransportError("drop_probability must be in [0, 1)")
        self._rng = np.random.default_rng(seed)
        self._base_latency = base_latency
        self._bandwidth = bandwidth
        self._jitter = jitter
        self._drop_probability = drop_probability
        self._hop_count = hop_count
        self._codec = resolve_codec(codec)
        self._endpoints: dict[str, Endpoint] = {}
        self._link_clear_at: dict[tuple[str, str], float] = {}
        self._faults: FaultInjector | None = None
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_rejected = 0  # inbox full (backpressure overflow)
        self.frames_inflight = 0  # scheduled, not yet delivered/rejected
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.bytes_dropped = 0
        self.bytes_rejected = 0
        self.bytes_inflight = 0
        self.handler_errors = 0  # handler exceptions converted to replies

    def attach_faults(self, injector: "FaultInjector") -> None:
        """Plug a fault injector in; consulted on every frame delivery."""
        self._faults = injector

    def endpoint(self, name: str, *, inbox_limit: int = 1024) -> Endpoint:
        """Register a new endpoint.

        Raises:
            TransportError: If the name is taken or empty.
        """
        if not name:
            raise TransportError("endpoint name must be non-empty")
        if name in self._endpoints:
            raise TransportError(f"endpoint {name!r} already registered")
        endpoint = Endpoint(self, name, inbox_limit)
        self._endpoints[name] = endpoint
        return endpoint

    def _latency(self, source: str, destination: str, body_bytes: int) -> float:
        hops = 1
        if self._hop_count is not None:
            hops = max(1, self._hop_count(source, destination))
        propagation = self._base_latency
        if self._jitter > 0:
            propagation *= 1.0 + self._jitter * float(self._rng.random())
        delay = hops * (propagation + body_bytes / self._bandwidth)
        if self._faults is not None:
            delay += self._faults.extra_latency(source, destination)
        return delay

    @property
    def codec(self) -> Codec:
        """The wire codec every delivered message round-trips through."""
        return self._codec

    def deliver(self, source: str, destination: str, message: Message) -> None:
        """Schedule a message for delayed delivery.

        The message is serialised and re-parsed through the network's
        codec before scheduling, so the receiver observes exactly what
        the wire format preserves and codec bugs surface synchronously
        at the sender.

        Raises:
            TransportError: If the destination endpoint does not exist.
            RuntimeProtocolError: If the message does not survive the
                wire codec.
        """
        message = self._codec.decode(self._codec.encode(message))
        self.frames_sent += 1
        self.bytes_sent += message.body_bytes
        target = self._endpoints.get(destination)
        if target is None:
            raise TransportError(f"unknown endpoint {destination!r}")
        if self._faults is not None and self._faults.intercept(
            source, destination
        ):
            # Injected fault: crashed node, cut link, or extra drop rate.
            self.frames_dropped += 1
            self.bytes_dropped += message.body_bytes
            return
        if self._drop_probability > 0 and (
            float(self._rng.random()) < self._drop_probability
        ):
            self.frames_dropped += 1
            self.bytes_dropped += message.body_bytes
            return
        loop = asyncio.get_running_loop()
        now = loop.time()
        arrival = now + self._latency(source, destination, message.body_bytes)
        # FIFO per link: arrivals are *strictly* increasing, because the
        # loop's timer heap is not stable — two frames due at the exact
        # same instant may fire in either order.
        link = (source, destination)
        previous = self._link_clear_at.get(link)
        if previous is not None and arrival <= previous:
            arrival = math.nextafter(previous, math.inf)
        self._link_clear_at[link] = arrival
        self.frames_inflight += 1
        self.bytes_inflight += message.body_bytes
        loop.call_at(arrival, self._put, target, message)

    def _put(self, target: Endpoint, message: Message) -> None:
        self.frames_inflight -= 1
        self.bytes_inflight -= message.body_bytes
        try:
            target._inbox.put_nowait(message)
        except asyncio.QueueFull:
            # Bounded-inbox backpressure: overflow frames are dropped and
            # the sender's timeout fires, exactly like a full router queue.
            self.frames_rejected += 1
            self.bytes_rejected += message.body_bytes
            return
        self.frames_delivered += 1
        self.bytes_delivered += message.body_bytes

    def stats(self) -> dict[str, int]:
        """Frame and byte accounting for tests, metrics and debugging.

        The frame and byte families each satisfy the conservation
        identity ``sent == delivered + dropped + rejected + inflight``
        (checked by :func:`~repro.runtime.metrics.verify_conservation`).
        """
        return {
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "frames_dropped": self.frames_dropped,
            "frames_rejected": self.frames_rejected,
            "frames_inflight": self.frames_inflight,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "bytes_dropped": self.bytes_dropped,
            "bytes_rejected": self.bytes_rejected,
            "bytes_inflight": self.bytes_inflight,
            "handler_errors": self.handler_errors,
        }


# -- real TCP ----------------------------------------------------------------


async def _read_body(
    reader: asyncio.StreamReader, max_frame_bytes: int
) -> bytes:
    """Read one length-prefixed frame body without decoding it.

    Raises:
        TransportError: On a truncated stream.
        RuntimeProtocolError: When the peer announces a frame larger
            than ``max_frame_bytes`` — the declared length is rejected
            *before* any body byte is read, so a hostile peer cannot
            make the server buffer an unbounded frame.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
        length = int.from_bytes(header, "big")
        if length > max_frame_bytes:
            raise RuntimeProtocolError(
                f"peer announced a {length}-byte frame "
                f"(cap {max_frame_bytes})"
            )
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as err:
        raise TransportError("stream closed mid-frame") from err
    return body


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Message:
    """Read one length-prefixed message from a stream (codec sniffed).

    Raises:
        TransportError: On a truncated stream.
        RuntimeProtocolError: On an oversized or undecodable frame.
    """
    return Message.decode(await _read_body(reader, max_frame_bytes))


def write_frame(
    writer: asyncio.StreamWriter,
    message: Message,
    codec: str | Codec | None = None,
    *,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Queue one length-prefixed message on a stream.

    ``codec`` selects the wire format (default: binary).
    """
    writer.write(frame(message, codec, max_frame_bytes=max_frame_bytes))


class TcpServer:
    """Serves a message handler over real TCP, one frame per request.

    Connections are persistent: a client may send many frames and
    receives one reply frame per request, in order.

    Args:
        handler: Async callable answering each inbound message.
        host: Interface to bind.
        port: Port to bind; 0 picks an ephemeral port (read it back
            from :attr:`port` after :meth:`start`).
        codec: Reply wire format.  ``None`` (the default) negotiates
            per connection by mirroring the codec of the connection's
            first inbound frame; ``"binary"`` or ``"json"`` forces one
            format regardless of what clients send (``repro serve
            --codec json`` is the debug/interop mode).  Inbound frames
            are always decoded by sniffing, so a forced codec never
            rejects a well-formed client.
        max_frame_bytes: Per-frame size cap enforced on the *declared*
            length before any body byte is read.
        drain_timeout: Seconds :meth:`close` waits for connections that
            are mid-request (handler running or reply being written) to
            flush their final frame before cancelling them.
        stats_hook: Optional ``(direction, message)`` callback invoked
            with ``"delivered"`` for each decoded inbound frame and
            ``"sent"`` for each flushed reply — the deploy layer's
            server-side half of the frame-conservation ledger.
    """

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        codec: str | Codec | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        drain_timeout: float = 5.0,
        stats_hook: Callable[[str, Message], None] | None = None,
    ):
        self._handler = handler
        self._host = host
        self._requested_port = port
        self._forced_codec = None if codec is None else resolve_codec(codec)
        self._max_frame_bytes = max_frame_bytes
        self._drain_timeout = drain_timeout
        self._stats_hook = stats_hook
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task[None]] = set()
        self._busy: set[asyncio.Task[None]] = set()
        self._closing = False
        self.port: int = port
        self.requests_served = 0
        self.protocol_errors = 0

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._requested_port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_loop(reader, writer)
        except asyncio.CancelledError:
            pass  # server closing: drop the connection quietly
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        codec = self._forced_codec
        while True:
            try:
                body = await _read_body(reader, self._max_frame_bytes)
                message = Message.decode(body)
            except TransportError:
                return  # client closed the connection
            except RuntimeProtocolError as err:
                # Hostile or broken peer (oversize announcement,
                # undecodable frame): report the violation on whichever
                # codec is in force and drop the connection instead of
                # trusting any further bytes from the stream.
                self.protocol_errors += 1
                error = make_error("server", "", "protocol", str(err))
                write_frame(writer, error, codec)
                await writer.drain()
                return
            if codec is None:
                # Negotiation: replies mirror the codec of this
                # connection's first inbound frame.
                codec = sniff_codec(body)
            if self._stats_hook is not None:
                self._stats_hook("delivered", message)
            # The handler + reply write is the connection's *busy*
            # window: close() must not cancel it, or the final reply
            # frame of a request already accepted is dropped on the
            # floor (the graceful-shutdown bug this set guards against).
            task = asyncio.current_task()
            if task is not None:
                self._busy.add(task)
            try:
                # Wall-clock is banned repo-wide (D004) because it breaks
                # replayability — but a real-socket round trip has no
                # virtual clock, and the served duration is reporting-only
                # (never feeds a simulation decision).  time.monotonic is
                # the narrow sanctioned exception, scoped by the linter to
                # this module.
                started = time.monotonic()
                reply = await self._handler(message)
                if reply is not None:
                    elapsed = time.monotonic() - started
                    reply.payload["service_seconds"] = round(elapsed, 6)
                    write_frame(writer, reply, codec)
                    await writer.drain()
                    if self._stats_hook is not None:
                        self._stats_hook("sent", reply)
                self.requests_served += 1
            finally:
                if task is not None:
                    self._busy.discard(task)
            if self._closing:
                return  # shutdown requested; reply flushed, now exit

    async def close(self) -> None:
        """Stop accepting, drain in-flight replies, then drop connections.

        Ordering matters: cancelling every connection task immediately
        (the old behaviour) could kill a handler mid-flight or a reply
        mid-write, so a fast shutdown dropped the final frame and the
        client burned a full timeout.  Now busy connections get up to
        ``drain_timeout`` seconds to flush the reply they are serving;
        only idle connections (parked on the next read) are cancelled
        straight away.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + self._drain_timeout
        while True:
            busy = [task for task in self._busy if not task.done()]
            remaining = deadline - time.monotonic()
            if not busy or remaining <= 0:
                break
            await asyncio.wait(busy, timeout=remaining)
        connections = list(self._connections)
        for task in connections:
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)


async def tcp_call(
    host: str,
    port: int,
    message: Message,
    *,
    timeout: float = 5.0,
    codec: str | Codec | None = None,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> Message:
    """One request/reply round trip against a :class:`TcpServer`.

    Opens a connection, sends one frame (binary by default; pass
    ``codec="json"`` for the debug/interop format), awaits one reply
    frame and closes.  (The load generator keeps persistent
    connections; this helper is for the CLI and tests.)

    Raises:
        TransportError: On connect failure, timeout or truncation.
        RuntimeProtocolError: When the peer reports a protocol error.
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except asyncio.TimeoutError:
        raise TransportError(
            f"connect to {host}:{port} timed out after {timeout}s"
        ) from None
    except (ConnectionError, OSError) as err:
        raise TransportError(f"connect to {host}:{port} failed: {err}") from err
    try:
        write_frame(writer, message, codec)
        await writer.drain()
        reply = await asyncio.wait_for(
            read_frame(reader, max_frame_bytes=max_frame_bytes), timeout
        )
    except asyncio.TimeoutError:
        raise TransportError(
            f"request {message.request_id} to {host}:{port} "
            f"timed out after {timeout}s"
        ) from None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return raise_if_error(reply)


__all__: list[str] = [
    "Endpoint",
    "Handler",
    "InMemoryNetwork",
    "TcpServer",
    "read_frame",
    "tcp_call",
    "write_frame",
]
