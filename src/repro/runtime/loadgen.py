"""The asyncio load generator: live clients with caches and backpressure.

One worker per client replays that client's requests **in order**
(cache semantics require per-client time order); a global semaphore
caps in-flight requests (admission control), every request carries a
timeout, and timed-out requests are retried a bounded number of times
with a fresh correlation id.

Accounting happens **client-side in the paper's cost units** so a live
run is directly comparable with
:class:`~repro.core.combined.CombinedProtocolSimulator`: the client
knows its depth and the serving node's depth (both from the routing
tree), so it can attribute ``bytes × hops`` and
``ServCost + CommCost·bytes·(hops/depth)`` exactly as the batch replay
does, while measured (virtual) latencies feed separate histograms.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import BASELINE, BaselineConfig
from ..errors import RuntimeProtocolError, TransportError
from ..speculation.caches import ClientCache, make_cache_factory
from ..trace.records import Request
from .messages import Message, make_request
from .metrics import MetricsRegistry, default_registry
from .resilience import BackoffPolicy, retry_rng
from .transport import Endpoint, InMemoryNetwork


@dataclass(frozen=True)
class ClientRoute:
    """Where a client sends its requests, plus the geometry for costing.

    Attributes:
        target: Endpoint name serving this client (its proxy, or the
            origin when no proxy covers it).
        target_depth: Tree depth of that target (0 for the origin).
        depth: Tree depth of the client leaf.
    """

    target: str
    target_depth: int
    depth: int


@dataclass(frozen=True)
class LoadConfig:
    """Load-generation knobs.

    Attributes:
        concurrency: Global in-flight request cap (admission control).
        request_timeout: Seconds before one attempt is abandoned.
        retries: Extra attempts after a timeout before giving up.
        cooperative: Piggyback the client cache digest on requests (the
            paper's cooperative-clients variant; required for exact
            batch parity of speculation decisions).
        inbox_limit: Per-client endpoint inbox bound.
        backoff: Exponential-backoff policy applied between retry
            attempts (seeded jitter; a no-op on fault-free runs, which
            never retry).
        backoff_seed: Seeds each client's jitter RNG (per-client
            streams stay independent and reproducible).
    """

    concurrency: int = 32
    request_timeout: float = 30.0
    retries: int = 1
    cooperative: bool = True
    inbox_limit: int = 64
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    backoff_seed: int = 0


class LoadGenerator:
    """Drives a client population against a live in-memory system.

    Args:
        network: The in-memory network the servers are registered on.
        routes: Per-client routing/costing geometry.
        requests_by_client: Each client's time-ordered request list.
        origin_name: Endpoint name of the origin (for attribution).
        config: Paper cost model (ServCost/CommCost/SessionTimeout).
        load: Concurrency and timeout knobs.
        metrics: Registry receiving all counters/histograms.
        cache_factory: Client cache constructor; defaults to the
            config's SessionTimeout semantics.
        resolver: Optional ``(doc_id, attempt) -> endpoint name`` shard
            resolver.  When a client's route targets the origin
            directly, each attempt's destination is resolved through
            this hook instead — sharded deployments map the logical
            origin onto the consistent-hash owner (and retries fail
            over across replicas).  Accounting is unaffected: replies
            still carry the logical origin as ``served_by``.
    """

    def __init__(
        self,
        network: InMemoryNetwork,
        routes: dict[str, ClientRoute],
        requests_by_client: dict[str, list[Request]],
        *,
        origin_name: str,
        config: BaselineConfig = BASELINE,
        load: LoadConfig | None = None,
        metrics: MetricsRegistry | None = None,
        cache_factory: Callable[[], ClientCache] | None = None,
        resolver: Callable[[str, int], str] | None = None,
    ):
        self._network = network
        self._routes = routes
        self._requests_by_client = requests_by_client
        self._origin_name = origin_name
        self._config = config
        self._load = load if load is not None else LoadConfig()
        self.metrics = metrics if metrics is not None else default_registry()
        self._cache_factory = cache_factory or make_cache_factory(
            config.session_timeout
        )
        self._resolver = resolver

    async def run(self) -> None:
        """Replay every client's stream to completion."""
        semaphore = asyncio.Semaphore(self._load.concurrency)
        loop = asyncio.get_running_loop()
        workers = [
            loop.create_task(self._client_worker(client, requests, semaphore))
            for client, requests in sorted(self._requests_by_client.items())
        ]
        try:
            await asyncio.gather(*workers)
        finally:
            for worker in workers:
                worker.cancel()

    async def _client_worker(
        self,
        client: str,
        requests: list[Request],
        semaphore: asyncio.Semaphore,
    ) -> None:
        route = self._routes[client]
        endpoint = self._network.endpoint(
            client, inbox_limit=self._load.inbox_limit
        )
        endpoint.start(None)  # replies only; clients never serve
        cache = self._cache_factory()
        metrics = self.metrics
        rng = retry_rng(self._load.backoff_seed, client)
        loop = asyncio.get_running_loop()
        try:
            for request in requests:
                cache.access(request.timestamp)
                metrics.counter("accesses").inc()
                metrics.counter("accessed_bytes").inc(request.size)
                if cache.contains(request.doc_id):
                    metrics.counter("cache_hits").inc()
                    continue
                metrics.counter("miss_bytes").inc(request.size)

                digest: tuple[str, ...] = ()
                if self._load.cooperative:
                    digest = tuple(sorted(cache.digest()))
                async with semaphore:
                    started = loop.time()
                    reply = await self._attempt(
                        endpoint, route, request, digest, rng
                    )
                    elapsed = loop.time() - started
                if reply is None:
                    metrics.counter("requests_failed").inc()
                    continue
                metrics.histogram("request_latency").observe(elapsed)
                self._account(route, request, reply.payload, cache)
                if metrics.tracer is not None:
                    metrics.trace_event(
                        "request",
                        time=loop.time(),
                        client=client,
                        doc=request.doc_id,
                        served_by=str(
                            reply.payload.get("served_by", self._origin_name)
                        ),
                        latency=round(elapsed, 9),
                    )
        finally:
            await endpoint.close()

    async def _attempt(
        self,
        endpoint: Endpoint,
        route: ClientRoute,
        request: Request,
        digest: tuple[str, ...],
        rng: np.random.Generator,
    ) -> Message | None:
        """One request with bounded retries; None when all attempts fail.

        Transport failures (timeouts, dropped frames) are retried with
        exponential backoff under a fresh correlation id but the same
        demand key, so servers can account retries as duplicate
        service.  Protocol errors are *not* retried — the peer answered
        and will answer identically again — and must not escape, or one
        bad document would kill the whole client worker mid-session.
        """
        attempts = 1 + max(0, self._load.retries)
        demand_key = endpoint.next_request_id()
        for attempt in range(attempts):
            message = make_request(
                endpoint.name,
                endpoint.next_request_id(),
                request.doc_id,
                request.timestamp,
                digest=digest,
                demand=demand_key,
            )
            target = route.target
            if self._resolver is not None and target == self._origin_name:
                target = self._resolver(request.doc_id, attempt)
            try:
                return await endpoint.call(
                    target,
                    message,
                    timeout=self._load.request_timeout,
                )
            except TransportError:
                if attempt + 1 < attempts:
                    self.metrics.counter("retries").inc()
                    self.metrics.trace_event(
                        "retry",
                        client=endpoint.name,
                        doc=request.doc_id,
                        attempt=attempt + 1,
                    )
                    delay = self._load.backoff.delay(attempt, rng)
                    if delay > 0:
                        await asyncio.sleep(delay)
                continue
            except RuntimeProtocolError:
                self.metrics.counter("protocol_errors").inc()
                return None
        return None

    def _account(
        self,
        route: ClientRoute,
        request: Request,
        payload: dict,
        cache: ClientCache,
    ) -> None:
        """Attribute one reply in batch-identical cost units."""
        metrics = self.metrics
        config = self._config
        depth = route.depth
        size = int(payload.get("size", request.size))
        served_by = payload.get("served_by", self._origin_name)

        metrics.counter("received_bytes").inc(size)
        if served_by == self._origin_name:
            metrics.counter("origin_requests").inc()
            serving_depth = 0
        else:
            metrics.counter("proxy_requests").inc()
            serving_depth = route.target_depth
        hops = depth - serving_depth
        metrics.counter("bytes_hops").inc(size * hops)
        metrics.counter("service_cost").inc(
            config.serv_cost
            + config.comm_cost * size * (hops / depth if depth else 1.0)
        )
        cache.insert(request.doc_id, size)

        for entry in payload.get("speculated", ()):
            rider_id, rider_size = str(entry[0]), int(entry[1])
            metrics.counter("speculated_documents").inc()
            metrics.counter("speculated_bytes").inc(rider_size)
            metrics.counter("bytes_hops").inc(rider_size * depth)
            cache.insert(rider_id, rider_size)
