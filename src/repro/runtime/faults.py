"""Scripted, deterministic fault injection for the in-memory network.

A :class:`FaultPlan` is a time-ordered script of fault events (link
partitions, per-link or global drop/latency ramps, node crash +
restart, daemon pauses) expressed in virtual seconds from run start.
A :class:`FaultInjector` executes the plan on the event loop and is
consulted by :class:`~repro.runtime.transport.InMemoryNetwork` on
every frame, so the same seed and plan reproduce the same failures,
frame for frame — chaos runs are as replayable as clean runs.

Semantics:

* **crash** — frames to *and* from the node are dropped until the
  matching ``restart``; registered crash hooks run (a proxy loses its
  holdings), and restart hooks run on recovery (the dissemination
  daemon anti-entropy re-push).
* **partition / heal** — frames between the two named endpoints are
  dropped in both directions.
* **drop_rate** — extra seeded frame-drop probability, globally
  (empty target), per node, or per directed link.
* **latency_add** — extra one-way delay, globally, per node, or per
  directed link (an origin brownout is ``latency_add`` on the origin).
* **pause_daemon / resume_daemon** — gates the dissemination daemon's
  replan loop via its registered pause/resume hooks.

Every applied event is counted (``faults.<action>``) and appended to
the metrics registry's event timeline, so a chaos run's snapshot
carries its own fault history.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import SimulationError
from .metrics import MetricsRegistry

#: Every action a fault event may carry.
ACTIONS = frozenset(
    {
        "crash",
        "restart",
        "partition",
        "heal",
        "drop_rate",
        "latency_add",
        "pause_daemon",
        "resume_daemon",
    }
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    Attributes:
        at: Virtual seconds after run start when the event fires.
        action: One of :data:`ACTIONS`.
        target: ``()`` for global scope, ``(node,)`` for one endpoint,
            ``(src, dst)`` for one directed link (``partition`` treats
            the pair as bidirectional).
        value: Action parameter (drop probability or extra seconds).
    """

    at: float
    action: str
    target: tuple[str, ...] = ()
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError("fault event time must be non-negative")
        if self.action not in ACTIONS:
            raise SimulationError(f"unknown fault action {self.action!r}")
        if self.action == "drop_rate" and not 0.0 <= self.value <= 1.0:
            raise SimulationError("drop_rate value must be in [0, 1]")
        if self.action == "latency_add" and self.value < 0:
            raise SimulationError("latency_add value must be non-negative")

    def label(self) -> str:
        """Compact human-readable form for logs and snapshots."""
        scope = "/".join(self.target) if self.target else "*"
        if self.action in ("drop_rate", "latency_add"):
            return f"{self.action}[{scope}]={self.value:g}"
        return f"{self.action}[{scope}]"


@dataclass
class FaultPlan:
    """A scripted sequence of fault events, built fluently.

    Builder methods append paired apply/revert events; ``until=None``
    leaves a fault in place for the rest of the run.
    """

    events: list[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append one raw event."""
        self.events.append(event)
        return self

    def crash(
        self, node: str, *, at: float, restart_at: float | None = None
    ) -> "FaultPlan":
        """Crash ``node`` at ``at``; restart it at ``restart_at`` (or never)."""
        self.add(FaultEvent(at=at, action="crash", target=(node,)))
        if restart_at is not None:
            if restart_at <= at:
                raise SimulationError("restart_at must come after the crash")
            self.add(FaultEvent(at=restart_at, action="restart", target=(node,)))
        return self

    def partition(
        self, a: str, b: str, *, at: float, heal_at: float | None = None
    ) -> "FaultPlan":
        """Cut the ``a`` ↔ ``b`` link at ``at``; heal it at ``heal_at``."""
        self.add(FaultEvent(at=at, action="partition", target=(a, b)))
        if heal_at is not None:
            if heal_at <= at:
                raise SimulationError("heal_at must come after the partition")
            self.add(FaultEvent(at=heal_at, action="heal", target=(a, b)))
        return self

    def drop_rate(
        self,
        probability: float,
        *,
        at: float = 0.0,
        until: float | None = None,
        target: tuple[str, ...] = (),
    ) -> "FaultPlan":
        """Add an extra frame-drop probability over a window."""
        self.add(
            FaultEvent(at=at, action="drop_rate", target=target, value=probability)
        )
        if until is not None:
            if until <= at:
                raise SimulationError("until must come after at")
            self.add(FaultEvent(at=until, action="drop_rate", target=target))
        return self

    def latency_add(
        self,
        extra_seconds: float,
        *,
        at: float,
        until: float | None = None,
        target: tuple[str, ...] = (),
    ) -> "FaultPlan":
        """Add one-way delay over a window (a brownout when targeted)."""
        self.add(
            FaultEvent(
                at=at, action="latency_add", target=target, value=extra_seconds
            )
        )
        if until is not None:
            if until <= at:
                raise SimulationError("until must come after at")
            self.add(FaultEvent(at=until, action="latency_add", target=target))
        return self

    def pause_daemon(self, *, at: float, until: float | None = None) -> "FaultPlan":
        """Pause the dissemination daemon's replan loop over a window."""
        self.add(FaultEvent(at=at, action="pause_daemon"))
        if until is not None:
            if until <= at:
                raise SimulationError("until must come after at")
            self.add(FaultEvent(at=until, action="resume_daemon"))
        return self

    def ordered(self) -> list[FaultEvent]:
        """Events sorted by fire time, ties kept in insertion order."""
        indexed = sorted(
            enumerate(self.events), key=lambda pair: (pair[1].at, pair[0])
        )
        return [event for _, event in indexed]


class FaultInjector:
    """Executes a :class:`FaultPlan` and answers the network's queries.

    Args:
        plan: The scripted fault sequence.
        seed: Seeds the injector's own drop RNG (independent of the
            network's jitter RNG, so adding faults never perturbs the
            clean latency stream).
        metrics: Registry receiving ``faults.*`` counters and the
            event timeline; a private one is created when omitted.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ):
        self._plan = plan
        self._rng = np.random.default_rng((seed, 0xFA))
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._down: set[str] = set()
        self._cut: set[frozenset[str]] = set()
        self._drop_rates: dict[tuple[str, ...], float] = {}
        self._latency_adds: dict[tuple[str, ...], float] = {}
        self._crash_hooks: dict[str, Callable[[], None]] = {}
        self._restart_hooks: dict[str, Callable[[], None]] = {}
        self._pause_hook: Callable[[], None] | None = None
        self._resume_hook: Callable[[], None] | None = None
        self.log: list[tuple[float, str]] = []

    def register_node(
        self,
        name: str,
        *,
        on_crash: Callable[[], None] | None = None,
        on_restart: Callable[[], None] | None = None,
    ) -> None:
        """Attach crash/restart callbacks for one endpoint."""
        if on_crash is not None:
            self._crash_hooks[name] = on_crash
        if on_restart is not None:
            self._restart_hooks[name] = on_restart

    def register_daemon(
        self, *, pause: Callable[[], None], resume: Callable[[], None]
    ) -> None:
        """Attach the dissemination daemon's pause/resume hooks."""
        self._pause_hook = pause
        self._resume_hook = resume

    # -- plan execution ------------------------------------------------------

    def apply(self, event: FaultEvent) -> None:
        """Apply one event's state change and run its hooks."""
        action, target = event.action, event.target
        if action == "crash":
            self._down.add(target[0])
            hook = self._crash_hooks.get(target[0])
            if hook is not None:
                hook()
        elif action == "restart":
            self._down.discard(target[0])
            hook = self._restart_hooks.get(target[0])
            if hook is not None:
                hook()
        elif action == "partition":
            self._cut.add(frozenset(target))
        elif action == "heal":
            self._cut.discard(frozenset(target))
        elif action == "drop_rate":
            if event.value > 0.0:
                self._drop_rates[target] = event.value
            else:
                self._drop_rates.pop(target, None)
        elif action == "latency_add":
            if event.value > 0.0:
                self._latency_adds[target] = event.value
            else:
                self._latency_adds.pop(target, None)
        elif action == "pause_daemon":
            if self._pause_hook is not None:
                self._pause_hook()
        elif action == "resume_daemon":
            if self._resume_hook is not None:
                self._resume_hook()
        self.metrics.counter(f"faults.{action}").inc()
        self.log.append((event.at, event.label()))
        self.metrics.record_event(event.at, f"fault:{event.label()}")
        self.metrics.trace_event(
            "fault", time=event.at, action=action, label=event.label()
        )

    async def run(self) -> None:
        """Fire every plan event at its virtual time, then return."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        for event in self._plan.ordered():
            delay = event.at - (loop.time() - start)
            if delay > 0:
                await asyncio.sleep(delay)
            self.apply(event)

    # -- network queries -----------------------------------------------------

    def _keys(self, source: str, destination: str) -> tuple[tuple[str, ...], ...]:
        return ((), (source,), (destination,), (source, destination))

    def intercept(self, source: str, destination: str) -> bool:
        """Whether the network must drop this frame right now."""
        if source in self._down or destination in self._down:
            return True
        if frozenset((source, destination)) in self._cut:
            return True
        if self._drop_rates:
            chance = 0.0
            for key in self._keys(source, destination):
                chance = max(chance, self._drop_rates.get(key, 0.0))
            if chance > 0.0 and float(self._rng.random()) < chance:
                return True
        return False

    def extra_latency(self, source: str, destination: str) -> float:
        """Additional one-way delay currently injected on this link."""
        if not self._latency_adds:
            return 0.0
        extra = 0.0
        for key in self._keys(source, destination):
            extra += self._latency_adds.get(key, 0.0)
        return extra

    def is_down(self, node: str) -> bool:
        """Whether ``node`` is currently crashed."""
        return node in self._down


__all__ = ["ACTIONS", "FaultEvent", "FaultInjector", "FaultPlan"]
