"""Resilience primitives: backoff, circuit breaking, duplicate filtering.

The live runtime's failure paths all funnel through three small,
seed-deterministic mechanisms:

* :class:`BackoffPolicy` — exponential backoff with *seeded* jitter for
  retry loops (the load generator's request retries and the proxy's
  upstream forwards).  The caller owns the RNG, so one policy object
  can serve many independent, reproducible retry streams.
* :class:`CircuitBreaker` — a per-upstream closed → open → half-open
  breaker.  After ``failure_threshold`` consecutive transport failures
  the breaker opens and callers fast-fail instead of burning a full
  timeout per request; after ``reset_timeout`` seconds one probe is
  let through (half-open) and its outcome decides between closing and
  re-opening.  Time comes from ``loop.time()`` so the breaker works
  identically under the virtual clock and on real sockets.
* :class:`DuplicateFilter` — a bounded LRU of demand keys giving
  servers at-least-once *accounting*: a retried request whose first
  reply was lost in flight is served again (the client still needs the
  bytes) but counted as ``duplicate_service`` rather than fresh load,
  so live ratios stay comparable with the exactly-once batch replay.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import SimulationError

#: Breaker state names, as used in metrics counter suffixes.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with multiplicative seeded jitter.

    Attributes:
        base: Delay before the first retry, in seconds.
        factor: Multiplier applied per subsequent attempt.
        max_delay: Upper clamp on the raw (un-jittered) delay.
        jitter: Fraction of the delay that is randomised away
            (0.5 → the actual delay is uniform in [0.5·d, d]).
    """

    base: float = 0.25
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base < 0 or self.factor < 1.0 or self.max_delay < 0:
            raise SimulationError(
                "backoff needs base >= 0, factor >= 1 and max_delay >= 0"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SimulationError("backoff jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """The sleep before retrying after failed attempt ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base * self.factor ** max(0, attempt))
        if self.jitter <= 0.0 or raw <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * float(rng.random()))


def retry_rng(seed: int, name: str) -> np.random.Generator:
    """A per-actor jitter RNG, stable across runs for the same seed+name."""
    digest = 0
    for char in name:
        digest = (digest * 131 + ord(char)) % (2**31)
    return np.random.default_rng((seed, digest))


class CircuitBreaker:
    """A closed/open/half-open breaker for one upstream dependency.

    Args:
        failure_threshold: Consecutive failures that open the breaker.
        reset_timeout: Seconds the breaker stays open before letting a
            single half-open probe through.
        clock: Time source; defaults to the running loop's ``time()``
            (virtual under :func:`~repro.runtime.clock.run_virtual`).
        on_transition: Called with ``(old_state, new_state)`` on every
            state change — wire metrics/event recording here.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 4,
        reset_timeout: float = 60.0,
        clock: Callable[[], float] | None = None,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        if failure_threshold < 1:
            raise SimulationError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise SimulationError("reset_timeout must be positive")
        self._failure_threshold = failure_threshold
        self._reset_timeout = reset_timeout
        self._clock = clock
        self._on_transition = on_transition
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open`` or ``half-open``."""
        return self._state

    def watch(self, hook: Callable[[str, str], None]) -> None:
        """Replace the transition callback (owners wire their metrics here)."""
        self._on_transition = hook

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    def _transition(self, new_state: str) -> None:
        if new_state == self._state:
            return
        old_state = self._state
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)

    def allow(self) -> bool:
        """Whether a call may be issued right now.

        Open breakers reject until ``reset_timeout`` has elapsed, then
        admit exactly one probe (half-open).  A rejected caller should
        fail fast with a transport error instead of waiting out a
        timeout.
        """
        if self._state == BREAKER_CLOSED:
            return True
        if self._state == BREAKER_OPEN:
            if self._now() - self._opened_at < self._reset_timeout:
                return False
            self._transition(BREAKER_HALF_OPEN)
            self._probe_in_flight = True
            return True
        # half-open: one probe at a time
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    def record_success(self) -> None:
        """The upstream answered: close from any state."""
        self._failures = 0
        self._probe_in_flight = False
        self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        """A transport failure: count toward opening, or re-open a probe."""
        self._probe_in_flight = False
        if self._state == BREAKER_HALF_OPEN:
            self._opened_at = self._now()
            self._transition(BREAKER_OPEN)
            return
        if self._state == BREAKER_OPEN:
            return  # a straggler from before the breaker opened
        self._failures += 1
        if self._failures >= self._failure_threshold:
            self._opened_at = self._now()
            self._transition(BREAKER_OPEN)


class DuplicateFilter:
    """Bounded LRU set of demand keys for at-least-once accounting.

    Retries carry the same *demand key* (one logical request) under
    fresh correlation ids; a server uses this filter to serve the
    retry while counting it as duplicate service instead of new load.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise SimulationError("duplicate filter capacity must be >= 1")
        self._capacity = capacity
        self._seen: OrderedDict[str, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._seen)

    def seen(self, key: str) -> bool:
        """Record ``key``; True when it was already present (a duplicate)."""
        if key in self._seen:
            self._seen.move_to_end(key)
            return True
        self._seen[key] = None
        if len(self._seen) > self._capacity:
            self._seen.popitem(last=False)
        return False


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BackoffPolicy",
    "CircuitBreaker",
    "DuplicateFilter",
    "retry_rng",
]
