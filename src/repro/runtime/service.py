"""Wiring: build and run the full live system on the in-memory transport.

:func:`run_loadtest` is the one-call harness behind ``repro loadtest``
and the integration tests.  It generates a workload, splits it into a
training half (the paper's HistoryLength) and a serving half, stands up
an origin + one proxy per region on a seeded
:class:`~repro.runtime.transport.InMemoryNetwork`, replays the serving
half through the load generator **twice** — once demand-only
(baseline), once with dissemination holdings and a speculation policy —
and reports the paper's four ratios from the two metrics snapshots.

Because the in-memory network runs under a virtual clock and the
estimator defaults to a frozen (warm-up-trained) model, a run is fully
deterministic *and* decision-for-decision comparable with
:class:`~repro.core.combined.CombinedProtocolSimulator` on the same
workload — ``verify_batch=True`` performs that comparison inline.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import Any

from ..config import BASELINE, BaselineConfig
from ..core.combined import CombinedProtocolSimulator, CombinedResult
from ..core.planner import DisseminationPlanner
from ..errors import RuntimeProtocolError, SimulationError
from ..speculation.dependency import DependencyModel
from ..speculation.metrics import SpeculationRatios
from ..speculation.policies import ThresholdPolicy
from ..topology.builder import build_clientele_tree
from ..topology.tree import RoutingTree
from ..trace.records import Trace
from ..workload.generator import GeneratorConfig, SyntheticTraceGenerator
from .clock import run_virtual
from .daemon import DisseminationDaemon
from .estimator import OnlineDependencyEstimator
from .loadgen import ClientRoute, LoadConfig, LoadGenerator
from .metrics import MetricsRegistry, live_ratios
from .origin import OriginServer
from .proxy import ProxyNode
from .transport import InMemoryNetwork


@dataclass(frozen=True)
class LiveSettings:
    """Knobs for one live run.

    Attributes:
        budget_bytes: Proxy storage budget for the dissemination plan.
        concurrency: Load-generator admission-control cap.
        request_timeout: Per-attempt timeout (virtual seconds).
        retries: Retries per request after a timeout.
        train_fraction: Leading fraction of the trace used as history.
        learn_online: Keep updating ``P`` from live requests (breaks
            exact batch parity; the batch reference fits on history
            only).
        cooperative: Piggyback client cache digests (required for exact
            parity of speculation decisions).
        dissemination_interval: Virtual seconds between daemon replans;
            None plans once up front and never replans (the
            parity-preserving default).
        seed: Seed for the network's latency/drop RNG.
        drop_probability: Frame-drop rate (exercises retry paths).
        refresh_interval: Estimator observations between bounded
            closure refreshes when learning online.
    """

    budget_bytes: float = 2_000_000.0
    concurrency: int = 32
    request_timeout: float = 30.0
    retries: int = 1
    train_fraction: float = 0.5
    learn_online: bool = False
    cooperative: bool = True
    dissemination_interval: float | None = None
    seed: int = 0
    drop_probability: float = 0.0
    refresh_interval: int = 512


@dataclass(frozen=True)
class LiveReport:
    """Everything one live loadtest produced.

    Attributes:
        baseline: Metrics snapshot of the demand-only run.
        speculative: Metrics snapshot of the dissemination+speculation
            run.
        ratios: The paper's four ratios, live-measured.
        batch_ratios: Same three comparable ratios from the batch
            replay (when ``verify_batch`` was requested).
        disseminated_documents: Documents the plan pushed to proxies.
    """

    baseline: dict[str, Any]
    speculative: dict[str, Any]
    ratios: SpeculationRatios
    batch_ratios: SpeculationRatios | None = None
    disseminated_documents: int = 0

    def max_divergence(self) -> float:
        """Largest relative gap between live and batch ratios.

        Compares the three ratios the batch reference can reproduce
        exactly (bandwidth, server load, service time); ``inf`` when no
        batch verification ran.
        """
        if self.batch_ratios is None:
            return math.inf
        gaps = []
        for live, batch in (
            (self.ratios.bandwidth_ratio, self.batch_ratios.bandwidth_ratio),
            (self.ratios.server_load_ratio, self.batch_ratios.server_load_ratio),
            (self.ratios.service_time_ratio, self.batch_ratios.service_time_ratio),
        ):
            scale = abs(batch) if batch else 1.0
            gaps.append(abs(live - batch) / scale)
        return max(gaps)

    def require_convergence(self, tolerance: float = 0.05) -> None:
        """Assert live ratios match the batch reference.

        Raises:
            RuntimeProtocolError: When any comparable ratio diverges
                from the batch replay by more than ``tolerance``.
        """
        divergence = self.max_divergence()
        if divergence > tolerance:
            raise RuntimeProtocolError(
                f"live ratios diverge {divergence:.1%} from batch replay "
                f"(tolerance {tolerance:.0%}): live {self.ratios.format()} "
                f"vs batch {self.batch_ratios.format() if self.batch_ratios else '-'}"
            )


def smoke_workload(seed: int = 0) -> GeneratorConfig:
    """The small deterministic workload ``repro loadtest --smoke`` uses."""
    return GeneratorConfig(
        seed=seed,
        n_pages=80,
        n_clients=60,
        n_sessions=500,
        duration_days=10,
    )


def _region_of(tree: RoutingTree, client: str) -> str | None:
    for node in tree.path_from_root(client):
        if node.startswith("region-"):
            return node
    return None


async def _run_once(
    serve: Trace,
    tree: RoutingTree,
    routes: dict[str, ClientRoute],
    proxies: list[str],
    holdings: dict[str, int],
    *,
    config: BaselineConfig,
    settings: LiveSettings,
    estimator: OnlineDependencyEstimator,
    policy: ThresholdPolicy | None,
) -> dict[str, Any]:
    """One full live replay; returns the metrics snapshot."""
    depth_of = {node: tree.depth(node) for node in tree.nodes()}

    def hop_count(source: str, destination: str) -> int:
        gap = abs(depth_of.get(source, 0) - depth_of.get(destination, 0))
        return gap if gap > 0 else 1

    network = InMemoryNetwork(
        seed=settings.seed,
        drop_probability=settings.drop_probability,
        hop_count=hop_count,
    )
    metrics = MetricsRegistry()
    origin_endpoint = network.endpoint(tree.root)
    origin = OriginServer(
        serve.documents,
        estimator=estimator,
        policy=policy,
        config=config,
        metrics=metrics,
        name=tree.root,
    )
    origin_endpoint.start(origin.handle)

    proxy_endpoints = []
    for name in proxies:
        endpoint = network.endpoint(name)
        node = ProxyNode(
            name,
            endpoint,
            upstream=tree.root,
            holdings=holdings,
            metrics=metrics,
            upstream_timeout=settings.request_timeout,
        )
        endpoint.start(node.handle)
        proxy_endpoints.append(endpoint)

    daemon_task = None
    if settings.dissemination_interval is not None:
        daemon = DisseminationDaemon(
            origin,
            origin_endpoint,
            proxies,
            budget_bytes=settings.budget_bytes,
            interval=settings.dissemination_interval,
            metrics=metrics,
        )
        daemon_task = asyncio.get_running_loop().create_task(daemon.run())

    generator = LoadGenerator(
        network,
        routes,
        serve.by_client(),
        origin_name=tree.root,
        config=config,
        load=LoadConfig(
            concurrency=settings.concurrency,
            request_timeout=settings.request_timeout,
            retries=settings.retries,
            cooperative=settings.cooperative,
        ),
        metrics=metrics,
    )
    try:
        await generator.run()
    finally:
        if daemon_task is not None:
            daemon_task.cancel()
        for endpoint in proxy_endpoints:
            await endpoint.close()
        await origin_endpoint.close()

    for name, value in network.stats().items():
        metrics.counter(f"network.frames_{name}").inc(value)
    return metrics.snapshot()


def _batch_ratios(
    serve: Trace,
    tree: RoutingTree,
    proxies: list[str],
    disseminated: set[str],
    model: DependencyModel,
    policy: ThresholdPolicy,
    config: BaselineConfig,
) -> SpeculationRatios:
    """The comparable ratios from the offline combined replay."""
    simulator = CombinedProtocolSimulator(
        serve, tree, config, model=model, remote_only=False
    )
    base = simulator.run()
    spec = simulator.run(
        proxies=proxies, disseminated=disseminated, policy=policy
    )

    def ratio(numerator: float, denominator: float) -> float:
        if denominator == 0:
            return 1.0 if numerator == 0 else math.inf
        return numerator / denominator

    def request_miss_rate(result: CombinedResult) -> float:
        if result.accesses == 0:
            return 0.0
        return (result.accesses - result.cache_hits) / result.accesses

    return SpeculationRatios(
        bandwidth_ratio=ratio(spec.bytes_hops, base.bytes_hops),
        server_load_ratio=ratio(spec.origin_requests, base.origin_requests),
        service_time_ratio=ratio(spec.service_time, base.service_time),
        miss_rate_ratio=ratio(request_miss_rate(spec), request_miss_rate(base)),
    )


def run_loadtest(
    workload: GeneratorConfig,
    settings: LiveSettings | None = None,
    *,
    config: BaselineConfig = BASELINE,
    verify_batch: bool = False,
) -> LiveReport:
    """Generate a workload and run it live, baseline vs. speculation.

    Args:
        workload: Synthetic workload configuration (seeded).
        settings: Live-run knobs; defaults to :class:`LiveSettings`.
        config: The paper's cost model and timeouts.
        verify_batch: Also replay the serving half through the batch
            combined simulator and attach its ratios for comparison.

    Returns:
        A :class:`LiveReport` with both snapshots and the ratios.

    Raises:
        SimulationError: If the trace is too small to split into
            non-empty training and serving halves.
    """
    settings = settings if settings is not None else LiveSettings()
    trace = SyntheticTraceGenerator(workload).generate().remote_only()
    if len(trace) < 10:
        raise SimulationError("workload too small for a live loadtest")

    boundary = trace.start_time + settings.train_fraction * trace.duration
    train = trace.window(trace.start_time, boundary)
    serve = trace.window(boundary, trace.end_time + 1.0)
    if len(train) == 0 or len(serve) == 0:
        raise SimulationError(
            "train/serve split produced an empty half; "
            "adjust train_fraction or enlarge the workload"
        )

    tree = build_clientele_tree(trace)
    proxies = sorted(
        {
            region
            for client in serve.clients()
            if (region := _region_of(tree, client)) is not None
        }
    )
    routes: dict[str, ClientRoute] = {}
    for client in serve.clients():
        region = _region_of(tree, client)
        target = region if region is not None else tree.root
        routes[client] = ClientRoute(
            target=target,
            target_depth=tree.depth(target) if region is not None else 0,
            depth=tree.depth(client),
        )

    planner = DisseminationPlanner(remote_only=True)
    planner.add_server(tree.root, train)
    plan = planner.plan(settings.budget_bytes)
    plan_docs = plan.documents.get(tree.root, ())
    catalog = trace.documents
    holdings = {
        doc_id: catalog[doc_id].size
        for doc_id in plan_docs
        if doc_id in catalog
    }
    policy = ThresholdPolicy(
        threshold=config.threshold, max_size=config.max_size
    )

    def fresh_estimator() -> OnlineDependencyEstimator:
        estimator = OnlineDependencyEstimator(
            window=config.stride_timeout,
            stride_timeout=config.stride_timeout,
            learn=settings.learn_online,
            refresh_interval=settings.refresh_interval,
        )
        estimator.warm(train)
        return estimator

    baseline_snapshot = run_virtual(
        _run_once(
            serve,
            tree,
            routes,
            proxies,
            {},
            config=config,
            settings=settings,
            estimator=fresh_estimator(),
            policy=None,
        )
    )
    speculative_snapshot = run_virtual(
        _run_once(
            serve,
            tree,
            routes,
            proxies,
            holdings,
            config=config,
            settings=settings,
            estimator=fresh_estimator(),
            policy=policy,
        )
    )

    ratios = live_ratios(speculative_snapshot, baseline_snapshot)
    batch = None
    if verify_batch:
        model = DependencyModel.estimate(
            train,
            window=config.stride_timeout,
            stride_timeout=config.stride_timeout,
        )
        batch = _batch_ratios(
            serve, tree, proxies, set(holdings), model, policy, config
        )
    return LiveReport(
        baseline=baseline_snapshot,
        speculative=speculative_snapshot,
        ratios=ratios,
        batch_ratios=batch,
        disseminated_documents=len(holdings),
    )


def run_smoke(seed: int = 0, *, tolerance: float = 0.05) -> LiveReport:
    """The ``repro loadtest --smoke`` self-test.

    Runs the small smoke workload live, verifies the live ratios
    against the batch reference, and raises on divergence — this is the
    check CI runs after the test suite.

    Raises:
        RuntimeProtocolError: If live and batch ratios diverge beyond
            ``tolerance``.
    """
    report = run_loadtest(
        smoke_workload(seed),
        LiveSettings(seed=seed),
        verify_batch=True,
    )
    report.require_convergence(tolerance)
    return report
