"""Wiring: build and run the full live system on the in-memory transport.

:func:`run_loadtest` is the one-call harness behind ``repro loadtest``
and the integration tests.  It generates a workload, splits it into a
training half (the paper's HistoryLength) and a serving half, stands up
an origin + one proxy per region on a seeded
:class:`~repro.runtime.transport.InMemoryNetwork`, replays the serving
half through the load generator **twice** — once demand-only
(baseline), once with dissemination holdings and a speculation policy —
and reports the paper's four ratios from the two metrics snapshots.

Because the in-memory network runs under a virtual clock and the
estimator defaults to a frozen (warm-up-trained) model, a run is fully
deterministic *and* decision-for-decision comparable with
:class:`~repro.core.combined.CombinedProtocolSimulator` on the same
workload — ``verify_batch=True`` performs that comparison inline.

:func:`run_chaos` (behind ``repro chaos``) replays the same serving
half **four** times: the clean baseline/speculative pair, then the same
pair under a scripted :class:`~repro.runtime.faults.FaultPlan` — proxy
crash + restart, frame-drop ramps, brownouts, partitions.  Because both
arms of each pair suffer identical faults, the four ratios survive the
chaos; :meth:`ChaosReport.require_resilience` asserts they stay within
tolerance of the fault-free ratios while
:func:`~repro.runtime.metrics.verify_conservation` checks that no byte
was conjured or silently lost along the way.
"""

from __future__ import annotations

import asyncio
import math
import warnings
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Iterable

from ..config import BASELINE, SECONDS_PER_DAY, BaselineConfig, DeploySpec
from ..core.combined import CombinedProtocolSimulator, CombinedResult
from ..core.planner import DisseminationPlanner
from ..core.sampling import estimate_ratios
from ..errors import RuntimeProtocolError, SimulationError
from ..obs import (
    ArmObservations,
    MetricsRegistry,
    ObsBundle,
    ObsConfig,
    RunObservations,
    merge_registry_states,
    run_manifest,
)
from ..perf.parallel import parallel_map
from ..speculation.dependency import DependencyModel
from ..speculation.metrics import SpeculationRatios
from ..speculation.policies import ThresholdPolicy
from ..topology.builder import build_clientele_tree
from ..topology.tree import RoutingTree
from ..trace.profiler import TraceProfiler, WorkloadProfile
from ..trace.records import Trace
from ..trace.sampling import (
    SampledRatioReport,
    SamplingConfig,
    client_hash,
    sample_clients,
)
from ..workload.generator import GeneratorConfig, SyntheticTraceGenerator
from .clock import run_virtual
from .daemon import DisseminationDaemon
from .estimator import OnlineDependencyEstimator
from .faults import FaultInjector, FaultPlan
from .loadgen import ClientRoute, LoadConfig, LoadGenerator
from .metrics import live_ratios, verify_conservation
from .origin import OriginServer
from .proxy import ProxyNode
from .transport import InMemoryNetwork


@dataclass(frozen=True)
class LiveSettings:
    """Knobs for one live run.

    Attributes:
        budget_bytes: Proxy storage budget for the dissemination plan.
        concurrency: Load-generator admission-control cap.
        request_timeout: Per-attempt timeout (virtual seconds).
        retries: Retries per request after a timeout.
        train_fraction: Leading fraction of the trace used as history.
        learn_online: Keep updating ``P`` from live requests (breaks
            exact batch parity; the batch reference fits on history
            only).
        cooperative: Piggyback client cache digests (required for exact
            parity of speculation decisions).
        dissemination_interval: Virtual seconds between daemon replans;
            None plans once up front and never replans (the
            parity-preserving default).
        seed: Seed for the network's latency/drop RNG.
        drop_probability: Frame-drop rate (exercises retry paths).
        refresh_interval: Estimator observations between bounded
            closure refreshes when learning online.
        schedule_seed: When not ``None``, perturb the event loop's
            tie-break order for same-virtual-timestamp timers with this
            seed (see :func:`~repro.runtime.clock.run_virtual`).  Used
            by ``repro racecheck``; the reported ratios must be
            bit-identical for every value.
        codec: Wire codec for the in-memory network (``"binary"`` or
            ``"json"``); every delivered message round-trips through
            it, so both formats are exercised end to end and must
            produce identical ratios.
    """

    budget_bytes: float = 2_000_000.0
    concurrency: int = 32
    request_timeout: float = 30.0
    retries: int = 1
    train_fraction: float = 0.5
    learn_online: bool = False
    cooperative: bool = True
    dissemination_interval: float | None = None
    seed: int = 0
    drop_probability: float = 0.0
    refresh_interval: int = 512
    schedule_seed: int | None = None
    codec: str = "binary"


@dataclass(frozen=True)
class LiveReport:
    """Everything one live loadtest produced.

    Attributes:
        baseline: Metrics snapshot of the demand-only run.
        speculative: Metrics snapshot of the dissemination+speculation
            run.
        ratios: The paper's four ratios, live-measured.
        batch_ratios: Same three comparable ratios from the batch
            replay (when ``verify_batch`` was requested).
        disseminated_documents: Documents the plan pushed to proxies.
        observed: Traces/time-series/manifest for both arms, when the
            run was executed with an enabled
            :class:`~repro.obs.ObsConfig`; None otherwise.
        sampling: Horvitz–Thompson estimates of the four ratios with
            bootstrap intervals when the run replayed a client sample;
            None for full-population runs.
        profile: The sampled workload's profile when the sampling
            config asked for one; None otherwise.
    """

    baseline: dict[str, Any]
    speculative: dict[str, Any]
    ratios: SpeculationRatios
    batch_ratios: SpeculationRatios | None = None
    disseminated_documents: int = 0
    observed: RunObservations | None = None
    sampling: SampledRatioReport | None = None
    profile: WorkloadProfile | None = None

    def max_divergence(self) -> float:
        """Largest relative gap between live and batch ratios.

        Compares the three ratios the batch reference can reproduce
        exactly (bandwidth, server load, service time); ``inf`` when no
        batch verification ran.
        """
        if self.batch_ratios is None:
            return math.inf
        gaps = []
        for live, batch in (
            (self.ratios.bandwidth_ratio, self.batch_ratios.bandwidth_ratio),
            (self.ratios.server_load_ratio, self.batch_ratios.server_load_ratio),
            (self.ratios.service_time_ratio, self.batch_ratios.service_time_ratio),
        ):
            scale = abs(batch) if batch else 1.0
            gaps.append(abs(live - batch) / scale)
        return max(gaps)

    def require_convergence(self, tolerance: float = 0.05) -> None:
        """Assert live ratios match the batch reference.

        Raises:
            RuntimeProtocolError: When any comparable ratio diverges
                from the batch replay by more than ``tolerance``.
        """
        divergence = self.max_divergence()
        if divergence > tolerance:
            raise RuntimeProtocolError(
                f"live ratios diverge {divergence:.1%} from batch replay "
                f"(tolerance {tolerance:.0%}): live {self.ratios.format()} "
                f"vs batch {self.batch_ratios.format() if self.batch_ratios else '-'}"
            )


@dataclass(frozen=True)
class ChaosSettings:
    """Knobs for one chaos run (``repro chaos``).

    Fault times are **fractions of the fault-free run's virtual
    duration** (measured from the clean speculative arm), so one
    setting works across workloads of any size; :func:`run_chaos`
    converts them to absolute virtual seconds when it builds the
    :class:`~repro.runtime.faults.FaultPlan`.

    Attributes:
        live: The underlying live-run knobs (both pairs use them).
        crash_proxy: Index into the sorted proxy list to crash; None
            disables the crash.
        crash_at: When the proxy crashes (fraction of run).
        restart_at: When it restarts; None means it stays down.
        drop_rate: Extra injected frame-drop probability (global).
        drop_from: When the drop ramp starts (fraction of run).
        drop_until: When it ends; None keeps dropping to the end.
        latency_extra: Extra one-way seconds injected (absolute
            seconds, not a fraction — it is a delay, not a time).
        latency_target: Endpoint the brownout applies to; empty means
            every link, and ``"origin"`` is an alias for the tree root.
        latency_from: When the brownout starts (fraction of run).
        latency_until: When it ends; None keeps it to the end.
        partition_proxy: Index of a proxy to partition from the origin;
            None disables the partition.
        partition_from: When the partition starts (fraction of run).
        partition_until: When it heals; None never heals.
        pause_daemon_from: When the dissemination daemon pauses; None
            disables the pause.
        pause_daemon_until: When it resumes; None never resumes.
    """

    live: LiveSettings = field(default_factory=LiveSettings)
    crash_proxy: int | None = 0
    crash_at: float = 0.2
    restart_at: float | None = 0.5
    drop_rate: float = 0.0
    drop_from: float = 0.0
    drop_until: float | None = None
    latency_extra: float = 0.0
    latency_target: str = ""
    latency_from: float = 0.0
    latency_until: float | None = None
    partition_proxy: int | None = None
    partition_from: float = 0.0
    partition_until: float | None = None
    pause_daemon_from: float | None = None
    pause_daemon_until: float | None = None


@dataclass(frozen=True)
class ChaosReport:
    """Everything one chaos run produced.

    Attributes:
        clean: The fault-free baseline/speculative pair and its ratios.
        faulted: The same pair replayed under the fault plan.
        fault_events: ``(virtual_time, label)`` timeline of every fault
            the injector fired during the faulted speculative arm.
    """

    clean: LiveReport
    faulted: LiveReport
    fault_events: tuple[tuple[float, str], ...] = ()

    def max_ratio_divergence(self) -> float:
        """Largest relative gap between faulted and clean ratios.

        Compares all four of the paper's ratios: the whole point of the
        resilience machinery is that scripted faults change *when*
        things happen, not *what* the protocols ultimately deliver.
        """
        gaps = []
        for clean, faulted in (
            (self.clean.ratios.bandwidth_ratio, self.faulted.ratios.bandwidth_ratio),
            (
                self.clean.ratios.server_load_ratio,
                self.faulted.ratios.server_load_ratio,
            ),
            (
                self.clean.ratios.service_time_ratio,
                self.faulted.ratios.service_time_ratio,
            ),
            (self.clean.ratios.miss_rate_ratio, self.faulted.ratios.miss_rate_ratio),
        ):
            scale = abs(clean) if clean else 1.0
            gaps.append(abs(faulted - clean) / scale)
        return max(gaps)

    def require_resilience(self, tolerance: float = 0.05) -> None:
        """Assert the faulted ratios track the fault-free ratios.

        Raises:
            RuntimeProtocolError: When any of the four ratios diverges
                beyond ``tolerance``.
        """
        divergence = self.max_ratio_divergence()
        if divergence > tolerance:
            raise RuntimeProtocolError(
                f"chaos ratios diverge {divergence:.1%} from the fault-free "
                f"run (tolerance {tolerance:.0%}): faulted "
                f"{self.faulted.ratios.format()} vs clean "
                f"{self.clean.ratios.format()}"
            )


def smoke_workload(seed: int = 0) -> GeneratorConfig:
    """The small deterministic workload ``repro loadtest --smoke`` uses."""
    return GeneratorConfig(
        seed=seed,
        n_pages=80,
        n_clients=60,
        n_sessions=500,
        duration_days=10,
    )


def _region_of(tree: RoutingTree, client: str) -> str | None:
    for node in tree.path_from_root(client):
        if node.startswith("region-"):
            return node
    return None


def _restart_hook(
    node: ProxyNode, daemon: DisseminationDaemon | None
) -> Callable[[], None]:
    """A proxy's restart callback: come back up, ask for a re-push."""

    def hook() -> None:
        node.on_restart()
        if daemon is not None:
            daemon.request_repush(node.name)

    return hook


def _shard_clients(
    clients: Iterable[str], workers: int
) -> list[tuple[str, ...]]:
    """Partition clients into ``workers`` hash buckets.

    Uses the same :func:`~repro.trace.sampling.client_hash` family as
    trace sampling and generator sharding, so a client's bucket is a
    pure function of its id — stable across runs and machines.
    """
    buckets: list[list[str]] = [[] for _ in range(workers)]
    for client in sorted(clients):
        buckets[client_hash(client) % workers].append(client)
    return [tuple(bucket) for bucket in buckets]


def _require_shardable(
    settings: LiveSettings, obs: ObsConfig | None
) -> None:
    """Reject configurations whose counters are not shard-exact.

    Raises:
        SimulationError: When a knob couples clients across shards —
            frame drops (shared drop-RNG stream), online learning
            (estimator state depends on global request order), a
            replanning daemon (each shard would push and count its own
            copy), or observability channels (windowed time-series
            sample per-shard virtual clocks).
    """
    problems = []
    if settings.drop_probability != 0.0:
        problems.append("drop_probability must be 0")
    if settings.learn_online:
        problems.append("learn_online must be False")
    if settings.dissemination_interval is not None:
        problems.append("dissemination_interval must be None")
    if obs is not None and obs.enabled:
        problems.append("obs channels must be disabled")
    if problems:
        raise SimulationError(
            "sharded loadtest (workers > 1) requires a "
            f"shard-exact configuration: {'; '.join(problems)}"
        )


async def _run_once(
    serve: Trace,
    tree: RoutingTree,
    routes: dict[str, ClientRoute],
    proxies: list[str],
    holdings: dict[str, int],
    *,
    config: BaselineConfig,
    settings: LiveSettings,
    estimator: OnlineDependencyEstimator,
    policy: ThresholdPolicy | None,
    fault_plan: FaultPlan | None = None,
    obs: ObsConfig | None = None,
    clients: frozenset[str] | None = None,
) -> tuple[MetricsRegistry, ArmObservations | None]:
    """One full live replay; returns (registry, observations-or-None).

    ``clients`` restricts the load generator to a subset of the serving
    trace's clients (the sharded loadtest's per-worker filter); ``None``
    replays every client.  Topology, holdings and routing stay those of
    the full population either way, so shard counters add up exactly.
    """
    depth_of = {node: tree.depth(node) for node in tree.nodes()}

    def hop_count(source: str, destination: str) -> int:
        gap = abs(depth_of.get(source, 0) - depth_of.get(destination, 0))
        return gap if gap > 0 else 1

    network = InMemoryNetwork(
        seed=settings.seed,
        drop_probability=settings.drop_probability,
        hop_count=hop_count,
        codec=settings.codec,
    )
    bundle = ObsBundle.from_config(obs)
    metrics = bundle.registry
    metrics.bind_clock(asyncio.get_running_loop().time)
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(fault_plan, seed=settings.seed, metrics=metrics)
        network.attach_faults(injector)

    origin_endpoint = network.endpoint(tree.root)
    origin = OriginServer(
        serve.documents,
        estimator=estimator,
        policy=policy,
        config=config,
        metrics=metrics,
        name=tree.root,
    )
    origin_endpoint.start(origin.handle)

    proxy_endpoints = []
    proxy_nodes: list[ProxyNode] = []
    for name in proxies:
        endpoint = network.endpoint(name)
        node = ProxyNode(
            name,
            endpoint,
            upstream=tree.root,
            holdings=holdings,
            metrics=metrics,
            upstream_timeout=settings.request_timeout,
            backoff_seed=settings.seed,
        )
        endpoint.start(node.handle)
        proxy_endpoints.append(endpoint)
        proxy_nodes.append(node)

    daemon = None
    daemon_task = None
    if settings.dissemination_interval is not None or injector is not None:
        # Under a fault plan the daemon always runs (interval=None makes
        # it anti-entropy only) so restarted proxies get their holdings
        # re-pushed instead of degrading to forward-everything.
        daemon = DisseminationDaemon(
            origin,
            origin_endpoint,
            proxies,
            budget_bytes=settings.budget_bytes,
            interval=settings.dissemination_interval,
            metrics=metrics,
            static_entries=[
                [doc_id, size] for doc_id, size in sorted(holdings.items())
            ],
        )
        daemon_task = asyncio.get_running_loop().create_task(daemon.run())

    injector_task = None
    if injector is not None:
        for node in proxy_nodes:
            injector.register_node(
                node.name,
                on_crash=node.on_crash,
                on_restart=_restart_hook(node, daemon),
            )
        if daemon is not None:
            injector.register_daemon(pause=daemon.pause, resume=daemon.resume)
        injector_task = asyncio.get_running_loop().create_task(injector.run())

    streams = serve.by_client()
    if clients is not None:
        streams = {
            client: requests
            for client, requests in streams.items()
            if client in clients
        }
    generator = LoadGenerator(
        network,
        routes,
        streams,
        origin_name=tree.root,
        config=config,
        load=LoadConfig(
            concurrency=settings.concurrency,
            request_timeout=settings.request_timeout,
            retries=settings.retries,
            cooperative=settings.cooperative,
            backoff_seed=settings.seed,
        ),
        metrics=metrics,
    )
    loop = asyncio.get_running_loop()
    started = loop.time()
    try:
        await generator.run()
    finally:
        background = [
            task for task in (daemon_task, injector_task) if task is not None
        ]
        for task in background:
            task.cancel()
        if background:
            await asyncio.gather(*background, return_exceptions=True)
        for node in proxy_nodes:
            await node.close()
        for endpoint in proxy_endpoints:
            await endpoint.close()
        await origin_endpoint.close()

    metrics.counter("run.virtual_seconds").inc(round(loop.time() - started, 9))
    for name, value in network.stats().items():
        metrics.counter(f"network.{name}").inc(value)
    observed = (
        bundle.observations() if obs is not None and obs.enabled else None
    )
    return metrics, observed


def _batch_ratios(
    serve: Trace,
    tree: RoutingTree,
    proxies: list[str],
    disseminated: set[str],
    model: DependencyModel,
    policy: ThresholdPolicy,
    config: BaselineConfig,
) -> SpeculationRatios:
    """The comparable ratios from the offline combined replay."""
    simulator = CombinedProtocolSimulator(
        serve, tree, config, model=model, remote_only=False
    )
    base = simulator.run()
    spec = simulator.run(
        proxies=proxies, disseminated=disseminated, policy=policy
    )

    def ratio(numerator: float, denominator: float) -> float:
        if denominator == 0:
            return 1.0 if numerator == 0 else math.inf
        return numerator / denominator

    def request_miss_rate(result: CombinedResult) -> float:
        if result.accesses == 0:
            return 0.0
        return (result.accesses - result.cache_hits) / result.accesses

    return SpeculationRatios(
        bandwidth_ratio=ratio(spec.bytes_hops, base.bytes_hops),
        server_load_ratio=ratio(spec.origin_requests, base.origin_requests),
        service_time_ratio=ratio(spec.service_time, base.service_time),
        miss_rate_ratio=ratio(request_miss_rate(spec), request_miss_rate(base)),
    )


class _PreparedRun:
    """Workload, topology and plan prep shared by every live arm.

    Built once per :func:`run_loadtest` / :func:`run_chaos` call so the
    clean and faulted arms replay byte-identical inputs.
    """

    def __init__(
        self,
        workload: GeneratorConfig,
        settings: LiveSettings,
        config: BaselineConfig,
        sampling: SamplingConfig | None = None,
    ):
        self.settings = settings
        self.config = config
        trace = SyntheticTraceGenerator(workload).generate().remote_only()
        self.sampling_report: SampledRatioReport | None = None
        self.profile: WorkloadProfile | None = None
        if sampling is not None:
            # Estimate the four ratios (with intervals) from the batch
            # replay of the sample while the full trace is still in
            # hand, then thin the live replay to the same clients.  The
            # live arms report the sample's point ratios; the estimates
            # quantify how far the sample can sit from the population.
            train_days = (
                settings.train_fraction * trace.duration / SECONDS_PER_DAY
            )
            self.sampling_report = estimate_ratios(
                trace, sampling, config=config, train_days=train_days
            )
            trace = sample_clients(
                trace, sampling.fraction, seed=sampling.seed
            )
            if sampling.profile:
                self.profile = TraceProfiler(
                    stride_timeout=config.stride_timeout
                ).profile(trace)
        if len(trace) < 10:
            raise SimulationError("workload too small for a live loadtest")

        boundary = trace.start_time + settings.train_fraction * trace.duration
        self.train = trace.window(trace.start_time, boundary)
        self.serve = trace.window(boundary, trace.end_time + 1.0)
        if len(self.train) == 0 or len(self.serve) == 0:
            raise SimulationError(
                "train/serve split produced an empty half; "
                "adjust train_fraction or enlarge the workload"
            )

        self.tree = build_clientele_tree(trace)
        self.proxies = sorted(
            {
                region
                for client in self.serve.clients()
                if (region := _region_of(self.tree, client)) is not None
            }
        )
        self.routes: dict[str, ClientRoute] = {}
        for client in self.serve.clients():
            region = _region_of(self.tree, client)
            target = region if region is not None else self.tree.root
            self.routes[client] = ClientRoute(
                target=target,
                target_depth=self.tree.depth(target) if region is not None else 0,
                depth=self.tree.depth(client),
            )

        planner = DisseminationPlanner(remote_only=True)
        planner.add_server(self.tree.root, self.train)
        plan = planner.plan(settings.budget_bytes)
        plan_docs = plan.documents.get(self.tree.root, ())
        catalog = trace.documents
        self.holdings = {
            doc_id: catalog[doc_id].size
            for doc_id in plan_docs
            if doc_id in catalog
        }
        self.policy = ThresholdPolicy(
            threshold=config.threshold, max_size=config.max_size
        )

    def fresh_estimator(self) -> OnlineDependencyEstimator:
        """A warm estimator; each arm gets its own (no state bleed)."""
        estimator = OnlineDependencyEstimator(
            window=self.config.stride_timeout,
            stride_timeout=self.config.stride_timeout,
            learn=self.settings.learn_online,
            refresh_interval=self.settings.refresh_interval,
        )
        estimator.warm(self.train)
        return estimator

    def arm(
        self,
        *,
        speculative: bool,
        fault_plan: FaultPlan | None = None,
        obs: ObsConfig | None = None,
    ) -> tuple[dict[str, Any], ArmObservations | None]:
        """Run one arm under the virtual clock.

        Returns:
            The arm's metrics snapshot, plus its
            :class:`~repro.obs.ArmObservations` when ``obs`` enables
            any channel (None otherwise).
        """
        metrics, observed = run_virtual(
            _run_once(
                self.serve,
                self.tree,
                self.routes,
                self.proxies,
                self.holdings if speculative else {},
                config=self.config,
                settings=self.settings,
                estimator=self.fresh_estimator(),
                policy=self.policy if speculative else None,
                fault_plan=fault_plan,
                obs=obs,
            ),
            schedule_seed=self.settings.schedule_seed,
        )
        return metrics.snapshot(), observed

    def arm_sharded(self, *, speculative: bool, workers: int) -> dict[str, Any]:
        """Run one arm with its client population split across workers.

        Each worker replays only its hash-bucket of clients
        (:func:`_shard_clients`) against the *full* topology, holdings
        and routing, then exports its registry's exact state; the
        merged snapshot's counters are bit-identical to a
        single-process :meth:`arm` because fault-free proxy state is
        static (holdings change only via pushes or breaker-open miss
        recovery, neither of which sharding preconditions allow), so
        every per-client counter contribution is independent of which
        process serves which client.  The only cross-shard quantities
        are ``run.virtual_seconds`` (a clock, merged by max — each
        shard's virtual clock starts at zero) and the
        ``request_latency`` histogram, whose *observations* depend on
        the shared jitter-RNG draw order and therefore reflect the
        sharded schedule rather than the single-process one.
        """
        buckets = _shard_clients(self.serve.clients(), workers)

        def run_shard(bucket: tuple[str, ...]) -> dict[str, Any]:
            metrics, _ = run_virtual(
                _run_once(
                    self.serve,
                    self.tree,
                    self.routes,
                    self.proxies,
                    self.holdings if speculative else {},
                    config=self.config,
                    settings=self.settings,
                    estimator=self.fresh_estimator(),
                    policy=self.policy if speculative else None,
                    clients=frozenset(bucket),
                ),
                schedule_seed=self.settings.schedule_seed,
            )
            return metrics.export_state()

        states = parallel_map(run_shard, buckets, workers=workers)
        merged = merge_registry_states(
            states, max_counters=("run.virtual_seconds",)
        )
        return merged.snapshot()


def prepare_live_run(
    workload: GeneratorConfig,
    settings: LiveSettings | None = None,
    *,
    config: BaselineConfig = BASELINE,
    sampling: SamplingConfig | None = None,
) -> _PreparedRun:
    """Build the shared workload/topology/plan prep for alternate executors.

    The distributed deployment layer (:mod:`repro.deploy`) replays the
    same prepared inputs through real processes; going through this one
    factory guarantees its arms are byte-identical to the in-process
    arms :func:`execute_loadtest` runs.

    Raises:
        SimulationError: On a workload too small to split.
    """
    settings = settings if settings is not None else LiveSettings()
    return _PreparedRun(workload, settings, config, sampling)


def require_shard_exact(
    settings: LiveSettings, obs: ObsConfig | None = None
) -> None:
    """Public form of the shard-exactness precondition check.

    Multi-process execution — ``workers > 1`` here, or any distributed
    :class:`~repro.config.DeploySpec` — needs counters that are exact
    under any client-to-process assignment.

    Raises:
        SimulationError: When the configuration couples clients across
            processes (see :func:`_require_shardable`).
    """
    _require_shardable(settings, obs)


def _resolve_deploy(
    settings: LiveSettings, deploy: DeploySpec | None, workers: int
) -> tuple[LiveSettings, int]:
    """Fold a local DeploySpec into (settings, workers).

    Raises:
        SimulationError: When the spec is distributed — in-process
            executors cannot honour it, and silently downgrading a
            multi-process request would misreport what ran.
    """
    if deploy is None:
        return settings, workers
    if not deploy.local:
        raise SimulationError(
            f"DeploySpec(processes={deploy.processes}) is distributed; "
            "run it through repro.deploy.execute_deploy "
            "(or Session.deploy)"
        )
    if deploy.codec is not None:
        settings = replace(settings, codec=deploy.codec)
    return settings, deploy.workers


def _deprecated(old: str, new: str) -> None:
    """Emit the one-line migration warning for a legacy entry point."""
    warnings.warn(
        f"{old}() is deprecated; use {new} (see docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def _run_observations(
    workload: GeneratorConfig,
    settings: LiveSettings,
    config: BaselineConfig,
    speculative: ArmObservations | None,
    baseline: ArmObservations | None,
    extra: dict[str, Any] | None = None,
) -> RunObservations | None:
    """Bundle both arms' observations with a provenance manifest."""
    if speculative is None or baseline is None:
        return None
    return RunObservations(
        speculative=speculative,
        baseline=baseline,
        manifest=run_manifest(
            seed=workload.seed,
            config={
                "workload": asdict(workload),
                "settings": asdict(settings),
                "cost_model": asdict(config),
            },
            extra=extra,
        ),
    )


def _sampling_manifest_extra(
    sampling_report: SampledRatioReport | None,
    profile: WorkloadProfile | None,
) -> dict[str, Any] | None:
    """Extra manifest sections for a sampled run (None when unsampled)."""
    extra: dict[str, Any] = {}
    if sampling_report is not None:
        extra["sampling"] = sampling_report.to_dict()
    if profile is not None:
        extra["workload_profile"] = profile.to_dict()
    return extra or None


def execute_loadtest(
    workload: GeneratorConfig,
    settings: LiveSettings | None = None,
    *,
    config: BaselineConfig = BASELINE,
    verify_batch: bool = False,
    obs: ObsConfig | None = None,
    sampling: SamplingConfig | None = None,
    workers: int = 1,
    deploy: DeploySpec | None = None,
) -> LiveReport:
    """Generate a workload and run it live, baseline vs. speculation.

    This is the engine behind :meth:`repro.api.Session.loadtest` (and
    the deprecated :func:`run_loadtest` shim).

    Args:
        workload: Synthetic workload configuration (seeded).
        settings: Live-run knobs; defaults to :class:`LiveSettings`.
        config: The paper's cost model and timeouts.
        verify_batch: Also replay the serving half through the batch
            combined simulator and attach its ratios for comparison.
        obs: Observability channels to enable for both arms; None (or
            an all-off config) runs exactly as before this layer
            existed.
        sampling: Replay only a hash-selected client fraction and
            attach Horvitz–Thompson ratio estimates with bootstrap
            intervals (:class:`~repro.trace.sampling.SamplingConfig`);
            None replays the full population.
        workers: Shard the client population across this many forked
            processes (:func:`~repro.perf.parallel.parallel_map`),
            merging per-shard metrics into counters bit-identical to a
            single-process run.  Requires a shard-exact configuration
            (no drops, no online learning, no replanning daemon, no
            obs channels); 1 runs in-process as before.
        deploy: A **local** :class:`~repro.config.DeploySpec`
            (``processes == 1``); its ``workers``/``codec`` override the
            bare ``workers`` argument and ``settings.codec``, so the
            spec is the single source of execution shape.  A
            distributed spec is rejected — route it through
            :func:`repro.deploy.execute_deploy`.

    Returns:
        A :class:`LiveReport` with both snapshots and the ratios (and
        ``observed`` filled in when ``obs`` enables a channel).

    Raises:
        SimulationError: If the trace is too small to split into
            non-empty training and serving halves, if ``workers > 1``
            with a configuration whose counters are not shard-exact, or
            if ``deploy`` is a distributed spec.
    """
    settings = settings if settings is not None else LiveSettings()
    settings, workers = _resolve_deploy(settings, deploy, workers)
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if workers > 1:
        _require_shardable(settings, obs)
    prepared = _PreparedRun(workload, settings, config, sampling)

    if workers > 1:
        baseline_snapshot = prepared.arm_sharded(
            speculative=False, workers=workers
        )
        speculative_snapshot = prepared.arm_sharded(
            speculative=True, workers=workers
        )
        baseline_obs = speculative_obs = None
    else:
        baseline_snapshot, baseline_obs = prepared.arm(
            speculative=False, obs=obs
        )
        speculative_snapshot, speculative_obs = prepared.arm(
            speculative=True, obs=obs
        )

    ratios = live_ratios(speculative_snapshot, baseline_snapshot)
    batch = None
    if verify_batch:
        model = DependencyModel.estimate(
            prepared.train,
            window=config.stride_timeout,
            stride_timeout=config.stride_timeout,
        )
        batch = _batch_ratios(
            prepared.serve,
            prepared.tree,
            prepared.proxies,
            set(prepared.holdings),
            model,
            prepared.policy,
            config,
        )
    return LiveReport(
        baseline=baseline_snapshot,
        speculative=speculative_snapshot,
        ratios=ratios,
        batch_ratios=batch,
        disseminated_documents=len(prepared.holdings),
        observed=_run_observations(
            workload,
            settings,
            config,
            speculative_obs,
            baseline_obs,
            _sampling_manifest_extra(
                prepared.sampling_report, prepared.profile
            ),
        ),
        sampling=prepared.sampling_report,
        profile=prepared.profile,
    )


def run_loadtest(
    workload: GeneratorConfig,
    settings: LiveSettings | None = None,
    *,
    config: BaselineConfig = BASELINE,
    verify_batch: bool = False,
) -> LiveReport:
    """Deprecated shim; use :meth:`repro.api.Session.loadtest`.

    Delegates unchanged to :func:`execute_loadtest`.
    """
    _deprecated("run_loadtest", "repro.api.Session.loadtest")
    return execute_loadtest(
        workload, settings, config=config, verify_batch=verify_batch
    )


def _build_fault_plan(
    settings: ChaosSettings, proxies: list[str], root: str, duration: float
) -> FaultPlan:
    """Scale the fractional chaos knobs into an absolute fault plan.

    Raises:
        SimulationError: When a knob names a proxy index the topology
            does not have.
    """

    def proxy_name(index: int) -> str:
        if not 0 <= index < len(proxies):
            raise SimulationError(
                f"chaos targets proxy index {index} but the topology "
                f"has {len(proxies)} proxies"
            )
        return proxies[index]

    def at(fraction: float) -> float:
        return round(fraction * duration, 9)

    plan = FaultPlan()
    if settings.drop_rate > 0.0:
        plan.drop_rate(
            settings.drop_rate,
            at=at(settings.drop_from),
            until=None if settings.drop_until is None else at(settings.drop_until),
        )
    if settings.crash_proxy is not None:
        plan.crash(
            proxy_name(settings.crash_proxy),
            at=at(settings.crash_at),
            restart_at=(
                None if settings.restart_at is None else at(settings.restart_at)
            ),
        )
    if settings.latency_extra > 0.0:
        # "origin" is a convenience alias for the tree root's endpoint
        # name, which callers (the CLI) do not know ahead of time.
        target = settings.latency_target
        if target == "origin":
            target = root
        plan.latency_add(
            settings.latency_extra,
            at=at(settings.latency_from),
            until=(
                None
                if settings.latency_until is None
                else at(settings.latency_until)
            ),
            target=(target,) if target else (),
        )
    if settings.partition_proxy is not None:
        plan.partition(
            root,
            proxy_name(settings.partition_proxy),
            at=at(settings.partition_from),
            heal_at=(
                None
                if settings.partition_until is None
                else at(settings.partition_until)
            ),
        )
    if settings.pause_daemon_from is not None:
        plan.pause_daemon(
            at=at(settings.pause_daemon_from),
            until=(
                None
                if settings.pause_daemon_until is None
                else at(settings.pause_daemon_until)
            ),
        )
    return plan


def execute_chaos(
    workload: GeneratorConfig,
    settings: ChaosSettings | None = None,
    *,
    config: BaselineConfig = BASELINE,
    fault_plan: FaultPlan | None = None,
    obs: ObsConfig | None = None,
) -> ChaosReport:
    """Run the live pair fault-free, then again under a fault plan.

    This is the engine behind :meth:`repro.api.Session.chaos` (and the
    deprecated :func:`run_chaos` shim).

    Args:
        workload: Synthetic workload configuration (seeded).
        settings: Chaos knobs; defaults to :class:`ChaosSettings`.
        config: The paper's cost model and timeouts.
        fault_plan: Explicit plan in absolute virtual seconds; when
            given it overrides the fractional knobs in ``settings``.
        obs: Observability channels, applied to all four arms; each
            pair's :class:`LiveReport` carries its own observations.

    Returns:
        A :class:`ChaosReport` with both pairs, their ratios and the
        fault timeline.

    Raises:
        RuntimeProtocolError: When a byte/frame conservation invariant
            fails on any of the four snapshots.
        SimulationError: On an unusable workload or fault target.
    """
    settings = settings if settings is not None else ChaosSettings()
    live = settings.live
    prepared = _PreparedRun(workload, live, config)

    clean_base, clean_base_obs = prepared.arm(speculative=False, obs=obs)
    clean_spec, clean_spec_obs = prepared.arm(speculative=True, obs=obs)
    strict = live.drop_probability == 0.0
    verify_conservation(clean_base, strict=strict)
    verify_conservation(clean_spec, strict=strict)

    duration = float(
        clean_spec.get("counters", {}).get("run.virtual_seconds", 0.0)
    )
    if fault_plan is None:
        fault_plan = _build_fault_plan(
            settings, prepared.proxies, prepared.tree.root, duration
        )

    faulted_base, faulted_base_obs = prepared.arm(
        speculative=False, fault_plan=fault_plan, obs=obs
    )
    faulted_spec, faulted_spec_obs = prepared.arm(
        speculative=True, fault_plan=fault_plan, obs=obs
    )
    verify_conservation(faulted_base)
    verify_conservation(faulted_spec)

    clean = LiveReport(
        baseline=clean_base,
        speculative=clean_spec,
        ratios=live_ratios(clean_spec, clean_base),
        disseminated_documents=len(prepared.holdings),
        observed=_run_observations(
            workload, live, config, clean_spec_obs, clean_base_obs
        ),
    )
    faulted = LiveReport(
        baseline=faulted_base,
        speculative=faulted_spec,
        ratios=live_ratios(faulted_spec, faulted_base),
        disseminated_documents=len(prepared.holdings),
        observed=_run_observations(
            workload, live, config, faulted_spec_obs, faulted_base_obs
        ),
    )
    fault_events = tuple(
        (float(time), str(name))
        for time, name in faulted_spec.get("events", ())
        if str(name).startswith("fault:")
    )
    return ChaosReport(clean=clean, faulted=faulted, fault_events=fault_events)


def run_chaos(
    workload: GeneratorConfig,
    settings: ChaosSettings | None = None,
    *,
    config: BaselineConfig = BASELINE,
    fault_plan: FaultPlan | None = None,
) -> ChaosReport:
    """Deprecated shim; use :meth:`repro.api.Session.chaos`.

    Delegates unchanged to :func:`execute_chaos`.
    """
    _deprecated("run_chaos", "repro.api.Session.chaos")
    return execute_chaos(workload, settings, config=config, fault_plan=fault_plan)


def execute_smoke(
    seed: int = 0,
    *,
    tolerance: float = 0.05,
    obs: ObsConfig | None = None,
    codec: str = "binary",
    workers: int = 1,
    deploy: DeploySpec | None = None,
) -> LiveReport:
    """The ``repro loadtest --smoke`` self-test.

    Runs the small smoke workload live, verifies the live ratios
    against the batch reference, and raises on divergence — this is the
    check CI runs after the test suite.  ``codec`` selects the wire
    format the in-memory network round-trips every message through
    (CI's codec matrix runs this once per codec and diffs the four
    ratios bit-for-bit); ``workers`` shards the client population as in
    :func:`execute_loadtest`, and ``deploy`` accepts a local
    :class:`~repro.config.DeploySpec` the same way.

    Raises:
        RuntimeProtocolError: If live and batch ratios diverge beyond
            ``tolerance``.
    """
    report = execute_loadtest(
        smoke_workload(seed),
        LiveSettings(seed=seed, codec=codec),
        verify_batch=True,
        obs=obs,
        workers=workers,
        deploy=deploy,
    )
    report.require_convergence(tolerance)
    return report


def run_smoke(seed: int = 0, *, tolerance: float = 0.05) -> LiveReport:
    """Deprecated shim; use :meth:`repro.api.Session.loadtest`.

    Delegates unchanged to :func:`execute_smoke`.
    """
    _deprecated("run_smoke", "repro.api.Session.loadtest(smoke=True)")
    return execute_smoke(seed, tolerance=tolerance)


def chaos_smoke_settings(seed: int = 0) -> ChaosSettings:
    """The scripted faults ``repro chaos --smoke`` injects.

    One proxy crashes a fifth of the way in and restarts at the
    halfway mark (losing its holdings until the daemon re-pushes), on
    top of a 2% global frame-drop rate for the whole run.  Timeouts are
    shortened and retries raised so the retry/backoff machinery — not
    luck — carries the run through.
    """
    return ChaosSettings(
        live=LiveSettings(seed=seed, request_timeout=2.0, retries=3),
        crash_proxy=0,
        crash_at=0.2,
        restart_at=0.5,
        drop_rate=0.02,
    )


def execute_chaos_smoke(
    seed: int = 0,
    *,
    tolerance: float = 0.05,
    obs: ObsConfig | None = None,
) -> ChaosReport:
    """The ``repro chaos --smoke`` self-test.

    Runs the smoke workload through :func:`execute_chaos` with the
    standard smoke fault script and asserts the four live ratios stay
    within ``tolerance`` of the fault-free run — the check CI runs
    after ``repro loadtest --smoke``.

    Raises:
        RuntimeProtocolError: On ratio divergence beyond ``tolerance``
            or a conservation violation.
    """
    report = execute_chaos(
        smoke_workload(seed), chaos_smoke_settings(seed), obs=obs
    )
    report.require_resilience(tolerance)
    return report


def run_chaos_smoke(seed: int = 0, *, tolerance: float = 0.05) -> ChaosReport:
    """Deprecated shim; use :meth:`repro.api.Session.chaos`.

    Delegates unchanged to :func:`execute_chaos_smoke`.
    """
    _deprecated("run_chaos_smoke", "repro.api.Session.chaos(smoke=True)")
    return execute_chaos_smoke(seed, tolerance=tolerance)
