"""Benchmark-trajectory layer: measure, record, and gate engine speed.

``repro bench`` times the engine's hot loops — dependency estimation,
closure computation, trace replay in both the ``dict`` and ``sparse``
backends, and the full baseline+policy replay pair through the
per-event loop versus the vectorized columnar engine — at a fixed
reference configuration.  The medians land in ``BENCH_PERF.json``
together with a machine fingerprint and the git revision, so the
committed file is a performance trajectory of the repository: every
entry says *this revision ran this fast on this machine*.

Two kinds of gate protect that trajectory:

* **Speedup floors** — the optimized implementation must beat its
  reference partner by a fixed factor (sparse over dict, columnar over
  event, binary codec over JSON).  Speedup is a *ratio of two
  measurements on the same machine in the same run*, so it is stable
  across hardware and is enforced unconditionally.  Scale floors live
  in :data:`SCALES`; injected sections (:func:`time_paired`) carry
  their own ``speedup_floors``.
* **Absolute regression** — optimized medians may not slow down more
  than :data:`MAX_REGRESSION` against the committed baseline.
  Wall-clock medians only compare across runs on the same machine, so
  this check applies only when the stored fingerprint matches the
  current one, and each optimized median is load-normalized by the
  drift of its interleaved reference partner (see
  :data:`PAIRED_SUFFIXES`) so shared-host noise does not read as a
  regression.  Reference medians are recorded as the load reference,
  not gated: their drift *is* the noise measurement.  Injected
  ``*_wall`` sections (:func:`time_wall` — e.g. the fleet smoke and
  the sharded loadtest handed down by the CLI) have no reference
  partner and are gated strictly at the wider
  :data:`WALL_MAX_REGRESSION`.

Violations raise :class:`~repro.errors.PerfRegressionError`, which the
CLI maps to exit code 5.  The file records no timestamps — it changes
only when the measurements change, keeping diffs reviewable.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..config import BASELINE
from ..errors import PerfRegressionError
from ..speculation.dependency import DependencyModel
from ..speculation.policies import ThresholdPolicy
from ..speculation.simulator import SpeculativeServiceSimulator
from ..workload import GeneratorConfig, SyntheticTraceGenerator

#: Allowed slow-down of a median versus the committed baseline before
#: the gate fails (same-machine comparisons only).
MAX_REGRESSION = 0.25

#: Allowed slow-down of an injected ``*_wall`` median.  Wall sections
#: carry no interleaved dict partner to normalize machine load away, so
#: the comparison is strict but the tolerance is wider.
WALL_MAX_REGRESSION = 0.5

#: Default location of the committed baseline, relative to the cwd.
DEFAULT_BASELINE = Path("BENCH_PERF.json")

#: Gated-median suffix → interleaved reference-partner suffix.  Each
#: pair is sampled by :func:`_paired_medians` (or :func:`time_paired`),
#: the left side is gated against the baseline load-normalized by the
#: right side's drift, and the right side is recorded ungated as the
#: load reference.
PAIRED_SUFFIXES: dict[str, str] = {
    "_sparse": "_dict",
    "_columnar": "_event",
    "_binary": "_json",
}


@dataclass(frozen=True)
class BenchScale:
    """One reference configuration the suite can run at.

    Attributes:
        workload: Synthetic-workload configuration measured against.
        repeats: Timing repetitions per benchmark (median is reported).
        speedup_floors: Minimum sparse-over-dict speedup per metric;
            enforced on every run, independent of any baseline.
    """

    workload: GeneratorConfig
    repeats: int
    speedup_floors: dict[str, float]


#: The reference scales.  ``full`` matches the committed baseline and
#: the acceptance floors; ``smoke`` is sized for CI (a few seconds) with
#: correspondingly relaxed floors, since fixed vectorization overheads
#: weigh heavier on a small trace.
SCALES: dict[str, BenchScale] = {
    "full": BenchScale(
        workload=GeneratorConfig(
            seed=77, n_pages=120, n_clients=150, n_sessions=1500, duration_days=30
        ),
        repeats=9,
        speedup_floors={
            "estimation": 3.0,
            "replay": 3.0,
            "replay_columnar": 2.0,
        },
    ),
    "smoke": BenchScale(
        workload=GeneratorConfig(
            seed=77, n_pages=100, n_clients=100, n_sessions=900, duration_days=18
        ),
        repeats=9,
        speedup_floors={
            "estimation": 2.0,
            "replay": 2.0,
            "replay_columnar": 2.0,
        },
    ),
}

#: The T_p used by the replay benchmarks (the paper's mid-sweep point).
REPLAY_THRESHOLD = 0.25


def machine_fingerprint() -> dict[str, Any]:
    """Identity of the measuring machine, for baseline comparability."""
    return {
        "system": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def git_revision() -> str:
    """The current git commit sha, or ``"unknown"`` outside a checkout."""
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if probe.returncode != 0:
        return "unknown"
    return probe.stdout.strip() or "unknown"


def _paired_medians(
    dict_pass: Callable[[], Any],
    sparse_pass: Callable[[], Any],
    repeats: int,
) -> tuple[float, float]:
    """Median wall-clock seconds of each pass, sampled interleaved.

    The two implementations alternate within every repeat so a burst of
    co-tenant load lands on both rather than blanketing one stage's
    whole timing window — which keeps the dict stage a valid load
    reference for its sparse partner.
    """
    dict_samples: list[float] = []
    sparse_samples: list[float] = []
    for _ in range(repeats):
        begin = time.perf_counter()
        dict_pass()
        split = time.perf_counter()
        sparse_pass()
        dict_samples.append(split - begin)
        sparse_samples.append(time.perf_counter() - split)
    dict_samples.sort()
    sparse_samples.sort()
    middle = repeats // 2
    return dict_samples[middle], sparse_samples[middle]


def run_scale(name: str, *, repeats: int | None = None) -> dict[str, Any]:
    """Run the benchmark suite at one scale.

    Args:
        name: A key of :data:`SCALES`.
        repeats: Override the scale's timing repetitions.

    Returns:
        The scale section for the report: the workload configuration,
        per-benchmark medians in seconds, and sparse-over-dict speedups.
    """
    if name not in SCALES:
        raise PerfRegressionError(
            f"unknown bench scale {name!r}; expected one of {sorted(SCALES)}"
        )
    scale = SCALES[name]
    reps = scale.repeats if repeats is None else max(1, repeats)
    trace = SyntheticTraceGenerator(scale.workload).generate()

    medians: dict[str, float] = {}
    medians["estimation_dict"], medians["estimation_sparse"] = _paired_medians(
        lambda: DependencyModel.estimate(trace, window=5.0, backend="dict"),
        lambda: DependencyModel.estimate(trace, window=5.0, backend="sparse"),
        reps,
    )

    model_dict = DependencyModel.estimate(trace, window=5.0, backend="dict")
    model_sparse = DependencyModel.estimate(trace, window=5.0, backend="sparse")
    documents = sorted(model_dict.occurrence_counts)

    def closure_pass(backend: str) -> None:
        # A fresh model per pass so memoized rows never trivialize the
        # timing; closure_rows computes the whole universe in one batch.
        fresh = DependencyModel.from_counts(
            model_dict.pair_counts, model_dict.occurrence_counts, backend=backend
        )
        fresh.closure_rows(documents)

    medians["closure_dict"], medians["closure_sparse"] = _paired_medians(
        lambda: closure_pass("dict"), lambda: closure_pass("sparse"), reps
    )

    policy = ThresholdPolicy(threshold=REPLAY_THRESHOLD)
    replay_dict = SpeculativeServiceSimulator(trace, BASELINE, model=model_dict)
    replay_sparse = SpeculativeServiceSimulator(trace, BASELINE, model=model_sparse)
    medians["replay_dict"], medians["replay_sparse"] = _paired_medians(
        lambda: replay_dict.run(policy), lambda: replay_sparse.run(policy), reps
    )

    # The ratio-producing unit of work: one baseline run plus one policy
    # run on the same simulator, replayed through the per-event loop
    # versus the vectorized columnar engine (bit-identical results; see
    # tests/test_columnar_replay.py).
    pair_sim = SpeculativeServiceSimulator(trace, BASELINE, model=model_sparse)

    def replay_pair(mode: str) -> None:
        pair_sim.run(replay=mode)
        pair_sim.run(policy, replay=mode)

    medians["replay_pair_event"], medians["replay_pair_columnar"] = (
        _paired_medians(
            lambda: replay_pair("event"),
            lambda: replay_pair("columnar"),
            reps,
        )
    )

    speedups = {
        "estimation": medians["estimation_dict"] / medians["estimation_sparse"],
        "closure": medians["closure_dict"] / medians["closure_sparse"],
        "replay": medians["replay_dict"] / medians["replay_sparse"],
        "replay_columnar": (
            medians["replay_pair_event"] / medians["replay_pair_columnar"]
        ),
    }
    return {
        "workload": {
            "seed": scale.workload.seed,
            "n_pages": scale.workload.n_pages,
            "n_clients": scale.workload.n_clients,
            "n_sessions": scale.workload.n_sessions,
            "duration_days": scale.workload.duration_days,
        },
        "repeats": reps,
        "medians_seconds": medians,
        "speedups": speedups,
    }


def time_wall(
    name: str, runner: Callable[[], Any], *, repeats: int = 3
) -> dict[str, Any]:
    """Time an injected end-to-end pass as a report section.

    Higher layers (the CLI, the api facade) hand verbs this package
    must not import — the fleet smoke, for instance — down as plain
    callables; the section slots into :func:`build_report` next to the
    engine scales.  The median lands under ``<name>_wall`` and is gated
    against the committed baseline at :data:`WALL_MAX_REGRESSION`.

    Args:
        name: Section benchmark name; ``_wall`` is appended.
        runner: Zero-argument callable to time.
        repeats: Timing repetitions (median is reported).

    Returns:
        A scale-shaped section: ``repeats`` plus ``medians_seconds``.
    """
    reps = max(1, repeats)
    samples: list[float] = []
    for _ in range(reps):
        begin = time.perf_counter()
        runner()
        samples.append(time.perf_counter() - begin)
    samples.sort()
    return {
        "repeats": reps,
        "medians_seconds": {f"{name}_wall": samples[reps // 2]},
    }


def time_paired(
    metric: str,
    reference_pass: Callable[[], Any],
    gated_pass: Callable[[], Any],
    *,
    suffixes: tuple[str, str],
    repeats: int = 9,
    floor: float | None = None,
) -> dict[str, Any]:
    """Time an injected reference/optimized pair as a report section.

    Like :func:`time_wall` this takes plain callables from higher
    layers — the wire-codec pass, for instance, lives above this
    package.  Unlike a wall section the pair is sampled interleaved
    (:func:`_paired_medians`), so the optimized median is gated against
    the baseline load-normalized by its reference partner, and the
    speedup floor travels inside the section where
    :func:`find_regressions` picks it up.

    Args:
        metric: Benchmark stem; medians land under ``<metric><suffix>``.
        reference_pass: Zero-argument reference implementation.
        gated_pass: Zero-argument optimized implementation.
        suffixes: ``(gated_suffix, reference_suffix)`` — must be a
            :data:`PAIRED_SUFFIXES` item so the gate recognizes the pair.
        repeats: Timing repetitions (median is reported).
        floor: Minimum reference-over-optimized speedup, enforced
            unconditionally when given.

    Returns:
        A scale-shaped section: ``repeats``, ``medians_seconds``,
        ``speedups`` and (when ``floor`` is given) ``speedup_floors``.
    """
    gated_suffix, reference_suffix = suffixes
    if PAIRED_SUFFIXES.get(gated_suffix) != reference_suffix:
        raise PerfRegressionError(
            f"unknown paired suffixes {suffixes!r}; expected an item of "
            f"{sorted(PAIRED_SUFFIXES.items())}"
        )
    reps = max(1, repeats)
    reference_median, gated_median = _paired_medians(
        reference_pass, gated_pass, reps
    )
    section: dict[str, Any] = {
        "repeats": reps,
        "medians_seconds": {
            f"{metric}{reference_suffix}": reference_median,
            f"{metric}{gated_suffix}": gated_median,
        },
        "speedups": {metric: reference_median / gated_median},
    }
    if floor is not None:
        section["speedup_floors"] = {metric: floor}
    return section


def build_report(sections: dict[str, dict[str, Any]]) -> dict[str, Any]:
    """Assemble the report written to ``BENCH_PERF.json``."""
    return {
        "machine": machine_fingerprint(),
        "git_sha": git_revision(),
        "scales": sections,
    }


def merge_reports(
    existing: dict[str, Any] | None, report: dict[str, Any]
) -> dict[str, Any]:
    """Fold a new report into a baseline, keeping untouched scales.

    A smoke run must not discard the committed full-scale section, so
    only the scales actually re-measured are replaced.
    """
    if not existing:
        return report
    sections = dict(existing.get("scales", {}))
    sections.update(report["scales"])
    return {**report, "scales": sections}


def load_baseline(path: Path) -> dict[str, Any] | None:
    """Read a committed baseline; ``None`` when absent or unparseable."""
    try:
        with path.open("r", encoding="utf-8") as handle:
            loaded = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return loaded if isinstance(loaded, dict) else None


def write_baseline(path: Path, report: dict[str, Any]) -> None:
    """Write the report as the new committed baseline."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _load_scale(
    bench_name: str, current: dict[str, float], committed: dict[str, float]
) -> float:
    """Machine-load normalization factor for one absolute comparison.

    The reference stages (``*_dict``, ``*_event``, ``*_json``) time
    implementations the optimized engines never touch — so when *those*
    medians drift versus the committed baseline, the machine is busier
    (or idler), not the code slower.  An optimized stage is normalized
    by its paired reference stage (:data:`PAIRED_SUFFIXES`; sampled
    interleaved, so both see the same load), falling back to the median
    drift of all reference stages in the section.  The factor is
    clamped to at least 1.0: a uniform slow-down of both passes
    (shared-host noise) cancels out, while a *differential* slow-down
    of the optimized pass is still flagged.  Without reference anchors
    the factor is 1.0 and the comparison is strict.
    """
    for gated_suffix, reference_suffix in PAIRED_SUFFIXES.items():
        if bench_name.endswith(gated_suffix):
            partner = bench_name[: -len(gated_suffix)] + reference_suffix
            if partner in current and committed.get(partner, 0) > 0:
                return max(1.0, current[partner] / committed[partner])
            break
    drifts = sorted(
        current[name] / committed[name]
        for name in current
        if name.endswith(tuple(PAIRED_SUFFIXES.values()))
        and committed.get(name, 0) > 0
    )
    if not drifts:
        return 1.0
    return max(1.0, drifts[len(drifts) // 2])


def find_regressions(
    report: dict[str, Any],
    baseline: dict[str, Any] | None,
    *,
    max_regression: float = MAX_REGRESSION,
    compare_absolute: bool = True,
) -> list[str]:
    """Every gate violation in ``report``, as human-readable findings.

    Speedup floors are checked unconditionally — scale floors from
    :data:`SCALES` plus any ``speedup_floors`` an injected section
    carries (:func:`time_paired`).  Absolute optimized medians
    (:data:`PAIRED_SUFFIXES` left-hand suffixes) are compared only when
    a baseline exists, ``compare_absolute`` is set, and its machine
    fingerprint matches the current machine.  Matching fingerprints
    still share the host with other tenants, so each comparison is
    load-normalized by the paired reference-stage drift
    (:func:`_load_scale`); the reference medians themselves are the
    load reference and are not gated.
    """
    findings: list[str] = []
    for scale_name, section in report.get("scales", {}).items():
        floors = dict(
            SCALES[scale_name].speedup_floors if scale_name in SCALES else {}
        )
        floors.update(section.get("speedup_floors", {}))
        speedups = section.get("speedups", {})
        for metric, floor in floors.items():
            achieved = speedups.get(metric)
            if achieved is None or achieved < floor:
                findings.append(
                    f"{scale_name}: {metric} speedup "
                    f"{achieved if achieved is None else f'{achieved:.2f}x'} "
                    f"below the {floor:.1f}x floor"
                )

    if baseline is None or not compare_absolute:
        return findings
    if baseline.get("machine") != report.get("machine"):
        return findings
    for scale_name, section in report.get("scales", {}).items():
        reference = baseline.get("scales", {}).get(scale_name)
        if reference is None:
            continue
        committed = reference.get("medians_seconds", {})
        current = section.get("medians_seconds", {})
        for bench_name, median in current.items():
            if bench_name.endswith(tuple(PAIRED_SUFFIXES)):
                limit = max_regression
                tolerance = (1.0 + limit) * _load_scale(
                    bench_name, current, committed
                )
            elif bench_name.endswith("_wall"):
                # Injected end-to-end medians (see :func:`time_wall`):
                # no reference partner to normalize by, so strict
                # comparison at the wider wall tolerance.
                limit = WALL_MAX_REGRESSION
                tolerance = 1.0 + limit
            else:
                # Reference medians are the load reference, not a gated
                # surface: their drift *defines* machine weather here.
                continue
            anchor = committed.get(bench_name)
            if anchor is None or anchor <= 0:
                continue
            if median > anchor * tolerance:
                findings.append(
                    f"{scale_name}: {bench_name} median {median * 1e3:.1f}ms "
                    f"regressed >{limit:.0%} versus the committed "
                    f"{anchor * 1e3:.1f}ms (load-normalized)"
                )
    return findings


def enforce_gate(
    report: dict[str, Any],
    baseline: dict[str, Any] | None,
    *,
    max_regression: float = MAX_REGRESSION,
    compare_absolute: bool = True,
) -> None:
    """Raise :class:`PerfRegressionError` if any gate is violated."""
    findings = find_regressions(
        report,
        baseline,
        max_regression=max_regression,
        compare_absolute=compare_absolute,
    )
    if findings:
        raise PerfRegressionError(
            "performance gate failed:\n" + "\n".join(f"  - {f}" for f in findings)
        )
