"""Performance engineering for the reproduction: ``repro.perf``.

Three concerns live here, all in service of running the paper's
experiments faster without changing a single measured number:

* The **sparse vectorized dependency backend**
  (:class:`~repro.speculation.sparse.SparseDependencyEngine`, re-exported
  for convenience) — CSR adjacency over numpy with batched closure-row
  relaxation, bit-identical to the pure-Python ``dict`` backend.
* The **columnar replay engine**
  (:func:`~repro.speculation.columnar.replay_columnar`, re-exported) —
  whole-trace vectorized replay of the speculative-service simulator,
  bit-identical to the event loop and dispatched automatically by
  :meth:`SpeculativeServiceSimulator.run` for fast-path-eligible
  configurations.
* The **parallel sweep executor** (:mod:`repro.perf.parallel`) —
  fork-based sharding of embarrassingly parallel sweep points with an
  ordered merge and deterministic per-shard seeding, so parallel runs
  are byte-identical to serial ones.
* The **benchmark trajectory** (:mod:`repro.perf.bench`) — ``repro
  bench`` medians recorded in ``BENCH_PERF.json`` and gated against
  both speedup floors and the committed baseline.
"""

from ..speculation.columnar import ColumnarReplay, replay_columnar
from ..speculation.sparse import SparseDependencyEngine, estimate_pair_counts
from .bench import (
    MAX_REGRESSION,
    PAIRED_SUFFIXES,
    SCALES,
    WALL_MAX_REGRESSION,
    BenchScale,
    build_report,
    enforce_gate,
    find_regressions,
    load_baseline,
    machine_fingerprint,
    merge_reports,
    run_scale,
    time_paired,
    time_wall,
    write_baseline,
)
from .parallel import default_workers, fork_available, parallel_map, spawn_seeds

__all__ = [
    "MAX_REGRESSION",
    "PAIRED_SUFFIXES",
    "SCALES",
    "BenchScale",
    "ColumnarReplay",
    "SparseDependencyEngine",
    "WALL_MAX_REGRESSION",
    "build_report",
    "default_workers",
    "enforce_gate",
    "estimate_pair_counts",
    "find_regressions",
    "fork_available",
    "load_baseline",
    "machine_fingerprint",
    "merge_reports",
    "parallel_map",
    "replay_columnar",
    "run_scale",
    "spawn_seeds",
    "time_paired",
    "time_wall",
    "write_baseline",
]
