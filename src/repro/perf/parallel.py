"""Deterministic parallel execution for sweeps and benchmarks.

Sweeps (threshold grids, seed-robustness runs, sensitivity scans) are
embarrassingly parallel: each point is a pure function of its inputs.
:func:`parallel_map` shards such points across a ``fork`` process pool
and merges results in input order, so a parallel run is byte-identical
to the serial one — parallelism changes wall-clock time, never output.

Two properties make that guarantee hold:

* **Ordered merge** — ``Pool.map`` preserves input order, so result
  lists never depend on worker scheduling.
* **Deterministic seeding** — :func:`spawn_seeds` derives per-shard
  seeds from one base seed via ``np.random.SeedSequence.spawn``; the
  derived seeds do not depend on the worker count.

Workers inherit the mapped function through the ``fork`` snapshot (a
module-global trampoline set just before the pool starts), so lambdas
and closures work without pickling the function itself.  On platforms
without ``fork``, or with ``workers <= 1``, the map silently degrades
to a serial loop with identical results.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Iterable
from typing import Any, TypeVar

import numpy as np

Item = TypeVar("Item")
Result = TypeVar("Result")

#: The function currently being mapped.  Set in the parent immediately
#: before the pool forks; children inherit it through the process
#: snapshot, which is what lets :func:`parallel_map` accept closures.
_ACTIVE_WORKER: Callable[[Any], Any] | None = None


def _invoke_active(item: Any) -> Any:
    """Pool target: apply the fork-inherited worker to one item."""
    worker = _ACTIVE_WORKER
    if worker is None:  # pragma: no cover - defensive
        raise RuntimeError("fork trampoline unset; parallel_map misuse")
    return worker(item)


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Worker count used when ``workers=None``: the CPU count."""
    return os.cpu_count() or 1


def parallel_map(
    function: Callable[[Item], Result],
    items: Iterable[Item],
    *,
    workers: int | None = None,
) -> list[Result]:
    """Map ``function`` over ``items``, optionally across processes.

    Args:
        function: A pure function of one item.  It must not rely on
            mutating shared state — each worker process gets a
            copy-on-write snapshot, and mutations never propagate back.
        items: The points to evaluate; consumed eagerly.
        workers: Process count.  ``None`` uses :func:`default_workers`;
            values ``<= 1`` (or platforms without ``fork``) run serially.

    Returns:
        Results in the order of ``items`` — identical to
        ``[function(item) for item in items]`` for any worker count.
    """
    points = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(points) <= 1 or not fork_available():
        return [function(point) for point in points]

    global _ACTIVE_WORKER
    previous = _ACTIVE_WORKER
    _ACTIVE_WORKER = function
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=min(workers, len(points))) as pool:
            return pool.map(_invoke_active, points)
    finally:
        _ACTIVE_WORKER = previous


def spawn_seeds(base_seed: int, count: int) -> list[int]:
    """Derive ``count`` independent seeds from one base seed.

    Uses ``np.random.SeedSequence.spawn``, so the derived seeds are
    statistically independent and reproducible: the same base seed
    always yields the same list, regardless of how the seeds are later
    sharded across workers.

    Args:
        base_seed: The experiment's top-level seed.
        count: Number of shard seeds to derive.

    Returns:
        ``count`` distinct non-negative integers.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(base_seed).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]
