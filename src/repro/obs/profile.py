"""Opt-in wall/CPU profiling hooks around the hot paths.

``repro.perf`` benchmarks the hot paths (estimation, closure, replay)
end to end; this module answers the follow-up question — *where inside
a run does the time go* — without perturbing unprofiled runs.  A
:class:`Profiler` times named sections with ``time.perf_counter`` and
can additionally drive :mod:`cProfile` for per-function CPU stats.
Profiling is wall-clock by nature and therefore never part of any
determinism contract; nothing here feeds the seeded artifacts.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Iterator


class Profiler:
    """Times named sections; optionally collects a cProfile capture.

    Args:
        cpu: When true, :meth:`section` also runs the Python profiler
            so :meth:`cpu_stats` can report per-function time.
    """

    def __init__(self, *, cpu: bool = False):
        self._wall: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._profile = cProfile.Profile() if cpu else None

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Context manager accumulating wall time under ``name``."""
        profile = self._profile
        if profile is not None:
            profile.enable()
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            if profile is not None:
                profile.disable()
            self._wall[name] = self._wall.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def wall_seconds(self, name: str) -> float:
        """Accumulated wall seconds for one section (0.0 if never run)."""
        return self._wall.get(name, 0.0)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-section ``{"seconds": ..., "calls": ...}`` mapping."""
        return {
            name: {
                "seconds": self._wall[name],
                "calls": float(self._calls[name]),
            }
            for name in sorted(self._wall)
        }

    def cpu_stats(self, *, limit: int = 20) -> str:
        """Top cumulative-time functions from the cProfile capture.

        Returns an empty string when the profiler was created without
        ``cpu=True``.
        """
        if self._profile is None:
            return ""
        buffer = io.StringIO()
        stats = pstats.Stats(self._profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(limit)
        return buffer.getvalue()
