"""Unified observability: traces, time-series, exporters, profiling.

The paper's four ratios (bandwidth, server load, service time, byte
miss rate) are computed in several places — batch replay, the live
runtime, the chaos gate.  ``repro.obs`` is the one layer they all share
for *how the numbers were produced*: structured trace events on the
virtual clock (:mod:`~repro.obs.trace`), windowed time-series that turn
the ratios into curves (:mod:`~repro.obs.timeseries`), deterministic
JSONL/Prometheus exporters with a provenance manifest
(:mod:`~repro.obs.export`), and opt-in profiling hooks
(:mod:`~repro.obs.profile`).

Everything is off by default and zero-overhead when off: an
:class:`ObsConfig` with no flags set produces a plain
:class:`MetricsRegistry`, exactly what the runtime used before this
layer existed.  :func:`default_registry` is the single factory every
runtime node uses when no registry is supplied, so traces and metrics
always share one registry per arm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .export import config_digest, prometheus_text, run_manifest, trace_jsonl
from .profile import Profiler
from .timeseries import (
    Counter,
    CounterState,
    Histogram,
    MetricsRegistry,
    TimeSample,
    TimeSeriesRecorder,
    bandwidth_curve,
    merge_registry_states,
    ratio_curve,
    ratios_from_counters,
)
from .trace import EVENT_KINDS, TraceEvent, Tracer, events_to_jsonl

__all__ = [
    "EVENT_KINDS",
    "ArmObservations",
    "Counter",
    "CounterState",
    "Histogram",
    "MetricsRegistry",
    "ObsBundle",
    "ObsConfig",
    "Profiler",
    "RunObservations",
    "TimeSample",
    "TimeSeriesRecorder",
    "TraceEvent",
    "Tracer",
    "config_digest",
    "default_registry",
    "events_to_jsonl",
    "prometheus_text",
    "bandwidth_curve",
    "merge_registry_states",
    "ratio_curve",
    "ratios_from_counters",
    "run_manifest",
    "trace_jsonl",
]


@dataclass(frozen=True)
class ObsConfig:
    """What to observe during a run.

    The default is everything off — the configuration every legacy
    entry point implicitly ran with, with zero overhead on the hot
    paths.

    Attributes:
        trace: Record structured :class:`TraceEvent` values.
        timeseries: Roll counters into per-window cumulative series.
        trace_limit: Trace ring-buffer capacity per arm.
        window: Time-series window width in virtual seconds.
    """

    trace: bool = False
    timeseries: bool = False
    trace_limit: int = 65536
    window: float = 3600.0

    @property
    def enabled(self) -> bool:
        """True when any observation channel is on."""
        return self.trace or self.timeseries

    @classmethod
    def full(cls, *, window: float = 3600.0) -> "ObsConfig":
        """Convenience: tracing and time-series both on."""
        return cls(trace=True, timeseries=True, window=window)


@dataclass
class ObsBundle:
    """Live wiring for one run arm: registry + optional tracer/recorder.

    Attributes:
        registry: The arm's metrics registry (tracer/recorder attached
            when the config enables them).
        tracer: The trace ring, or None when tracing is off.
        recorder: The time-series recorder, or None when off.
    """

    registry: MetricsRegistry
    tracer: Tracer | None = None
    recorder: TimeSeriesRecorder | None = None

    @classmethod
    def from_config(cls, config: ObsConfig | None) -> "ObsBundle":
        """Build the wiring an :class:`ObsConfig` asks for."""
        if config is None or not config.enabled:
            return cls(registry=MetricsRegistry())
        tracer = Tracer(limit=config.trace_limit) if config.trace else None
        recorder = (
            TimeSeriesRecorder(window=config.window)
            if config.timeseries
            else None
        )
        return cls(
            registry=MetricsRegistry(recorder=recorder, tracer=tracer),
            tracer=tracer,
            recorder=recorder,
        )

    def observations(self) -> "ArmObservations":
        """Freeze what was observed into an :class:`ArmObservations`."""
        return ArmObservations(
            trace=self.tracer.events if self.tracer is not None else (),
            dropped=self.tracer.dropped if self.tracer is not None else 0,
            timeseries=self.recorder,
        )


@dataclass(frozen=True)
class ArmObservations:
    """What one run arm (baseline or speculative) observed.

    Attributes:
        trace: The retained trace events, oldest first.
        dropped: Trace events lost to the ring bound.
        timeseries: The arm's recorder, or None when time-series were
            off.
    """

    trace: tuple[TraceEvent, ...] = ()
    dropped: int = 0
    timeseries: TimeSeriesRecorder | None = None

    def trace_jsonl(self) -> str:
        """Deterministic JSONL rendering of the arm's trace."""
        return events_to_jsonl(self.trace)


@dataclass(frozen=True)
class RunObservations:
    """Observability output of one paired run (both arms + provenance).

    Attributes:
        speculative: Observations from the speculative arm.
        baseline: Observations from the baseline arm.
        manifest: Provenance manifest (seed, config digest, git sha).
    """

    speculative: ArmObservations
    baseline: ArmObservations
    manifest: dict[str, Any] = field(default_factory=dict)

    def trace_jsonl(self) -> str:
        """JSONL of the speculative arm's trace (the interesting one)."""
        return self.speculative.trace_jsonl()

    def ratio_curve(self) -> list[tuple[float, Any]]:
        """Per-window four-ratio curve; empty when time-series were off."""
        if (
            self.speculative.timeseries is None
            or self.baseline.timeseries is None
        ):
            return []
        return ratio_curve(
            self.speculative.timeseries, self.baseline.timeseries
        )

    def bandwidth_curve(self) -> list[tuple[float, float]]:
        """Per-window bytes × hops ratio; empty when time-series were off."""
        if (
            self.speculative.timeseries is None
            or self.baseline.timeseries is None
        ):
            return []
        return bandwidth_curve(
            self.speculative.timeseries, self.baseline.timeseries
        )


def default_registry() -> MetricsRegistry:
    """The single factory for a node's registry when none is supplied.

    Every runtime component (origin, proxy, daemon, load generator)
    funnels through here instead of constructing ``MetricsRegistry()``
    inline, so an observed run can never end up with a node silently
    counting into a registry the trace does not see.
    """
    return MetricsRegistry()
