"""Counters, histograms and windowed time-series on one registry.

This module owns the metric primitives that used to live in
``repro.runtime.metrics`` (which still re-exports them): monotone
:class:`Counter`, exact-quantile :class:`Histogram` and the
creates-on-first-use :class:`MetricsRegistry` with its canonical JSON
snapshot.  On top of those it adds the observability layer's windowed
view: a :class:`TimeSeriesRecorder` that samples *cumulative* counter
values into fixed-width time windows so the paper's four ratios become
curves over the run instead of end-of-run scalars.

Cumulative (Prometheus-style) sampling is deliberate: each window
stores the counter's value *after* its last increment in that window,
so the final sample of every series equals the live counter exactly —
no re-summation, no float re-association — which is what the
time-series↔ratios parity test asserts bit-for-bit.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Collection, Iterable, Sequence

from ..speculation.metrics import SpeculationRatios
from .trace import Tracer

#: A counter's exact accumulated state: the integer part plus the
#: non-overlapping float partials (see :meth:`Counter.state`).
CounterState = tuple[int, tuple[float, ...]]


class Counter:
    """A named monotone counter (int or float increments).

    Integer increments accumulate exactly in an ``int``; float
    increments accumulate as Shewchuk partials (the ``math.fsum``
    algorithm, maintained incrementally), so :attr:`value` is the
    *correctly rounded* sum of every increment — independent of
    increment order.  That order-independence is what lets the sharded
    load generator merge per-shard counters into values bit-identical
    to a single-process run: the exact states add, and rounding happens
    once at the end.
    """

    __slots__ = ("_int", "_partials")

    def __init__(self) -> None:
        self._int: int = 0
        self._partials: list[float] = []

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative to stay monotone)."""
        if isinstance(amount, int):
            self._int += amount
        else:
            self._add_float(float(amount))

    def _add_float(self, x: float) -> None:
        # One round of Shewchuk's algorithm: fold ``x`` into the
        # non-overlapping partials without losing a single bit.
        partials = self._partials
        count = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            high = x + y
            low = y - (high - x)
            if low:
                partials[count] = low
                count += 1
            x = high
        partials[count:] = [x]

    @property
    def value(self) -> float:
        """The correctly rounded sum of every increment.

        Stays an ``int`` while only integer increments have been seen,
        so integer counters keep rendering as integers in snapshots.
        """
        if not self._partials:
            return self._int
        return math.fsum([self._int, *self._partials])

    def state(self) -> CounterState:
        """The exact accumulated state, for cross-process merging."""
        return (self._int, tuple(self._partials))

    @classmethod
    def from_states(cls, states: Iterable[CounterState]) -> "Counter":
        """Rebuild one counter from many exact states.

        Because each state is exact, the merged counter's
        :attr:`value` equals what a single counter fed every original
        increment (in any order) would report — bit for bit.
        """
        merged = cls()
        for int_part, partials in states:
            merged._int += int_part
            for partial in partials:
                merged._add_float(partial)
        return merged


class Histogram:
    """Stores raw observations; quantiles are computed on demand.

    Exact rather than bucketed: live runs are bounded by the workload
    trace, so storing every observation is affordable and keeps p50/p99
    deterministic to the last bit.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile; 0.0 when empty."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def extend(self, values: Iterable[float]) -> None:
        """Bulk-record observations (shard merging)."""
        self._values.extend(values)

    @property
    def values(self) -> tuple[float, ...]:
        """Every raw observation, in recording order."""
        return tuple(self._values)

    def summary(self) -> dict[str, float]:
        """Count, mean and the standard quantiles, rounded for stability.

        The mean uses ``math.fsum``, so the summary is independent of
        observation order — merged shard histograms summarise exactly
        like a single-process histogram over the same observations.
        """
        if not self._values:
            return {"count": 0}
        total = math.fsum(self._values)
        return {
            "count": len(self._values),
            "mean": round(total / len(self._values), 9),
            "p50": round(self.quantile(0.50), 9),
            "p90": round(self.quantile(0.90), 9),
            "p99": round(self.quantile(0.99), 9),
            "max": round(max(self._values), 9),
        }


@dataclass(frozen=True)
class TimeSample:
    """One cumulative sample: the series value at the end of a window."""

    window_start: float
    value: float


class TimeSeriesRecorder:
    """Rolls cumulative counter values into fixed-width time windows.

    Args:
        window: Window width in (virtual) seconds.
        clock: Returns the current time for :meth:`sample`; live code
            passes the event loop's clock.  Batch simulators instead
            call :meth:`sample_at` with explicit trace timestamps.
        max_windows: Per-series ring bound — oldest windows drop first
            so unbounded runs stay bounded in memory.
    """

    __slots__ = ("_clock", "_series", "max_windows", "window")

    def __init__(
        self,
        *,
        window: float = 3600.0,
        clock: Callable[[], float] | None = None,
        max_windows: int = 4096,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.window = float(window)
        self.max_windows = max(1, int(max_windows))
        self._clock = clock
        self._series: dict[str, deque[list[float]]] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach (or replace) the clock used by :meth:`sample`."""
        self._clock = clock

    def sample(self, name: str, value: float) -> None:
        """Record the series' cumulative value at the clock's *now*."""
        clock = self._clock
        self.sample_at(clock() if clock is not None else 0.0, name, value)

    def sample_at(self, time: float, name: str, value: float) -> None:
        """Record the series' cumulative value at an explicit time."""
        bucket = float(int(time // self.window))
        series = self._series.get(name)
        if series is None:
            series = deque(maxlen=self.max_windows)
            self._series[name] = series
        if series and series[-1][0] == bucket:
            series[-1][1] = value
        else:
            series.append([bucket, value])

    @property
    def names(self) -> tuple[str, ...]:
        """The recorded series names, sorted."""
        return tuple(sorted(self._series))

    def series(self, name: str) -> tuple[TimeSample, ...]:
        """The windowed samples for one series, oldest first."""
        return tuple(
            TimeSample(window_start=bucket * self.window, value=value)
            for bucket, value in self._series.get(name, ())
        )

    def final_values(self) -> dict[str, float]:
        """Last cumulative sample per series.

        Because sampling is cumulative, each entry equals the live
        counter's end-of-run value exactly.
        """
        return {
            name: series[-1][1]
            for name, series in sorted(self._series.items())
            if series
        }

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict rendering: window width plus all series."""
        return {
            "window": self.window,
            "series": {
                name: [
                    [bucket * self.window, value]
                    for bucket, value in series
                ]
                for name, series in sorted(self._series.items())
            },
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """Canonical JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


class _RecordedCounter(Counter):
    """A counter that mirrors every post-increment value to a recorder."""

    __slots__ = ("_name", "_recorder")

    def __init__(self, name: str, recorder: TimeSeriesRecorder):
        super().__init__()
        self._name = name
        self._recorder = recorder

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` and sample the new cumulative value."""
        super().inc(amount)
        self._recorder.sample(self._name, self.value)


class _RecordedHistogram(Histogram):
    """A histogram that mirrors cumulative count/sum to a recorder."""

    __slots__ = ("_name", "_recorder", "_total")

    def __init__(self, name: str, recorder: TimeSeriesRecorder):
        super().__init__()
        self._name = name
        self._recorder = recorder
        self._total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation and sample cumulative count and sum."""
        self._values.append(value)
        self._total += value
        recorder = self._recorder
        recorder.sample(self._name + ".count", float(len(self._values)))
        recorder.sample(self._name + ".sum", self._total)


class MetricsRegistry:
    """Creates-on-first-use registry of counters, histograms and events.

    Args:
        recorder: Optional :class:`TimeSeriesRecorder`; when given,
            counters and histograms mirror cumulative values into it.
        tracer: Optional :class:`~repro.obs.trace.Tracer`; when given,
            :meth:`trace_event` records structured events (and is a
            no-op otherwise, so instrumented hot paths stay free).
        clock: Time source for :meth:`trace_event` when the caller does
            not pass an explicit time.
    """

    def __init__(
        self,
        *,
        recorder: TimeSeriesRecorder | None = None,
        tracer: Tracer | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._events: list[tuple[float, str]] = []
        self.recorder = recorder
        self.tracer = tracer
        self._clock = clock

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the time source used for traces and window sampling."""
        self._clock = clock
        if self.recorder is not None:
            self.recorder.bind_clock(clock)

    def counter(self, name: str) -> Counter:
        """The named counter, created at zero on first use."""
        found = self._counters.get(name)
        if found is None:
            if self.recorder is not None:
                found = _RecordedCounter(name, self.recorder)
            else:
                found = Counter()
            self._counters[name] = found
        return found

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created empty on first use."""
        found = self._histograms.get(name)
        if found is None:
            if self.recorder is not None:
                found = _RecordedHistogram(name, self.recorder)
            else:
                found = Histogram()
            self._histograms[name] = found
        return found

    def value(self, name: str) -> float:
        """Current value of a counter; 0 if it was never touched."""
        found = self._counters.get(name)
        return found.value if found is not None else 0

    def record_event(self, time: float, name: str) -> None:
        """Append one timestamped event (fault injections, recoveries)."""
        self._events.append((round(float(time), 9), name))

    def trace_event(
        self, kind: str, *, time: float | None = None, **fields: Any
    ) -> None:
        """Record a structured trace event; no-op without a tracer."""
        tracer = self.tracer
        if tracer is None:
            return
        if time is None:
            clock = self._clock
            time = clock() if clock is not None else 0.0
        tracer.event(time, kind, **fields)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict snapshot: sorted counters + histogram summaries.

        The event timeline is included only when non-empty, so clean
        runs keep their historical snapshot shape.
        """
        snapshot: dict[str, Any] = {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }
        if self._events:
            snapshot["events"] = [[time, name] for time, name in self._events]
        return snapshot

    def to_json(self, *, indent: int | None = None) -> str:
        """Canonical JSON rendering — identical runs give identical text."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    def export_state(self) -> dict[str, Any]:
        """Exact, picklable state for cross-process merging.

        Unlike :meth:`snapshot` — which rounds (histogram summaries)
        and re-associates (counter values) — this carries every
        counter's exact partials and every histogram's raw
        observations, so :func:`merge_registry_states` can rebuild a
        registry whose snapshot matches a single-process run bit for
        bit.
        """
        return {
            "counters": {
                name: counter.state()
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: list(histogram.values)
                for name, histogram in sorted(self._histograms.items())
            },
            "events": list(self._events),
        }


def merge_registry_states(
    states: Sequence[dict[str, Any]],
    *,
    max_counters: Collection[str] = (),
) -> MetricsRegistry:
    """Rebuild one registry from per-shard :meth:`~MetricsRegistry.export_state` exports.

    Counters merge by summing exact states (bit-identical to a single
    counter that saw every increment); histograms merge by
    concatenating raw observations in shard order (their summaries are
    order-independent); events merge time-sorted.  Counters named in
    ``max_counters`` merge by taking the maximum shard value instead —
    that is how clock-like readings (``run.virtual_seconds``) combine,
    since every shard's virtual clock starts at zero.
    """
    merged = MetricsRegistry()
    counter_names = sorted({name for s in states for name in s["counters"]})
    for name in counter_names:
        shard_states = [
            s["counters"][name] for s in states if name in s["counters"]
        ]
        if name in max_counters:
            peak = max(
                Counter.from_states([state]).value for state in shard_states
            )
            counter = merged.counter(name)
            counter.inc(peak)
        else:
            merged._counters[name] = Counter.from_states(
                (int_part, tuple(partials))
                for int_part, partials in shard_states
            )
    histogram_names = sorted(
        {name for s in states for name in s["histograms"]}
    )
    for name in histogram_names:
        histogram = merged.histogram(name)
        for state in states:
            histogram.extend(state["histograms"].get(name, ()))
    events = sorted(
        (tuple(event) for state in states for event in state["events"]),
    )
    for time, event_name in events:
        merged.record_event(time, event_name)
    return merged


def ratio(numerator: float, denominator: float) -> float:
    """Guarded ratio: 1.0 for 0/0, +inf for x/0 with x > 0."""
    if denominator == 0:
        return 1.0 if numerator == 0 else float("inf")
    return numerator / denominator


def ratios_from_counters(
    spec: dict[str, float], base: dict[str, float]
) -> SpeculationRatios:
    """The paper's four ratios from two counter mappings.

    Expects the counters the load generator maintains: ``bytes_hops``,
    ``origin_requests``, ``service_cost``, ``miss_bytes`` and
    ``accessed_bytes``.  Works equally on a live snapshot's
    ``counters`` dict and on :meth:`TimeSeriesRecorder.final_values`.
    """

    def miss_rate(counters: dict[str, float]) -> float:
        accessed = counters.get("accessed_bytes", 0)
        return ratio(counters.get("miss_bytes", 0), accessed) if accessed else 0.0

    return SpeculationRatios(
        bandwidth_ratio=ratio(
            spec.get("bytes_hops", 0), base.get("bytes_hops", 0)
        ),
        server_load_ratio=ratio(
            spec.get("origin_requests", 0), base.get("origin_requests", 0)
        ),
        service_time_ratio=ratio(
            spec.get("service_cost", 0), base.get("service_cost", 0)
        ),
        miss_rate_ratio=ratio(miss_rate(spec), miss_rate(base)),
    )


def ratio_curve(
    spec: TimeSeriesRecorder, base: TimeSeriesRecorder
) -> list[tuple[float, SpeculationRatios]]:
    """Per-window four-ratio curve from two recorders.

    Aligns the two cumulative recordings on the union of their window
    boundaries, carrying each counter's last known value forward, and
    computes the four ratios at every boundary.  The final point equals
    :func:`ratios_from_counters` over the recorders' final values — and
    therefore equals the end-of-run live ratios exactly.
    """
    names = (
        "bytes_hops",
        "origin_requests",
        "service_cost",
        "miss_bytes",
        "accessed_bytes",
    )
    sides = []
    for recorder in (spec, base):
        samples = {name: recorder.series(name) for name in names}
        boundaries = {
            point.window_start
            for series in samples.values()
            for point in series
        }
        sides.append((samples, boundaries))
    timeline = sorted(sides[0][1] | sides[1][1])

    def values_at(
        samples: dict[str, tuple[TimeSample, ...]], when: float
    ) -> dict[str, float]:
        values: dict[str, float] = {}
        for name, series in samples.items():
            current = 0.0
            for point in series:
                if point.window_start > when:
                    break
                current = point.value
            values[name] = current
        return values

    return [
        (
            when,
            ratios_from_counters(
                values_at(sides[0][0], when), values_at(sides[1][0], when)
            ),
        )
        for when in timeline
    ]


def bandwidth_curve(
    spec: TimeSeriesRecorder, base: TimeSeriesRecorder
) -> list[tuple[float, float]]:
    """Per-window bytes × hops ratio series from two recorders.

    The bandwidth coordinate of :func:`ratio_curve` on its own — the
    series fleet runs chart to show where in the run the hierarchy's
    shorter serving paths pay for the origin's full-depth pushes.
    Windows where the baseline has moved no bytes yet report ``1.0``.
    """
    sides = []
    for recorder in (spec, base):
        series = recorder.series("bytes_hops")
        boundaries = {point.window_start for point in series}
        sides.append((series, boundaries))
    timeline = sorted(sides[0][1] | sides[1][1])

    def value_at(series: tuple[TimeSample, ...], when: float) -> float:
        current = 0.0
        for point in series:
            if point.window_start > when:
                break
            current = point.value
        return current

    curve: list[tuple[float, float]] = []
    for when in timeline:
        base_value = value_at(sides[1][0], when)
        spec_value = value_at(sides[0][0], when)
        curve.append(
            (when, spec_value / base_value if base_value else 1.0)
        )
    return curve
