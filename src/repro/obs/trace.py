"""Structured tracing: spans/events on the virtual clock.

The four end-of-run ratios say *what* speculation and dissemination
cost; a trace says *why* — which request triggered which speculation
decision, which push paid for which proxy hit, which fault forced which
retry.  A :class:`Tracer` records :class:`TraceEvent` values into a
bounded ring buffer (oldest events drop first, with a drop counter, so
an unbounded run cannot exhaust memory) and renders them as a
deterministic JSONL stream: on the virtual clock, the same seed
produces a byte-identical trace, which ``repro trace --smoke`` asserts
in CI.

Zero overhead when disabled: instrumented code paths call
:meth:`~repro.obs.timeseries.MetricsRegistry.trace_event`, which
returns immediately when no tracer is attached — the hot loops never
build event objects they will not keep.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any

#: Event kinds the runtime and the batch simulators emit.  Free-form
#: kinds are allowed; these are the vocabulary the exporters document.
EVENT_KINDS: tuple[str, ...] = (
    "request",       # a demand request was served (client side)
    "speculation",   # the origin decided to push one rider
    "push",          # a dissemination push landed on a proxy
    "dissemination", # the daemon pushed a plan to a proxy
    "fault",         # a scripted fault fired
    "retry",         # a client retried after a transport failure
    "fleet-serve",   # a fleet node served a document it held
    "fleet-probe",   # a sibling probe resolved a fleet-node miss
    "event",         # free-form timeline marker
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped structured event.

    Attributes:
        time: Virtual-clock seconds (rounded to 9 decimals, the same
            stability contract as the metrics snapshots).
        kind: Event vocabulary entry (see :data:`EVENT_KINDS`).
        fields: Sorted ``(key, value)`` payload pairs — sorted at
            construction so rendering order never depends on call-site
            keyword order.
    """

    time: float
    kind: str
    fields: tuple[tuple[str, Any], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict rendering (``t`` and ``kind`` plus the payload)."""
        record: dict[str, Any] = {"t": self.time, "kind": self.kind}
        record.update(self.fields)
        return record


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent` values.

    Args:
        limit: Ring capacity; when full the *oldest* events are dropped
            and counted in :attr:`dropped` (the tail of a run is what
            post-mortems need).
    """

    __slots__ = ("_events", "dropped")

    def __init__(self, *, limit: int = 65536):
        self._events: deque[TraceEvent] = deque(maxlen=max(1, int(limit)))
        #: Events discarded because the ring was full.
        self.dropped: int = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    def event(self, time: float, kind: str, **fields: Any) -> None:
        """Record one event at ``time`` (virtual seconds)."""
        ring = self._events
        if len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(
            TraceEvent(
                time=round(float(time), 9),
                kind=kind,
                fields=tuple(sorted(fields.items())),
            )
        )

    def to_jsonl(self) -> str:
        """Deterministic JSONL rendering, one event per line.

        Identical runs (same seed, same workload, same code) produce
        byte-identical output — keys are sorted and times are rounded,
        so the text is safe to diff or hash in CI.
        """
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True)
            for event in self._events
        )


def events_to_jsonl(events: tuple[TraceEvent, ...]) -> str:
    """Render an event tuple (e.g. from a report) as deterministic JSONL."""
    return "\n".join(
        json.dumps(event.to_dict(), sort_keys=True) for event in events
    )
