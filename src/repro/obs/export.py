"""Exporters: JSONL traces, Prometheus text, run manifests.

Everything here renders to deterministic text: keys sorted, floats
carried through ``repr`` via :func:`json.dumps`, no wall-clock
timestamps.  Two runs with the same seed, config and commit produce
byte-identical artifacts, so CI can diff them and the trace-smoke gate
can assert equality by hash.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from ..perf.bench import git_revision
from .trace import TraceEvent, events_to_jsonl

__all__ = [
    "config_digest",
    "prometheus_text",
    "run_manifest",
    "trace_jsonl",
]


def trace_jsonl(events: tuple[TraceEvent, ...]) -> str:
    """Deterministic JSONL rendering of a trace event tuple."""
    return events_to_jsonl(events)


def _metric_name(name: str) -> str:
    """Sanitize a registry counter name into a Prometheus metric name."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{cleaned}"


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render without a dot."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: Mapping[str, Any], *, prefix: str = "") -> str:
    """Prometheus text-exposition rendering of a registry snapshot.

    Counters become ``repro_<name>`` counter samples; histogram
    summaries become one gauge per statistic (``_count``, ``_mean``,
    ``_p50``…).  ``prefix`` (e.g. ``"speculative_"``) distinguishes the
    two arms of a paired run inside one scrape.

    Args:
        snapshot: A :meth:`~repro.obs.timeseries.MetricsRegistry.snapshot`
            dict (``counters`` + ``histograms`` keys).
        prefix: Optional name prefix inserted after ``repro_``.
    """
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        metric = _metric_name(prefix + name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        summary = histograms[name]
        for stat in sorted(summary):
            metric = _metric_name(f"{prefix}{name}_{stat}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(summary[stat])}")
    return "\n".join(lines) + ("\n" if lines else "")


def config_digest(config: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON rendering of a config mapping."""
    canonical = json.dumps(
        dict(config), sort_keys=True, default=str, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_manifest(
    *,
    seed: int,
    config: Mapping[str, Any] | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Provenance manifest attached to every observed run.

    Records what is needed to reproduce the artifact: the seed, a
    digest of the effective configuration, and the git commit.  No
    wall-clock timestamp — the manifest itself must be deterministic.

    Args:
        seed: The run's workload seed.
        config: Effective configuration; only its digest is recorded.
        extra: Additional deterministic, JSON-ready sections recorded
            verbatim (e.g. a sampling report or a workload profile).
            Keys must not collide with the manifest's own.
    """
    manifest: dict[str, Any] = {
        "seed": int(seed),
        "config_digest": config_digest(config or {}),
        "git_sha": git_revision(),
    }
    for key, value in (extra or {}).items():
        if key in manifest:
            raise ValueError(f"extra manifest section {key!r} collides")
        manifest[key] = value
    return manifest
