"""Configuration for the ``repro lint`` framework.

:class:`LintConfig` carries everything the engine and checkers need:
which rules are enabled, the architectural layer ranking enforced by
the layering checker, and per-checker tuning knobs.  Defaults encode
this repository's invariants; a ``[tool.repro-lint]`` table in
``pyproject.toml`` can override them so the configuration lives next
to the code it governs.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any


class LintConfigError(Exception):
    """The lint configuration (CLI flags or pyproject table) is invalid."""


#: The architectural DAG of the ``repro`` package, as layer ranks.  A
#: module may only import packages of *strictly lower* rank (imports
#: within one package are always allowed).  Equal-rank packages are
#: peers and must stay independent — e.g. ``dissemination`` and
#: ``speculation`` are the paper's two protocols and must not couple.
DEFAULT_LAYER_RANKS: dict[str, int] = {
    "errors": 0,
    "config": 1,
    "trace": 2,
    "workload": 3,
    "popularity": 4,
    "topology": 4,
    "speculation": 5,
    "dissemination": 5,
    "analysis": 6,
    "perf": 6,
    "obs": 7,
    "core": 8,
    "runtime": 9,
    "fleet": 10,
    "deploy": 11,
    "api": 12,
    "cli": 13,
}

#: Legacy run entry points whose *direct* use is frozen (H004).  New
#: code goes through ``repro.api.Session``; only the facade itself and
#: the engine layers may keep touching these names.
DEFAULT_LEGACY_ENTRY_POINTS: frozenset[str] = frozenset(
    {
        "run_loadtest",
        "run_smoke",
        "run_chaos",
        "run_chaos_smoke",
        "sweep_thresholds",
        "workload_sensitivity",
    }
)

#: Module prefixes allowed to reference the legacy entry points: the
#: facade (which wraps them), and the packages that *define* them and
#: re-export them from their facades.
DEFAULT_LEGACY_ENTRY_ALLOWED: tuple[str, ...] = (
    "repro.api",
    "repro.core",
    "repro.deploy",
    "repro.runtime",
)

#: ``np.random`` attributes that are legitimate under seeded use.
DEFAULT_ALLOWED_NP_RANDOM: frozenset[str] = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: RNG stream role → name substrings.  A variable, attribute or
#: parameter whose terminal name contains one of these substrings is
#: declared to hold that stream's ``Generator``; the rngflow checker
#: flags any other stream's generator flowing into it (R002) and uses
#: the role to type otherwise-anonymous ``default_rng`` results.
DEFAULT_RNG_STREAM_NAMES: dict[str, tuple[str, ...]] = {
    "faults": ("fault_rng", "faults_rng", "chaos_rng"),
    "network": ("jitter_rng", "net_rng", "network_rng", "latency_rng"),
    "retry": ("retry_rng", "backoff_rng"),
    "workload": ("workload_rng", "trace_rng"),
    "loadgen": ("loadgen_rng", "client_rng"),
}

#: Module prefix → stream: a bare ``np.random.default_rng(...)`` call
#: inside one of these modules mints a generator of that stream.
DEFAULT_RNG_STREAM_MODULES: dict[str, str] = {
    "repro.runtime.faults": "faults",
    "repro.runtime.transport": "network",
    "repro.runtime.resilience": "retry",
    "repro.runtime.loadgen": "loadgen",
    "repro.workload": "workload",
}

#: Factory callables whose *result* is a generator of a known stream,
#: wherever they are called from (``retry_rng`` is PR 3's derivation).
DEFAULT_RNG_FACTORIES: dict[str, str] = {
    "retry_rng": "retry",
}

#: Sink callables (by simple name) and the stream whose generator they
#: must be fed.  ``BackoffPolicy.delay(attempt, rng)`` is the canonical
#: retry sink: the caller owns the generator, so a fault or jitter
#: generator reaching it silently couples two streams (R001).
DEFAULT_RNG_SINKS: dict[str, str] = {
    "delay": "retry",
}

#: Call names (terminal attribute) whose result carries virtual-clock
#: seconds when the receiver looks like an event loop or clock — e.g.
#: ``loop.time()``, ``self._clock.time()`` — plus whole-name matches
#: like ``_loop_time``.  Used by the units checker (U001/U002).
DEFAULT_VIRTUAL_TIME_BASES: tuple[str, ...] = ("loop", "clock")

#: Builtins whose shadowing the hygiene checker reports.  Restricted to
#: names that plausibly appear as locals in simulation code; obscure
#: builtins are excluded to keep the rule quiet.
DEFAULT_SHADOWED_BUILTINS: frozenset[str] = frozenset(
    {
        "all", "any", "bin", "bool", "bytes", "dict", "dir", "filter",
        "float", "format", "hash", "id", "input", "int", "iter", "len",
        "list", "map", "max", "min", "next", "object", "open", "print",
        "range", "round", "set", "sorted", "str", "sum", "tuple", "type",
        "vars", "zip",
    }
)


@dataclass(frozen=True)
class LintConfig:
    """Immutable settings consumed by the engine and every checker."""

    #: If non-empty, only these rule ids run (``--select``).
    select: frozenset[str] = frozenset()
    #: Rule ids disabled globally (``--disable`` / pyproject).
    disable: frozenset[str] = frozenset()
    #: Top-level package whose layering is enforced.
    root_package: str = "repro"
    #: Package → rank map realising the architectural DAG.
    layer_ranks: dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_LAYER_RANKS)
    )
    #: ``np.random`` attributes exempt from the determinism checker.
    allowed_np_random: frozenset[str] = DEFAULT_ALLOWED_NP_RANDOM
    #: Builtin names the hygiene checker refuses to see rebound.
    shadowed_builtins: frozenset[str] = DEFAULT_SHADOWED_BUILTINS
    #: Name suffixes treated as byte counters by the numeric checker.
    byte_counter_suffixes: tuple[str, ...] = ("_bytes", "bytes")
    #: Name prefixes treated as byte counters (``bytes_sent`` etc.).
    byte_counter_prefixes: tuple[str, ...] = ("bytes_",)
    #: Name suffixes treated as probabilities by the numeric checker.
    probability_suffixes: tuple[str, ...] = ("probability", "_prob", "p_star")
    #: Modules where ``time.monotonic`` is permitted (D004).  Real-I/O
    #: transport code may measure wall durations; simulation code may not.
    monotonic_modules: tuple[str, ...] = (
        "repro.deploy.bus",
        "repro.runtime.transport",
    )
    #: Deprecated run entry points the hygiene checker (H004) flags.
    legacy_entry_points: frozenset[str] = DEFAULT_LEGACY_ENTRY_POINTS
    #: Module prefixes exempt from H004 (the facade and engine homes).
    legacy_entry_allowed: tuple[str, ...] = DEFAULT_LEGACY_ENTRY_ALLOWED
    #: RNG stream role → name substrings (rngflow checker).
    rng_stream_names: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_RNG_STREAM_NAMES)
    )
    #: Module prefix → stream for anonymous generator creations.
    rng_stream_modules: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_RNG_STREAM_MODULES)
    )
    #: Factory callable name → stream of the generator it returns.
    rng_factories: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_RNG_FACTORIES)
    )
    #: Sink callable name → stream whose generator it must receive.
    rng_sinks: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_RNG_SINKS)
    )
    #: Receiver-name substrings marking ``<recv>.time()`` as virtual.
    virtual_time_bases: tuple[str, ...] = DEFAULT_VIRTUAL_TIME_BASES

    def rule_enabled(self, rule_id: str) -> bool:
        """Apply ``select``/``disable`` filtering to one rule id."""
        if rule_id in self.disable:
            return False
        if self.select and rule_id not in self.select:
            return False
        return True

    def with_updates(self, **changes: Any) -> "LintConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def _coerce_rule_set(value: Any, key: str) -> frozenset[str]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintConfigError(f"[tool.repro-lint] {key} must be a list of strings")
    return frozenset(value)


def load_config(pyproject: Path | None = None) -> LintConfig:
    """Build a :class:`LintConfig`, merging ``[tool.repro-lint]`` overrides.

    Args:
        pyproject: Explicit path to a ``pyproject.toml``.  ``None``
            searches the current directory and its parents; a missing
            file (or one without the table) yields pure defaults.

    Raises:
        LintConfigError: The table exists but is malformed.
    """
    config = LintConfig()
    path = pyproject
    if path is None:
        for candidate in [Path.cwd(), *Path.cwd().parents]:
            if (candidate / "pyproject.toml").is_file():
                path = candidate / "pyproject.toml"
                break
    if path is None or not path.is_file():
        return config
    try:
        with path.open("rb") as handle:
            data = tomllib.load(handle)
    except tomllib.TOMLDecodeError as error:
        raise LintConfigError(f"cannot parse {path}: {error}") from error
    table = data.get("tool", {}).get("repro-lint")
    if table is None:
        return config
    if not isinstance(table, dict):
        raise LintConfigError("[tool.repro-lint] must be a table")

    changes: dict[str, Any] = {}
    if "disable" in table:
        changes["disable"] = _coerce_rule_set(table["disable"], "disable")
    if "select" in table:
        changes["select"] = _coerce_rule_set(table["select"], "select")
    if "root-package" in table:
        if not isinstance(table["root-package"], str):
            raise LintConfigError("[tool.repro-lint] root-package must be a string")
        changes["root_package"] = table["root-package"]
    if "layers" in table:
        layers = table["layers"]
        if not isinstance(layers, dict) or not all(
            isinstance(rank, int) for rank in layers.values()
        ):
            raise LintConfigError(
                "[tool.repro-lint.layers] must map package names to integer ranks"
            )
        changes["layer_ranks"] = dict(layers)
    if "monotonic-modules" in table:
        modules = table["monotonic-modules"]
        if not isinstance(modules, list) or not all(
            isinstance(module, str) for module in modules
        ):
            raise LintConfigError(
                "[tool.repro-lint] monotonic-modules must be a list of strings"
            )
        changes["monotonic_modules"] = tuple(modules)
    if "legacy-entry-points" in table:
        changes["legacy_entry_points"] = _coerce_rule_set(
            table["legacy-entry-points"], "legacy-entry-points"
        )
    if "rng-streams" in table:
        streams = table["rng-streams"]
        if not isinstance(streams, dict) or not all(
            isinstance(names, list)
            and all(isinstance(name, str) for name in names)
            for names in streams.values()
        ):
            raise LintConfigError(
                "[tool.repro-lint.rng-streams] must map stream names to "
                "lists of name substrings"
            )
        changes["rng_stream_names"] = {
            stream: tuple(names) for stream, names in streams.items()
        }
    for key, attr in (
        ("rng-modules", "rng_stream_modules"),
        ("rng-factories", "rng_factories"),
        ("rng-sinks", "rng_sinks"),
    ):
        if key in table:
            mapping = table[key]
            if not isinstance(mapping, dict) or not all(
                isinstance(stream, str) for stream in mapping.values()
            ):
                raise LintConfigError(
                    f"[tool.repro-lint.{key}] must map names to stream names"
                )
            changes[attr] = dict(mapping)
    if "legacy-entry-allowed" in table:
        allowed = table["legacy-entry-allowed"]
        if not isinstance(allowed, list) or not all(
            isinstance(module, str) for module in allowed
        ):
            raise LintConfigError(
                "[tool.repro-lint] legacy-entry-allowed must be a list of strings"
            )
        changes["legacy_entry_allowed"] = tuple(allowed)
    return config.with_updates(**changes) if changes else config
