"""Single-pass visitor dispatch over one file's AST.

Rather than each checker walking the tree independently (N walks for N
checkers), the :class:`Dispatcher` walks once and fans each node out to
every checker that defined a ``visit_<NodeType>`` handler.  Handler maps
are computed per checker *class* and cached, so constructing dispatchers
per file is cheap.

The walk also maintains a parent map (``node._repro_parent``) before any
handler runs, because several checkers need ancestry — e.g. the numeric
checker asks whether a division sits under a guarding ``if``.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator

from .base import Checker, FileContext

_HANDLER_PREFIX = "visit_"
_handler_cache: dict[type, frozenset[str]] = {}


def _handled_types(checker_class: type) -> frozenset[str]:
    """Node-type names a checker class defines handlers for."""
    cached = _handler_cache.get(checker_class)
    if cached is None:
        cached = frozenset(
            name[len(_HANDLER_PREFIX):]
            for name in dir(checker_class)
            if name.startswith(_HANDLER_PREFIX)
            and callable(getattr(checker_class, name))
        )
        _handler_cache[checker_class] = cached
    return cached


def set_parents(tree: ast.AST) -> None:
    """Annotate every node with ``_repro_parent`` (the root gets ``None``)."""
    tree._repro_parent = None  # type: ignore[attr-defined]
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Yield ``node``'s ancestors from nearest to the module root."""
    current = getattr(node, "_repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_repro_parent", None)


class Dispatcher:
    """Fan one file's nodes out to the handlers of many checkers."""

    def __init__(self, checkers: list[Checker]):
        self._checkers = checkers
        # node-type name -> bound handler methods, built lazily per type
        # actually seen in the file; most types have no handlers.
        self._handlers: dict[str, list[Callable[[ast.AST], None]]] = {}
        self._interesting: set[str] = set()
        for checker in checkers:
            self._interesting |= _handled_types(type(checker))

    def _handlers_for(self, type_name: str) -> list[Callable[[ast.AST], None]]:
        handlers = self._handlers.get(type_name)
        if handlers is None:
            handlers = [
                getattr(checker, _HANDLER_PREFIX + type_name)
                for checker in self._checkers
                if type_name in _handled_types(type(checker))
            ]
            self._handlers[type_name] = handlers
        return handlers

    def run(self, ctx: FileContext) -> None:
        """Walk ``ctx.tree`` once, invoking every matching handler."""
        set_parents(ctx.tree)
        for checker in self._checkers:
            checker.begin_file(ctx)
        try:
            for node in ast.walk(ctx.tree):
                type_name = type(node).__name__
                if type_name not in self._interesting:
                    continue
                for handler in self._handlers_for(type_name):
                    handler(node)
        finally:
            for checker in self._checkers:
                checker.end_file(ctx)
