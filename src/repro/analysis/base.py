"""Checker protocol and per-file context for the lint framework.

A checker is a class with ``visit_<NodeType>`` methods; the dispatch
engine (:mod:`repro.analysis.dispatch`) walks each file's AST exactly
once and fans every node out to the checkers that registered a handler
for its type.  Checkers that need a whole-program view (the layering
checker) additionally implement :meth:`Checker.finalize`, which runs
after every file has been visited.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding, Rule, Severity
from .lintconfig import LintConfig
from .suppressions import SuppressionIndex


@dataclass
class FileContext:
    """Everything a checker may want to know about the file being linted."""

    #: Absolute path on disk.
    path: Path
    #: Path as reported in findings (relative to the lint root).
    display_path: str
    #: Dotted module name if the file belongs to the root package
    #: (e.g. ``repro.core.experiment``), else ``None``.
    module: str | None
    #: Raw source lines (1-indexed access via :meth:`line_text`).
    lines: list[str]
    #: Parsed module AST.
    tree: ast.Module
    #: Parsed ``# repro-lint: disable=...`` directives for this file.
    suppressions: SuppressionIndex
    #: Findings reported against this file (suppressed ones excluded).
    findings: list[Finding] = field(default_factory=list)

    def line_text(self, line: int) -> str:
        """Stripped source text of a 1-indexed line ('' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Checker:
    """Base class for all lint checkers.

    Subclasses declare their diagnostics in :attr:`rules` and implement
    any number of ``visit_<NodeType>(node)`` methods.  During a file
    visit, :attr:`ctx` is the current :class:`FileContext`; handlers
    call :meth:`report` to emit findings (suppression and rule
    enable/disable filtering happen there, so handlers stay simple).
    """

    #: Checker name used in reports, e.g. ``determinism``.
    name: str = ""
    #: Diagnostics this checker can produce.
    rules: tuple[Rule, ...] = ()

    def __init__(self, config: LintConfig):
        self.config = config
        self.ctx: FileContext | None = None
        self._rule_index = {rule.rule_id: rule for rule in self.rules}

    # -- lifecycle hooks -------------------------------------------------
    def begin_file(self, ctx: FileContext) -> None:
        """Called before the AST walk of each file."""
        self.ctx = ctx

    def end_file(self, ctx: FileContext) -> None:
        """Called after the AST walk of each file."""
        self.ctx = None

    def finalize(self, files: list[FileContext]) -> None:
        """Called once after all files; override for whole-program checks."""

    # -- reporting -------------------------------------------------------
    def report(
        self,
        rule_id: str,
        node: ast.AST,
        message: str,
        ctx: FileContext | None = None,
    ) -> None:
        """Emit a finding at ``node`` unless disabled or suppressed.

        ``ctx`` defaults to the file currently being visited; finalize-
        phase checkers pass the context the finding belongs to.
        """
        context = ctx if ctx is not None else self.ctx
        if context is None:
            raise RuntimeError(f"{self.name}: report() outside a file visit")
        rule = self._rule_index[rule_id]
        if not self.config.rule_enabled(rule_id):
            return
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        if context.suppressions.is_suppressed(rule_id, line):
            return
        context.findings.append(
            Finding(
                rule_id=rule_id,
                path=context.display_path,
                line=line,
                column=column,
                message=message,
                severity=rule.severity,
                checker=self.name,
                line_text=context.line_text(line),
            )
        )


PARSE_ERROR_RULE = Rule(
    rule_id="E001",
    summary="file could not be parsed as Python",
    severity=Severity.ERROR,
    rationale=(
        "A file the linter cannot parse is a file whose invariants "
        "nobody can check; surface it rather than skipping silently."
    ),
)
