"""Command-line front-end for the lint engine.

Used both by ``repro lint ...`` (the CLI subcommand) and by
``python -m repro.analysis ...``; the two share this module so flags
and exit codes cannot drift apart.

Exit codes:

* ``0`` — no findings (after baseline and suppressions).
* ``1`` — at least one finding.
* ``2`` — usage or configuration error (bad path, unknown rule, ...).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from .baseline import Baseline, BaselineError, default_baseline_path
from .checkers import all_rules, registered_checkers
from .engine import LintResult, run_lint
from .lintconfig import LintConfigError, load_config
from .reporters import REPORTERS

#: Directories linted when no paths are given (the repo's own layout).
DEFAULT_PATHS = ("src", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``lint`` front-end."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based static analysis enforcing the simulation-domain "
            "invariants (determinism, layering, numerical safety, API "
            "hygiene, RNG-stream/clock provenance, async interleaving) "
            "this reproduction depends on"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--checker",
        action="append",
        default=[],
        metavar="NAME",
        help="run only this checker (repeatable; default: all)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to enable exclusively",
    )
    parser.add_argument(
        "--disable",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to disable",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file (default: .repro-lint-baseline.json next to "
        "pyproject.toml)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="prune stale baseline entries (fixed findings, deleted "
        "files, removed rules) and keep the rest",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml carrying [tool.repro-lint] overrides",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule with its summary and exit",
    )
    return parser


def _list_rules() -> str:
    registry = registered_checkers()
    owners = {
        rule.rule_id: name
        for name, checker_class in registry.items()
        for rule in checker_class.rules
    }
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.rule_id}  [{owners[rule.rule_id]}/{rule.severity.value}] "
            f"{rule.summary}"
        )
    return "\n".join(lines)


def _parse_rule_list(raw: str | None) -> frozenset[str]:
    if not raw:
        return frozenset()
    return frozenset(token.strip() for token in raw.split(",") if token.strip())


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point shared by ``repro lint`` and ``python -m repro.analysis``."""
    try:
        return _run(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error. Detach
        # stdout so interpreter shutdown does not re-raise on flush.
        try:
            sys.stdout.close()
        except (OSError, ValueError):
            pass
        return 0


def _run(argv: Sequence[str] | None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        config = load_config(Path(args.config) if args.config else None)
    except LintConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.select:
        config = config.with_updates(select=_parse_rule_list(args.select))
    if args.disable:
        config = config.with_updates(
            disable=config.disable | _parse_rule_list(args.disable)
        )
    known_rules = {rule.rule_id for rule in all_rules()} | {"E001"}
    unknown = (config.select | config.disable) - known_rules
    if unknown:
        print(
            f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
            file=sys.stderr,
        )
        return 2

    paths = [Path(p) for p in (args.paths or DEFAULT_PATHS)]
    try:
        result = run_lint(
            paths,
            config=config,
            checker_names=args.checker or None,
        )
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    if result.unknown_directive_rules:
        print(
            "warning: suppression directive(s) reference unknown rule "
            f"id(s): {', '.join(result.unknown_directive_rules)}",
            file=sys.stderr,
        )

    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )
    if args.write_baseline:
        Baseline.write(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    stale: list[str] = []
    stale_reasons: dict[str, str] = {}
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        new, baselined, stale = baseline.split(result.findings)
        stale_reasons = baseline.audit(
            result.findings,
            known_rules=known_rules,
            base_dir=Path.cwd(),
        )
        result = LintResult(
            findings=new,
            baselined=baselined,
            files_checked=result.files_checked,
            suppression_directives=result.suppression_directives,
            unknown_directive_rules=result.unknown_directive_rules,
        )
        if args.update_baseline and stale:
            removed = baseline.prune(stale)
            baseline.save()
            print(
                f"pruned {removed} stale baseline entr"
                f"{'y' if removed == 1 else 'ies'} from {baseline_path}",
                file=sys.stderr,
            )
            stale, stale_reasons = [], {}

    renderer = REPORTERS[args.format]
    output = renderer(result, stale, stale_reasons)
    if output:
        print(output)
    return result.exit_code
