"""``repro.analysis`` — AST-based static analysis for simulation invariants.

The reproduction's headline numbers are only meaningful if every run is
bit-reproducible, the package layering stays a DAG, and the arithmetic
feeding Table 1 is numerically safe.  This package machine-checks those
properties with a pluggable checker framework:

* :mod:`~repro.analysis.engine` — discovery + single-pass dispatch.
* :mod:`~repro.analysis.dataflow` — reusable CFG/provenance engine
  behind the flow-based checkers.
* :mod:`~repro.analysis.checkers` — determinism, layering, numeric
  safety, API hygiene, RNG-stream provenance, clock/units provenance
  and async-interleaving checkers (plus a registry for new ones).
* :mod:`~repro.analysis.baseline` / :mod:`~repro.analysis.suppressions`
  — grandfathering and inline opt-outs.
* :mod:`~repro.analysis.schedules` — the dynamic schedule-perturbation
  race gate behind ``repro racecheck``.
* :mod:`~repro.analysis.runner` — the ``repro lint`` front-end, also
  reachable as ``python -m repro.analysis``.

This package sits beside ``repro.core`` in the layering DAG: it may not
import any simulation layer, and only ``repro.cli`` may import it.
"""

from __future__ import annotations

from .base import Checker, FileContext
from .baseline import Baseline, default_baseline_path
from .checkers import all_rules, register, registered_checkers
from .engine import LintResult, run_lint
from .findings import Finding, Rule, Severity
from .lintconfig import DEFAULT_LAYER_RANKS, LintConfig, load_config
from .runner import main
from .schedules import RaceCheckReport, ScheduleRun, run_schedule_sweep

__all__ = [
    "Baseline",
    "Checker",
    "DEFAULT_LAYER_RANKS",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "RaceCheckReport",
    "Rule",
    "ScheduleRun",
    "Severity",
    "all_rules",
    "default_baseline_path",
    "load_config",
    "main",
    "register",
    "registered_checkers",
    "run_lint",
    "run_schedule_sweep",
]
