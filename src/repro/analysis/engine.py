"""Lint engine: file discovery, per-file dispatch, whole-program finalize.

The engine is deliberately independent of the CLI so tests (and the
self-check test in tier 1) can call :func:`run_lint` directly and get
structured :class:`~repro.analysis.findings.Finding` values back.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .base import PARSE_ERROR_RULE, Checker, FileContext
from .checkers import registered_checkers
from .dispatch import Dispatcher
from .findings import Finding, assign_occurrences
from .lintconfig import LintConfig
from .suppressions import SuppressionIndex

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset(
    {
        "__pycache__", ".git", ".hypothesis", ".pytest_cache",
        ".ruff_cache", ".mypy_cache", "build", "dist", "out",
        ".eggs", "node_modules", ".venv", "venv",
    }
)


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list[Finding]
    #: Findings filtered out because they matched the baseline.
    baselined: list[Finding] = field(default_factory=list)
    #: Number of files successfully parsed and checked.
    files_checked: int = 0
    #: Count of inline suppression directives encountered.
    suppression_directives: int = 0
    #: Rule ids named by suppression directives that match no known
    #: rule (typo or removed rule) — surfaced as a warning, not a crash.
    unknown_directive_rules: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survived filtering."""
        return 1 if self.findings else 0


def discover_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: A named path does not exist.
    """
    found: set[Path] = set()
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                found.add(path.resolve())
            continue
        for candidate in path.rglob("*.py"):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            found.add(candidate.resolve())
    return sorted(found)


def module_name_for(path: Path, root_package: str) -> str | None:
    """Dotted module name if ``path`` lives inside the root package.

    ``.../src/repro/core/experiment.py`` → ``repro.core.experiment``;
    ``__init__.py`` keeps an explicit ``.__init__`` suffix so relative
    imports resolve uniformly.  Files outside the package (benchmarks,
    examples) return ``None`` and are exempt from layering.
    """
    parts = list(path.parts)
    try:
        anchor = len(parts) - 1 - parts[::-1].index(root_package)
    except ValueError:
        return None
    # Require the anchor to actually be the package directory (it must
    # contain the file and an __init__.py), not a same-named file.
    package_dir = Path(*parts[: anchor + 1])
    if not (package_dir / "__init__.py").is_file():
        return None
    relative = parts[anchor:]
    relative[-1] = relative[-1][: -len(".py")]
    return ".".join(relative)


def _build_context(
    path: Path, display_path: str, config: LintConfig
) -> tuple[FileContext | None, Finding | None]:
    """Parse one file; on syntax errors produce an E001 finding."""
    source = path.read_text(encoding="utf-8", errors="replace")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        line = error.lineno or 1
        finding = Finding(
            rule_id=PARSE_ERROR_RULE.rule_id,
            path=display_path,
            line=line,
            column=(error.offset or 1) - 1,
            message=f"syntax error: {error.msg}",
            severity=PARSE_ERROR_RULE.severity,
            checker="engine",
            line_text=lines[line - 1].strip() if 0 < line <= len(lines) else "",
        )
        return None, finding
    suppressions = SuppressionIndex(lines)
    # Directives on any line of a multi-line statement must reach the
    # line findings are reported at (the statement/expression start).
    suppressions.attach_tree(tree)
    ctx = FileContext(
        path=path,
        display_path=display_path,
        module=module_name_for(path, config.root_package),
        lines=lines,
        tree=tree,
        suppressions=suppressions,
    )
    return ctx, None


def _display_path(path: Path, base: Path) -> str:
    try:
        return path.relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: list[Path],
    config: LintConfig | None = None,
    checker_names: list[str] | None = None,
    base_dir: Path | None = None,
) -> LintResult:
    """Run every registered checker over ``paths``.

    Args:
        paths: Files and/or directories to lint.
        config: Lint configuration (defaults to :class:`LintConfig`).
        checker_names: Restrict to these checkers (default: all).
        base_dir: Paths in findings are reported relative to this
            directory (default: the current working directory).

    Returns:
        A :class:`LintResult`; baseline filtering is the caller's job
        (see :mod:`repro.analysis.baseline`) so the engine stays pure.
    """
    config = config or LintConfig()
    base = (base_dir or Path.cwd()).resolve()
    registry = registered_checkers()
    if checker_names is not None:
        unknown = sorted(set(checker_names) - set(registry))
        if unknown:
            raise KeyError(f"unknown checkers: {', '.join(unknown)}")
        registry = {name: registry[name] for name in checker_names}
    checkers: list[Checker] = [
        checker_class(config) for checker_class in registry.values()
    ]
    dispatcher = Dispatcher(checkers)

    contexts: list[FileContext] = []
    parse_failures: list[Finding] = []
    for path in discover_files(paths):
        ctx, failure = _build_context(path, _display_path(path, base), config)
        if failure is not None:
            if config.rule_enabled(failure.rule_id):
                parse_failures.append(failure)
            continue
        assert ctx is not None
        dispatcher.run(ctx)
        contexts.append(ctx)

    for checker in checkers:
        checker.finalize(contexts)

    findings = parse_failures + [
        finding for ctx in contexts for finding in ctx.findings
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    known_rules = {
        rule.rule_id
        for checker_class in registered_checkers().values()
        for rule in checker_class.rules
    } | {PARSE_ERROR_RULE.rule_id}
    unknown_directive_rules = tuple(
        sorted(
            {
                rule
                for ctx in contexts
                for rule in ctx.suppressions.referenced_rules
            }
            - known_rules
        )
    )
    return LintResult(
        findings=assign_occurrences(findings),
        files_checked=len(contexts),
        suppression_directives=sum(
            ctx.suppressions.directive_count for ctx in contexts
        ),
        unknown_directive_rules=unknown_directive_rules,
    )
