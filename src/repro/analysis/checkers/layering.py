"""Layering checker — enforce the architectural DAG of the package.

The repository's layers form a DAG (configured in
:data:`repro.analysis.lintconfig.DEFAULT_LAYER_RANKS`, overridable via
``[tool.repro-lint.layers]``)::

    errors < config < trace < workload < {popularity, topology}
           < {speculation, dissemination} < {core, analysis} < cli

* ``L001`` — an import that flows *upward* (or sideways between peer
  packages at the same rank).  Upward imports are how "trace parsing
  suddenly depends on the simulator" regressions start; sideways
  coupling between ``speculation`` and ``dissemination`` would entangle
  the paper's two independent protocols.
* ``L002`` — an import cycle among modules of the root package, at
  module granularity (so intra-package cycles are caught too).
* ``L003`` — a package that is missing from the layer map.  New
  packages must declare where they sit in the architecture.

Per-file ``visit_*`` handlers record edges; the real verdicts are
produced in :meth:`LayeringChecker.finalize`, which sees the whole
import graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..base import Checker, FileContext
from ..findings import Rule, Severity


@dataclass(frozen=True)
class ImportEdge:
    """One static import: ``source`` module imports ``target`` module."""

    source: str
    target: str
    node: ast.stmt
    ctx: FileContext


def resolve_relative(module: str, level: int, name: str | None) -> str | None:
    """Resolve a ``from ... import`` target to an absolute dotted name.

    Args:
        module: Absolute dotted name of the importing module.
        level: Number of leading dots (0 = absolute import).
        name: The module path after the dots (may be ``None``).

    Returns:
        The absolute dotted name, or ``None`` if the relative import
        escapes the package root (a bug the engine reports elsewhere).
    """
    if level == 0:
        return name
    parts = module.split(".")
    # Relative imports are resolved against the containing package:
    # one dot = the current package, so strip the module's own name
    # first, then one more component per extra dot.
    if len(parts) < level:
        return None
    base = parts[: len(parts) - level]
    if name:
        base = base + name.split(".")
    return ".".join(base) if base else None


class LayeringChecker(Checker):
    """Build the intra-package import graph and enforce the DAG."""

    name = "layering"
    rules = (
        Rule(
            "L001",
            "import violates the architectural layering DAG",
            Severity.ERROR,
            "Lower layers must not know about higher ones; peer layers "
            "(speculation/dissemination) must stay independent.",
        ),
        Rule(
            "L002",
            "import cycle detected",
            Severity.ERROR,
            "Cycles make initialisation order fragile and refactors "
            "non-local; the module graph must stay acyclic.",
        ),
        Rule(
            "L003",
            "package missing from the layer map",
            Severity.ERROR,
            "Every top-level package must declare its rank in "
            "[tool.repro-lint.layers] so the DAG stays total.",
        ),
    )

    #: Root-level modules that may import anything (package façade).
    _UNRANKED_TOP = frozenset({"__init__", "__main__"})

    def __init__(self, config):
        super().__init__(config)
        self._edges: list[ImportEdge] = []

    # -- per-file edge collection ---------------------------------------
    def _record(self, target: str | None, node: ast.stmt) -> None:
        ctx = self.ctx
        assert ctx is not None
        if ctx.module is None or target is None:
            return
        root = self.config.root_package
        if target != root and not target.startswith(root + "."):
            return
        # `from . import sibling` implies an edge to the containing
        # package's __init__, which would make every such import look
        # like a cycle (__init__ re-exports the submodule).  Edges to
        # an ancestor package of the importer are structural, not
        # architectural — drop them; the per-symbol edges remain.
        source_package = ctx.module.rsplit(".", 1)[0]
        if source_package == target or source_package.startswith(target + "."):
            return
        self._edges.append(ImportEdge(ctx.module, target, node, ctx))

    def visit_Import(self, node: ast.Import) -> None:
        """Record absolute import edges."""
        for alias in node.names:
            self._record(alias.name, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Record from-import edges, resolving relative levels."""
        if self.ctx is None or self.ctx.module is None:
            return
        base = resolve_relative(self.ctx.module, node.level, node.module)
        if base is None:
            return
        # `from pkg import name` may bind either a symbol or a module;
        # for layering the package-level edge to `pkg` is what matters,
        # but record `pkg.name` too so module-level cycle detection can
        # see through re-export façades.
        self._record(base, node)
        for alias in node.names:
            if alias.name != "*":
                self._record(f"{base}.{alias.name}", node)

    # -- whole-program verdicts -----------------------------------------
    def _component(self, module: str) -> str | None:
        """Top-level component of a root-package module (None for root)."""
        parts = module.split(".")
        if parts[0] != self.config.root_package or len(parts) == 1:
            return None
        return parts[1]

    def finalize(self, files: list[FileContext]) -> None:
        known_modules = {f.module for f in files if f.module}
        ranks = self.config.layer_ranks
        reported_unranked: set[str] = set()

        graph: dict[str, set[str]] = {}
        reported_l001: set[tuple[str, int, str, str]] = set()
        for edge in self._edges:
            # Keep cycle detection at module granularity, but only over
            # modules that actually exist as files (symbol imports of
            # `pkg.ClassName` resolve to nothing and are dropped here —
            # the package-level edge was recorded separately).
            target = edge.target
            if target not in known_modules:
                if target + ".__init__" in known_modules:
                    target = target + ".__init__"
                else:
                    continue
            graph.setdefault(edge.source, set()).add(target)

            src_pkg = self._component(edge.source)
            dst_pkg = self._component(target)
            if src_pkg == dst_pkg:
                continue  # intra-package imports are always allowed
            if src_pkg in self._UNRANKED_TOP:
                continue  # repro/__init__.py, __main__.py may import anything
            if dst_pkg in self._UNRANKED_TOP or dst_pkg is None:
                continue  # importing the root façade carries no rank
            for key, module_name in ((src_pkg, edge.source), (dst_pkg, target)):
                if key is not None and key not in ranks:
                    if module_name not in reported_unranked:
                        reported_unranked.add(module_name)
                        self.report(
                            "L003",
                            edge.node,
                            f"package `{key}` has no rank in the layer "
                            "map; add it to [tool.repro-lint.layers]",
                            ctx=edge.ctx,
                        )
            if src_pkg is None or src_pkg not in ranks or dst_pkg not in ranks:
                continue
            if ranks[src_pkg] <= ranks[dst_pkg]:
                direction = (
                    "sideways (peer layers must stay independent)"
                    if ranks[src_pkg] == ranks[dst_pkg]
                    else "upward"
                )
                dedup = (
                    edge.ctx.display_path,
                    getattr(edge.node, "lineno", 0),
                    src_pkg,
                    dst_pkg,
                )
                if dedup in reported_l001:
                    continue
                reported_l001.add(dedup)
                self.report(
                    "L001",
                    edge.node,
                    f"`{src_pkg}` (rank {ranks[src_pkg]}) imports "
                    f"`{dst_pkg}` (rank {ranks[dst_pkg]}): {direction} "
                    "import breaks the layering DAG",
                    ctx=edge.ctx,
                )

        self._report_cycles(graph, files)

    def _report_cycles(
        self, graph: dict[str, set[str]], files: list[FileContext]
    ) -> None:
        """Detect cycles with an iterative three-colour DFS."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[str, int] = {}
        by_module = {f.module: f for f in files if f.module}
        cycles: list[list[str]] = []

        for start in sorted(graph):
            if colour.get(start, WHITE) != WHITE:
                continue
            stack: list[tuple[str, list[str]]] = [(start, [start])]
            while stack:
                module, path = stack.pop()
                if module == "__POP__":
                    colour[path[-1]] = BLACK
                    continue
                if colour.get(module, WHITE) != WHITE:
                    continue
                colour[module] = GREY
                stack.append(("__POP__", [module]))
                for neighbour in sorted(graph.get(module, ())):
                    state = colour.get(neighbour, WHITE)
                    if state == GREY and neighbour in path:
                        cycle = path[path.index(neighbour):] + [neighbour]
                        cycles.append(cycle)
                    elif state == WHITE:
                        stack.append((neighbour, path + [neighbour]))

        seen: set[frozenset[str]] = set()
        for cycle in cycles:
            key = frozenset(cycle)
            if key in seen:
                continue
            seen.add(key)
            anchor = cycle[0]
            ctx = by_module.get(anchor)
            if ctx is None:
                continue
            self.report(
                "L002",
                ctx.tree,
                "import cycle: " + " -> ".join(cycle),
                ctx=ctx,
            )
