"""Numerical-safety checker for simulator arithmetic.

The paper's metrics are ratios (bandwidth, server load, service time)
over byte and request counters, and the speculation policy manipulates
probabilities ``p*[i, j]``.  Three classes of numerical sloppiness keep
showing up in simulation codebases, and each one silently corrupts
exactly the numbers Table 1 reports:

* ``N001`` — dividing by ``len(...)``/``sum(...)``/``count(...)`` with
  no emptiness guard in sight: the first empty trace window turns a
  sweep into a ``ZeroDivisionError`` (or worse, a silent ``nan`` with
  numpy scalars).
* ``N002`` — assigning arithmetic straight into a probability-named
  variable without clamping: floating-point closure sums drift above
  1.0, and a ``p*`` of 1.0000000002 breaks ``BaselineConfig``-style
  validation far from the cause.
* ``N003`` — initialising a byte counter to ``0.0``: accumulating
  exact integer byte counts in floats loses exactness past 2**53 and
  makes equality-based regression tests flaky.  Counters start at
  ``0``; division promotes to float at the *end* of the pipeline.
"""

from __future__ import annotations

import ast

from ..base import Checker
from ..dispatch import ancestors
from ..findings import Rule, Severity

#: Zero-able callables whose result is a dangerous denominator.
_RISKY_DENOMINATOR_CALLS = frozenset({"len", "sum", "count"})

#: Call names accepted as clamps/guards for probabilities.
_CLAMP_CALLS = frozenset({"min", "max", "clip", "clamp", "_clamp"})


def _call_name(node: ast.AST) -> str | None:
    """Bare or attribute call name (``len``, ``x.count`` -> ``count``)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_zero_float(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value == 0.0
    )


class NumericSafetyChecker(Checker):
    """Guarded division, clamped probabilities, integer byte counters."""

    name = "numeric"
    rules = (
        Rule(
            "N001",
            "division by len()/sum() without an emptiness guard",
            Severity.ERROR,
            "Empty trace windows are normal (cold caches, short "
            "sessions); ratio code must guard the denominator.",
        ),
        Rule(
            "N002",
            "probability assigned from arithmetic without clamping",
            Severity.WARNING,
            "Float closure arithmetic drifts outside [0, 1]; clamp at "
            "the assignment so the invariant holds at the source.",
        ),
        Rule(
            "N003",
            "byte counter initialised as float (use 0, not 0.0)",
            Severity.WARNING,
            "Byte counts are exact integers; float accumulation loses "
            "exactness and makes regression comparisons flaky.",
        ),
    )

    # -- N001: unguarded division ---------------------------------------
    def _denominator_guarded(self, node: ast.BinOp) -> bool:
        """Is the division protected by a test mentioning its denominator?

        Walks the ancestor chain looking at ``if``/``while``/ternary
        conditions and ``assert`` tests; the guard counts if its source
        text contains the denominator's source text (so ``if requests:``
        guards ``x / len(requests)``), or if it is a plain truthiness/
        length/emptiness check on anything (conservative: any enclosing
        conditional that mentions the same call or its argument).
        """
        denominator = node.right
        denom_text = ast.unparse(denominator)
        arg_text = None
        if isinstance(denominator, ast.Call) and denominator.args:
            arg_text = ast.unparse(denominator.args[0])
        tests: list[ast.expr] = []
        child: ast.AST = node
        for parent in ancestors(node):
            if isinstance(parent, (ast.If, ast.While)):
                # Only bodies are guarded; the test itself is not.
                if child is not parent.test:
                    tests.append(parent.test)
            elif isinstance(parent, ast.IfExp):
                if child is parent.body or child is parent.orelse:
                    tests.append(parent.test)
            elif isinstance(parent, ast.Assert):
                tests.append(parent.test)
            elif isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Guards do not cross function boundaries, but a guard
                # clause earlier in the same function body counts:
                # `if not requests: return ...` style early exits.
                for stmt in parent.body:
                    if stmt.lineno >= node.lineno:
                        break
                    if isinstance(stmt, (ast.If, ast.Assert)):
                        tests.append(stmt.test)
                break
            child = parent
        for test in tests:
            text = ast.unparse(test)
            if denom_text in text:
                return True
            if arg_text is not None and arg_text in text:
                return True
        return False

    def visit_BinOp(self, node: ast.BinOp) -> None:
        """Flag division by an unguarded `len()`/`sum()`/`count()` (N001)."""
        if not isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            return
        name = _call_name(node.right)
        if name not in _RISKY_DENOMINATOR_CALLS:
            return
        # `max(1, len(x))` and `len(x) or 1` style denominators are the
        # guard, not the hazard — they never reach here because the
        # denominator is then the max()/BoolOp, not the len() call.
        if self._denominator_guarded(node):
            return
        self.report(
            "N001",
            node,
            f"division by `{ast.unparse(node.right)}` has no emptiness "
            "guard; guard the denominator or use `max(1, ...)`",
        )

    # -- N002 / N003: assignments ---------------------------------------
    def _target_names(self, node: ast.AST) -> list[str]:
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, ast.Attribute):
            return [node.attr]
        if isinstance(node, (ast.Tuple, ast.List)):
            names: list[str] = []
            for element in node.elts:
                names.extend(self._target_names(element))
            return names
        return []

    def _is_probability_name(self, name: str) -> bool:
        lowered = name.lower().lstrip("_")
        return any(
            lowered == suffix.lstrip("_") or lowered.endswith(suffix)
            for suffix in self.config.probability_suffixes
        )

    def _is_byte_counter_name(self, name: str) -> bool:
        lowered = name.lower().lstrip("_")
        return any(
            lowered.endswith(suffix)
            for suffix in self.config.byte_counter_suffixes
        ) or any(
            lowered.startswith(prefix)
            for prefix in self.config.byte_counter_prefixes
        )

    def _rhs_is_unclamped_arithmetic(self, value: ast.expr) -> bool:
        if isinstance(value, ast.BinOp) and isinstance(
            value.op, (ast.Div, ast.Mult, ast.Add, ast.Sub, ast.Pow)
        ):
            return True
        call = _call_name(value)
        if call in ("exp",):
            return True
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        """Flag unclamped probability assignments (N002) and float byte counters (N003)."""
        names = [
            name
            for target in node.targets
            for name in self._target_names(target)
        ]
        for name in names:
            if self._is_probability_name(name) and (
                self._rhs_is_unclamped_arithmetic(node.value)
            ):
                self.report(
                    "N002",
                    node,
                    f"`{name}` is assigned raw arithmetic; clamp to "
                    "[0, 1] (e.g. min(1.0, max(0.0, ...))) so the "
                    "probability invariant holds where it is created",
                )
            if self._is_byte_counter_name(name) and _is_zero_float(node.value):
                self.report(
                    "N003",
                    node,
                    f"byte counter `{name}` starts at 0.0; use the "
                    "integer 0 so byte accounting stays exact",
                )
