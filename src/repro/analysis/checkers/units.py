"""Clock/units provenance checker (flow-based).

The runtime keeps three incompatible scalar families in play: virtual-
clock seconds (``loop.time()`` under the installed
:class:`~repro.runtime.clock.VirtualClock`), wall-clock durations
(``time.perf_counter``/``monotonic``, legal only in transport and perf
code), and exact integer byte counters.  N003 catches byte counters
*initialised* as floats by name pattern; this checker extends that to
flow: it tracks the three families through assignments and calls with
the :mod:`repro.analysis.dataflow` engine and flags arithmetic that
mixes them.

Rules:

* ``U001`` — virtual-clock seconds mixed (``+``/``-``/comparison)
  with wall-clock seconds.  The two timelines are unrelated; their
  difference is meaningless and schedule-dependent.
* ``U002`` — a byte counter mixed additively (or compared) with a
  time value of either family.  Bytes convert to seconds only through
  an explicit rate division, which the analysis treats as a unit
  boundary (division strips both labels).

Known limitations (documented in ``docs/static_analysis.md``): labels
do not flow through container elements or ``min``/``max``-style
builtins, module-level code is not analysed, and wall/virtual typing
of bare parameters relies on ``__init__`` attribute seeding plus
return-label call summaries.
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext
from ..dataflow import (
    EMPTY,
    FunctionRecord,
    ProgramIndex,
    ProvenanceAnalysis,
    ref_of,
    terminal_name,
)
from ..findings import Rule, Severity

VIRTUAL = "time:virtual"
WALL = "time:wall"
BYTES = "bytes"

#: ``time`` module calls yielding wall-clock scalars.
_WALL_CALLS = frozenset({"perf_counter", "monotonic", "process_time"})

#: Additive operators that require like units on both sides.
_ADDITIVE = (ast.Add, ast.Sub)

#: Operators treated as unit-conversion boundaries (rates/ratios).
_CONVERSION = (ast.Div, ast.FloorDiv, ast.Mod)


class _UnitsAnalysis(ProvenanceAnalysis):
    """One function's unit provenance; collects mixing events."""

    def __init__(
        self,
        checker: "UnitsChecker",
        record: FunctionRecord,
        initial_env: dict[str, frozenset[str]],
    ):
        super().__init__(record.node, initial_env)
        self.checker = checker
        self.record = record
        #: (node, rule, description of the two sides)
        self.mix_events: list[tuple[ast.AST, str, str]] = []

    # -- sources ---------------------------------------------------------
    def leaf_labels(self, node, ref):
        name = terminal_name(ref)
        if name and self.checker.is_byte_counter(name):
            return frozenset({BYTES})
        return EMPTY

    def call_result(self, call, arg_labels, env):
        checker = self.checker
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _WALL_CALLS or (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and ref_of(func) == "time.time"
        ):
            return frozenset({WALL})
        if name == "time" and isinstance(func, ast.Attribute):
            base = terminal_name(ref_of(func.value)).lower()
            if any(
                needle in base
                for needle in checker.config.virtual_time_bases
            ) or self._is_loop_call(func.value):
                return frozenset({VIRTUAL})
        if name and "loop_time" in name:
            return frozenset({VIRTUAL})
        record = checker.index.resolve_call(call, self.record.class_name)
        if record is not None:
            return checker.return_summary(record)
        return EMPTY

    @staticmethod
    def _is_loop_call(node: ast.expr) -> bool:
        """``asyncio.get_event_loop()``-style receiver expressions."""
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name in ("get_event_loop", "get_running_loop")

    # -- mixing ----------------------------------------------------------
    def combine_binop(self, node, left, right):
        if isinstance(node.op, _CONVERSION):
            # Rates and ratios change units; stop label propagation so
            # e.g. ``body_bytes / bandwidth`` can be added to seconds.
            return (left | right) - {BYTES, VIRTUAL, WALL}
        return left | right

    def observe_binop(self, node, left, right):
        if not self.observing or not isinstance(node.op, _ADDITIVE):
            return
        self._check_pair(node, left, right)

    def observe_compare(self, node, parts):
        if not self.observing:
            return
        for index in range(len(parts) - 1):
            self._check_pair(node, parts[index], parts[index + 1])

    def _check_pair(self, node, left, right):
        both = left | right
        if VIRTUAL in both and WALL in both and not (
            VIRTUAL in left and WALL in left
        ) and not (VIRTUAL in right and WALL in right):
            self.mix_events.append(
                (node, "U001", "virtual-clock seconds with wall-clock seconds")
            )
        time_side = {VIRTUAL, WALL}
        if BYTES in both and (both & time_side):
            bytes_only = (BYTES in left and not (left & time_side)) or (
                BYTES in right and not (right & time_side)
            )
            time_only = (left & time_side and BYTES not in left) or (
                right & time_side and BYTES not in right
            )
            if bytes_only and time_only:
                self.mix_events.append(
                    (node, "U002", "a byte counter with a time value")
                )


class UnitsChecker(Checker):
    """Flow-based unit separation for clocks and byte counters."""

    name = "units"
    rules = (
        Rule(
            "U001",
            "virtual-clock seconds mixed with wall-clock seconds",
            Severity.ERROR,
            "The virtual timeline advances by simulated delays, the "
            "wall timeline by host speed; sums or comparisons across "
            "them are schedule-dependent noise.",
        ),
        Rule(
            "U002",
            "byte counter mixed additively with a time value",
            Severity.ERROR,
            "Bytes become seconds only through an explicit rate "
            "division; direct addition or comparison corrupts both "
            "the traffic and the timing ledgers.",
        ),
    )

    def __init__(self, config):
        super().__init__(config)
        self.index: ProgramIndex | None = None
        self._return_cache: dict[int, frozenset[str]] = {}
        self._class_envs: dict[
            tuple[int, str], dict[str, frozenset[str]]
        ] = {}

    def is_byte_counter(self, name: str) -> bool:
        """Return ``True`` if ``name`` matches the byte-counter patterns."""
        lowered = name.lower().lstrip("_")
        return any(
            lowered.endswith(suffix)
            for suffix in self.config.byte_counter_suffixes
        ) or any(
            lowered.startswith(prefix)
            for prefix in self.config.byte_counter_prefixes
        )

    def return_summary(self, record: FunctionRecord) -> frozenset[str]:
        """Return the unit labels a call to ``record`` may produce."""
        key = id(record.node)
        cached = self._return_cache.get(key)
        if cached is not None:
            return cached
        self._return_cache[key] = EMPTY  # break recursion
        analysis = _UnitsAnalysis(self, record, self._seed_env(record))
        analysis.run()
        labels = analysis.return_labels & {VIRTUAL, WALL, BYTES}
        self._return_cache[key] = labels
        return labels

    def _seed_env(self, record: FunctionRecord) -> dict[str, frozenset[str]]:
        env: dict[str, frozenset[str]] = {}
        for param in record.param_names:
            if self.is_byte_counter(param):
                env[param] = frozenset({BYTES})
        if record.class_name is not None and record.node.name != "__init__":
            class_env = self._class_envs.get(
                (id(record.ctx), record.class_name)
            )
            if class_env:
                for ref, labels in class_env.items():
                    env.setdefault(ref, labels)
        return env

    def finalize(self, files: list[FileContext]) -> None:
        self.index = ProgramIndex(files)
        for record in self.index.records:
            if record.class_name is None or record.node.name != "__init__":
                continue
            analysis = _UnitsAnalysis(self, record, self._seed_env(record))
            analysis.run()
            attrs = {
                ref: labels & frozenset({VIRTUAL, WALL, BYTES})
                for ref, labels in analysis.all_env.items()
                if ref.startswith("self.")
            }
            attrs = {ref: labels for ref, labels in attrs.items() if labels}
            if attrs:
                self._class_envs[(id(record.ctx), record.class_name)] = attrs

        for record in self.index.records:
            analysis = _UnitsAnalysis(self, record, self._seed_env(record))
            analysis.run()
            for node, rule_id, description in analysis.mix_events:
                self.report(
                    rule_id,
                    node,
                    f"expression mixes {description}; keep the unit "
                    "families separate (convert through an explicit "
                    "rate first)",
                    ctx=record.ctx,
                )
