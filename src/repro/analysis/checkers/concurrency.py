"""Async-interleaving checker for the cooperative runtime (A001–A003).

Everything in ``repro.runtime`` shares state between asyncio tasks —
proxy holdings, daemon repush queues, metrics — and the only mutual
exclusion is the absence of ``await`` between a read and its dependent
write.  These rules make that discipline checkable:

* ``A001`` — inside one ``async def``, an ``await`` (or ``async
  for``/``async with``) occurs between a read of a ``self.*``
  attribute and a *dependent* write of the same attribute: the classic
  asyncio lost-update window.  Dependence is tracked through locals
  (``x = self.attr...`` then ``self.attr.pop(x)``); guard-only reads
  (``if self.attr: ... self.attr = []``) are deliberately excluded.
* ``A002`` — a coroutine function is called as a bare expression
  statement without being awaited (the call silently does nothing).
* ``A003`` — the task created by ``loop.create_task`` /
  ``asyncio.ensure_future`` is dropped without being stored or
  awaited, so it can be garbage-collected mid-flight and its
  exceptions vanish.  ``TaskGroup``-style receivers (terminal name
  ``tg`` or containing ``group``), which own their tasks, are exempt.

The A001 scan is linear in source order within one function body and
does not follow loop back-edges or descend into nested ``def``/
``lambda`` scopes; see ``docs/static_analysis.md`` for the limitation
list.
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext
from ..findings import Rule, Severity

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "setdefault",
        "update", "move_to_end",
    }
)

#: ``asyncio`` module-level coroutine functions (callable bare by
#: mistake just as easily as locally defined ones).
_ASYNCIO_COROUTINES = frozenset(
    {"sleep", "gather", "wait", "wait_for", "to_thread"}
)

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _self_attr(node: ast.expr) -> str | None:
    """Attribute name when ``node`` is exactly ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _InterleavingScan:
    """Linear read/await/write scan of one async function body."""

    def __init__(self) -> None:
        self.position = 0
        #: attr -> positions at which ``self.attr`` was read
        self.reads: dict[str, list[int]] = {}
        #: positions of awaits (incl. async for / async with headers)
        self.awaits: list[int] = []
        #: local name -> {attr: earliest read position it derives from}
        self.deps: dict[str, dict[str, int]] = {}
        #: (node, attr, read position) candidates
        self.findings: list[tuple[ast.AST, str, int]] = []

    # -- helpers ---------------------------------------------------------
    def _await_between(self, read_pos: int, write_pos: int) -> bool:
        return any(read_pos < a < write_pos for a in self.awaits)

    def _expr_dependencies(self, expr: ast.expr) -> dict[str, int]:
        """Self-attrs the value of ``expr`` derives from, with the
        position their originating read happened at."""
        dependencies: dict[str, int] = {}
        for node in ast.walk(expr):
            if isinstance(node, _SCOPES):
                continue
            attr = _self_attr(node)
            if attr is not None and isinstance(node.ctx, ast.Load):
                current = dependencies.get(attr)
                if current is None or self.position < current:
                    dependencies[attr] = self.position
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                for attr, pos in self.deps.get(node.id, {}).items():
                    current = dependencies.get(attr)
                    if current is None or pos < current:
                        dependencies[attr] = pos
        return dependencies

    def _record_reads_and_awaits(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, _SCOPES):
                continue
            if isinstance(node, ast.Await):
                self.awaits.append(self.position)
            attr = _self_attr(node)
            if attr is not None and isinstance(node.ctx, ast.Load):
                self.reads.setdefault(attr, []).append(self.position)

    def _statement_has_await(self, exprs: list[ast.expr]) -> bool:
        return any(
            isinstance(node, ast.Await)
            for expr in exprs
            for node in ast.walk(expr)
            if not isinstance(node, _SCOPES)
        )

    def _note_write(
        self, node: ast.AST, attr: str, value_exprs: list[ast.expr]
    ) -> None:
        write_pos = self.position
        has_await_here = self._statement_has_await(value_exprs)
        for expr in value_exprs:
            for dep_attr, read_pos in self._expr_dependencies(expr).items():
                if dep_attr != attr:
                    continue
                if self._await_between(read_pos, write_pos) or (
                    read_pos == write_pos and has_await_here
                ):
                    self.findings.append((node, attr, read_pos))
                    return

    def _bind_local(self, target: ast.expr, value: ast.expr) -> None:
        dependencies = self._expr_dependencies(value)
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.deps[node.id] = dict(dependencies)

    # -- statement walk --------------------------------------------------
    def scan(self, body: list[ast.stmt]) -> None:
        for statement in body:
            self.position += 1
            self._statement(statement)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _SCOPES):
            return  # nested scope: separate task context
        header_exprs = self._header_exprs(stmt)
        # Writes are checked against state *before* this statement's
        # reads are recorded, then reads/awaits/bindings are applied.
        self._collect_writes(stmt, header_exprs)
        for expr in header_exprs:
            self._record_reads_and_awaits(expr)
        if isinstance(stmt, (ast.AsyncFor, ast.AsyncWith)):
            self.awaits.append(self.position)
        self._apply_bindings(stmt)
        for body in self._nested_bodies(stmt):
            self.scan(body)

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
        """Expressions evaluated by the statement itself (not bodies)."""
        if isinstance(stmt, ast.Assign):
            return [stmt.value, *stmt.targets]
        if isinstance(stmt, ast.AugAssign):
            return [stmt.value, stmt.target]
        if isinstance(stmt, ast.AnnAssign):
            return [stmt.value] if stmt.value is not None else []
        if isinstance(stmt, (ast.Expr, ast.Return)):
            return [stmt.value] if stmt.value is not None else []
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, ast.Raise):
            return [e for e in (stmt.exc, stmt.cause) if e is not None]
        if isinstance(stmt, ast.Assert):
            return [stmt.test]
        if isinstance(stmt, ast.Delete):
            return list(stmt.targets)
        if isinstance(stmt, ast.Match):
            return [stmt.subject]
        return []

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if isinstance(block, list) and block and isinstance(
                block[0], ast.stmt
            ):
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        for case in getattr(stmt, "cases", []) or []:
            bodies.append(case.body)
        return bodies

    def _collect_writes(
        self, stmt: ast.stmt, header_exprs: list[ast.expr]
    ) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._target_write(target, stmt, [stmt.value])
        elif isinstance(stmt, ast.AugAssign):
            attr = _self_attr(stmt.target)
            if attr is not None:
                # ``self.x += v`` reads and writes in one statement; a
                # window exists only if the statement itself awaits.
                if self._statement_has_await([stmt.value]):
                    self.findings.append((stmt, attr, self.position))
            else:
                self._target_write(stmt.target, stmt, [stmt.value])
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._target_write(stmt.target, stmt, [stmt.value])
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_attr(target.value)
                    if attr is not None:
                        self._note_write(stmt, attr, [target.slice])
        # Mutator method calls can hide anywhere in the statement.
        for expr in header_exprs:
            for node in ast.walk(expr):
                if isinstance(node, _SCOPES):
                    continue
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in _MUTATORS:
                    continue
                attr = _self_attr(func.value)
                if attr is None:
                    continue
                arg_exprs = list(node.args) + [
                    keyword.value for keyword in node.keywords
                ]
                if arg_exprs:
                    self._note_write(node, attr, arg_exprs)

    def _target_write(
        self, target: ast.expr, stmt: ast.stmt, values: list[ast.expr]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target_write(element, stmt, values)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._note_write(stmt, attr, values)
            return
        if isinstance(target, ast.Subscript):
            container = _self_attr(target.value)
            if container is not None:
                self._note_write(stmt, container, [target.slice, *values])

    def _apply_bindings(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._bind_local(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind_local(stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                merged = self._expr_dependencies(stmt.value)
                for attr, pos in self.deps.get(stmt.target.id, {}).items():
                    merged.setdefault(attr, pos)
                self.deps[stmt.target.id] = merged
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_local(stmt.target, stmt.iter)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_local(item.optional_vars, item.context_expr)
        # Walrus targets inside header expressions:
        for expr in self._header_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, ast.NamedExpr):
                    self._bind_local(node.target, node.value)


class ConcurrencyChecker(Checker):
    """Async lost-update windows and dropped coroutines/tasks."""

    name = "concurrency"
    rules = (
        Rule(
            "A001",
            "await between a read and a dependent write of the same "
            "self attribute (lost-update window)",
            Severity.ERROR,
            "Another task can mutate the attribute while this one is "
            "suspended; the write then acts on stale state.  Re-read "
            "after the await, use immutable snapshots, or suppress "
            "with a comment explaining why the interleaving is safe.",
        ),
        Rule(
            "A002",
            "coroutine called but never awaited",
            Severity.ERROR,
            "Calling an async function returns a coroutine object; as "
            "a bare statement it is discarded unexecuted and the "
            "intended work silently never happens.",
        ),
        Rule(
            "A003",
            "task handle from create_task/ensure_future dropped",
            Severity.WARNING,
            "An unreferenced task can be garbage-collected mid-flight "
            "and its exception is never observed; store the handle or "
            "await it.",
        ),
    )

    def __init__(self, config):
        super().__init__(config)
        self._module_async: dict[str, bool] = {}
        self._class_async: dict[str, dict[str, bool]] = {}

    # -- per-file coroutine index ---------------------------------------
    def begin_file(self, ctx: FileContext) -> None:
        super().begin_file(ctx)
        # name -> unambiguously async?  (a name defined both sync and
        # async anywhere in the file resolves to "unknown")
        self._module_async = {}
        self._class_async = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                methods = self._class_async.setdefault(node.name, {})
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        methods[item.name] = isinstance(
                            item, ast.AsyncFunctionDef
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                is_async = isinstance(node, ast.AsyncFunctionDef)
                if node.name in self._module_async and (
                    self._module_async[node.name] != is_async
                ):
                    self._module_async[node.name] = False
                else:
                    self._module_async[node.name] = is_async

    # -- A001 ------------------------------------------------------------
    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Scan one coroutine for lost-update windows (A001)."""
        scan = _InterleavingScan()
        scan.scan(node.body)
        for finding_node, attr, _read_pos in scan.findings:
            self.report(
                "A001",
                finding_node,
                f"`self.{attr}` is read, then awaited across, then "
                "written from the stale value; another task may have "
                "mutated it in between",
            )

    # -- A002 / A003 ----------------------------------------------------
    def _enclosing_class(self, node: ast.AST) -> str | None:
        from ..dispatch import ancestors

        for parent in ancestors(node):
            if isinstance(parent, ast.ClassDef):
                return parent.name
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
        return None

    def _is_known_coroutine_call(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return self._module_async.get(func.id, False)
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self":
                class_name = self._enclosing_class(call)
                if class_name is not None:
                    return self._class_async.get(class_name, {}).get(
                        func.attr, False
                    )
                return False
            if isinstance(base, ast.Name) and base.id == "asyncio":
                return func.attr in _ASYNCIO_COROUTINES
        return False

    def visit_Expr(self, node: ast.Expr) -> None:
        """Flag dropped coroutines (A002) and task handles (A003)."""
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "create_task",
            "ensure_future",
        ):
            receiver = func.value
            name = receiver.id if isinstance(receiver, ast.Name) else (
                receiver.attr if isinstance(receiver, ast.Attribute) else ""
            )
            lowered = name.lower()
            if lowered == "tg" or "group" in lowered:
                return  # TaskGroup owns its tasks
            self.report(
                "A003",
                node,
                "task handle is dropped; store it (and await or cancel "
                "it on shutdown) so failures are observed",
            )
            return
        if self._is_known_coroutine_call(call):
            target = ast.unparse(func)
            self.report(
                "A002",
                node,
                f"`{target}(...)` returns a coroutine that is never "
                "awaited; the call does nothing",
            )
