"""RNG stream-separation checker (flow-based).

PR 3 split the runtime's randomness into independently seeded streams
— fault injection, network jitter, retry backoff, workload synthesis,
load generation — precisely so that enabling one subsystem cannot
perturb another's draws.  The determinism checker (D001–D003) enforces
*seeding*; this checker enforces *separation*: a ``Generator`` minted
for one stream must never flow into a sink or role belonging to
another.

Built on :mod:`repro.analysis.dataflow`: every function is analysed
once with its parameters seeded both with their role labels (a
parameter named ``fault_rng`` carries ``rng:faults``) and with
per-parameter taint labels used to summarise which stream each
parameter is expected to carry.  Summaries propagate through the call
graph (conservatively, by unambiguous simple name), so a generator
that crosses one or two forwarding functions before hitting
``BackoffPolicy.delay`` is still tracked.

Rules:

* ``R001`` — a generator of stream X reaches a declared sink of
  stream Y (sinks live in ``LintConfig.rng_sinks``).
* ``R002`` — a generator of stream X is bound to a name whose role
  marks it as stream Y (one object aliased into two stream roles).
* ``R003`` — a generator of stream X is passed to a function whose
  parameter is inferred (by name role or by call-graph summary) to
  expect stream Y.
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext
from ..dataflow import (
    EMPTY,
    FunctionRecord,
    ProgramIndex,
    ProvenanceAnalysis,
    terminal_name,
)
from ..findings import Rule, Severity

#: Constructors that mint a new ``numpy.random`` generator.
_GENERATOR_CONSTRUCTORS = frozenset({"default_rng", "Generator"})

_RNG_PREFIX = "rng:"
_PARAM_PREFIX = "param:"
_UNKNOWN_STREAM = "?"


def _call_simple_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _streams_of(labels: frozenset[str]) -> set[str]:
    return {
        label[len(_RNG_PREFIX):]
        for label in labels
        if label.startswith(_RNG_PREFIX)
        and label[len(_RNG_PREFIX):] != _UNKNOWN_STREAM
    }


def _params_of(labels: frozenset[str]) -> set[str]:
    return {
        label[len(_PARAM_PREFIX):]
        for label in labels
        if label.startswith(_PARAM_PREFIX)
    }


class _RngAnalysis(ProvenanceAnalysis):
    """One function's RNG provenance; collects events, reports nothing."""

    def __init__(
        self,
        checker: "RngStreamChecker",
        record: FunctionRecord,
        initial_env: dict[str, frozenset[str]],
    ):
        super().__init__(record.node, initial_env)
        self.checker = checker
        self.record = record
        #: (call, arg labels, expected stream) at declared sinks.
        self.sink_events: list[tuple[ast.Call, list, str]] = []
        #: (call, callee record, [(param, labels)]) at resolved calls.
        self.call_events: list[
            tuple[ast.Call, FunctionRecord, list[tuple[str, frozenset[str]]]]
        ] = []
        #: (node, ref, labels, role stream) at role-named bindings.
        self.alias_events: list[tuple[ast.AST, str, frozenset[str], str]] = []

    # -- sources ---------------------------------------------------------
    def call_result(self, call, arg_labels, env):
        name = _call_simple_name(call)
        checker = self.checker
        if name in checker.config.rng_factories:
            return frozenset({_RNG_PREFIX + checker.config.rng_factories[name]})
        if name in _GENERATOR_CONSTRUCTORS:
            stream = checker.stream_for_module(self.record.module)
            return frozenset({_RNG_PREFIX + (stream or _UNKNOWN_STREAM)})
        record = checker.index.resolve_call(call, self.record.class_name)
        if record is not None:
            return checker.return_summary(record)
        return EMPTY

    # -- sinks and call sites -------------------------------------------
    def observe_call(self, call, arg_labels, env):
        if not self.observing:
            return
        checker = self.checker
        name = _call_simple_name(call)
        expected = checker.config.rng_sinks.get(name or "")
        if expected is not None:
            self.sink_events.append((call, list(arg_labels), expected))
            return
        record = checker.index.resolve_call(call, self.record.class_name)
        if record is None or record.node is self.record.node:
            return
        bound = ProgramIndex.bind_arguments(call, record)
        if not bound:
            return
        # arg_labels aligns with call.args then call.keywords; map the
        # already-computed labels back to each argument expression
        # rather than re-evaluating (hooks must fire exactly once).
        labels_by_arg: dict[int, frozenset[str]] = {}
        for position, arg in enumerate(call.args):
            if position < len(arg_labels):
                labels_by_arg[id(arg)] = arg_labels[position]
        offset = len(call.args)
        for position, keyword in enumerate(call.keywords):
            if offset + position < len(arg_labels):
                labels_by_arg[id(keyword.value)] = arg_labels[offset + position]
        pairs = []
        for param, arg in bound:
            labels = labels_by_arg.get(id(arg), EMPTY)
            if labels:
                pairs.append((param, labels))
        if pairs:
            self.call_events.append((call, record, pairs))

    # -- aliasing --------------------------------------------------------
    def bind(self, ref, labels, value, node):
        role = self.checker.role_of(terminal_name(ref))
        if role is None:
            return labels
        if self.observing and _streams_of(labels) - {role}:
            self.alias_events.append((node, ref, labels, role))
        if _RNG_PREFIX + _UNKNOWN_STREAM in labels:
            # An anonymous generator takes the stream of the role it is
            # bound to — the binding *is* the declaration.
            labels = (labels - {_RNG_PREFIX + _UNKNOWN_STREAM}) | {
                _RNG_PREFIX + role
            }
        return labels


class RngStreamChecker(Checker):
    """Whole-program RNG stream separation (R001–R003)."""

    name = "rngflow"
    rules = (
        Rule(
            "R001",
            "RNG generator of one stream reaches a sink of another stream",
            Severity.ERROR,
            "Each subsystem draws from its own seeded stream; feeding a "
            "sink from a foreign stream couples the two subsystems' "
            "draw sequences and breaks A/B determinism.",
        ),
        Rule(
            "R002",
            "RNG generator aliased into a different stream role",
            Severity.ERROR,
            "Binding one Generator object under two stream roles makes "
            "every draw in one subsystem advance the other's sequence.",
        ),
        Rule(
            "R003",
            "RNG generator crosses a call boundary into another stream's "
            "parameter",
            Severity.ERROR,
            "Call-graph summaries track which stream each parameter "
            "expects; passing a foreign stream couples subsystems even "
            "when the sink is several calls away.",
        ),
    )

    def __init__(self, config):
        super().__init__(config)
        self.index: ProgramIndex | None = None
        self._return_cache: dict[int, frozenset[str]] = {}
        self._class_envs: dict[
            tuple[int, str], dict[str, frozenset[str]]
        ] = {}

    # -- config lookups --------------------------------------------------
    def role_of(self, name: str) -> str | None:
        """Stream role a terminal name declares (None if no/ambiguous)."""
        lowered = name.lower()
        matches = {
            stream
            for stream, needles in self.config.rng_stream_names.items()
            if any(needle in lowered for needle in needles)
        }
        if len(matches) == 1:
            return next(iter(matches))
        return None

    def stream_for_module(self, module: str | None) -> str | None:
        """Return the default stream configured for ``module``, if any."""
        if module is None:
            return None
        for prefix, stream in self.config.rng_stream_modules.items():
            if module == prefix or module.startswith(prefix + "."):
                return stream
        return None

    def return_summary(self, record: FunctionRecord) -> frozenset[str]:
        """RNG labels of a function's return value (memoised, acyclic)."""
        key = id(record.node)
        cached = self._return_cache.get(key)
        if cached is not None:
            return cached
        self._return_cache[key] = EMPTY  # break recursion
        analysis = _RngAnalysis(self, record, self._seed_env(record))
        analysis.run()
        labels = frozenset(
            label
            for label in analysis.return_labels
            if label.startswith(_RNG_PREFIX)
        )
        self._return_cache[key] = labels
        return labels

    # -- environment seeding --------------------------------------------
    def _seed_env(self, record: FunctionRecord) -> dict[str, frozenset[str]]:
        env: dict[str, frozenset[str]] = {}
        for param in record.param_names:
            labels = frozenset({_PARAM_PREFIX + param})
            role = self.role_of(param)
            if role is not None:
                labels |= {_RNG_PREFIX + role}
            env[param] = labels
        if record.class_name is not None:
            class_env = self._class_envs.get(
                (id(record.ctx), record.class_name)
            )
            if class_env and record.node.name != "__init__":
                for ref, labels in class_env.items():
                    env.setdefault(ref, labels)
        return env

    def _collect_class_envs(self, files: list[FileContext]) -> None:
        assert self.index is not None
        for record in self.index.records:
            if record.class_name is None or record.node.name != "__init__":
                continue
            analysis = _RngAnalysis(self, record, self._seed_env(record))
            analysis.run()
            attrs = {
                ref: frozenset(
                    label
                    for label in labels
                    if label.startswith(_RNG_PREFIX)
                )
                for ref, labels in analysis.all_env.items()
                if ref.startswith("self.")
            }
            attrs = {ref: labels for ref, labels in attrs.items() if labels}
            if attrs:
                self._class_envs[(id(record.ctx), record.class_name)] = attrs

    # -- driver ----------------------------------------------------------
    def finalize(self, files: list[FileContext]) -> None:
        self.index = ProgramIndex(files)
        self._collect_class_envs(files)

        analyses: list[tuple[FunctionRecord, _RngAnalysis]] = []
        for record in self.index.records:
            analysis = _RngAnalysis(self, record, self._seed_env(record))
            analysis.run()
            analyses.append((record, analysis))

        expectations = self._solve_expectations(analyses)
        for record, analysis in analyses:
            self._report_events(record, analysis, expectations)

    def _solve_expectations(
        self, analyses: list[tuple[FunctionRecord, _RngAnalysis]]
    ) -> dict[tuple[int, str], str]:
        """Fixpoint of "parameter P of function F expects stream S".

        Base facts: a role-named parameter expects its role's stream; a
        parameter whose taint reaches a declared sink expects the
        sink's stream.  Propagation: if an argument tainted by caller
        parameter P flows into callee parameter Q, P inherits Q's
        expectation.  Conflicting inferences drop the parameter (no
        guessing).
        """
        expectations: dict[tuple[int, str], str] = {}
        conflicted: set[tuple[int, str]] = set()

        def record_fact(key: tuple[int, str], stream: str) -> bool:
            if key in conflicted:
                return False
            current = expectations.get(key)
            if current is None:
                expectations[key] = stream
                return True
            if current != stream:
                del expectations[key]
                conflicted.add(key)
                return True
            return False

        edges: list[tuple[tuple[int, str], tuple[int, str]]] = []
        for record, analysis in analyses:
            for param in record.param_names:
                role = self.role_of(param)
                if role is not None:
                    record_fact((id(record.node), param), role)
            for _call, arg_labels, expected in analysis.sink_events:
                for labels in arg_labels:
                    for param in _params_of(labels):
                        record_fact((id(record.node), param), expected)
            for _call, callee, pairs in analysis.call_events:
                for callee_param, labels in pairs:
                    for caller_param in _params_of(labels):
                        edges.append(
                            (
                                (id(record.node), caller_param),
                                (id(callee.node), callee_param),
                            )
                        )
        for _ in range(8):  # summaries converge within call-graph depth
            changed = False
            for caller_key, callee_key in edges:
                stream = expectations.get(callee_key)
                if stream is not None and record_fact(caller_key, stream):
                    changed = True
            if not changed:
                break
        return expectations

    def _report_events(
        self,
        record: FunctionRecord,
        analysis: _RngAnalysis,
        expectations: dict[tuple[int, str], str],
    ) -> None:
        ctx = record.ctx
        for call, arg_labels, expected in analysis.sink_events:
            foreign = set()
            for labels in arg_labels:
                foreign |= _streams_of(labels) - {expected}
            if foreign:
                name = _call_simple_name(call)
                self.report(
                    "R001",
                    call,
                    f"`{name}(...)` is a {expected}-stream sink but "
                    f"receives a generator of stream "
                    f"{'/'.join(sorted(foreign))}; streams must stay "
                    "independent",
                    ctx=ctx,
                )
        for node, ref, labels, role in analysis.alias_events:
            foreign = _streams_of(labels) - {role}
            if foreign:
                self.report(
                    "R002",
                    node,
                    f"`{ref}` declares the {role} stream role but is "
                    f"bound to a generator of stream "
                    f"{'/'.join(sorted(foreign))}; one Generator must "
                    "not serve two streams",
                    ctx=ctx,
                )
        for call, callee, pairs in analysis.call_events:
            for param, labels in pairs:
                expected = expectations.get((id(callee.node), param))
                if expected is None:
                    continue
                foreign = _streams_of(labels) - {expected}
                if foreign:
                    self.report(
                        "R003",
                        call,
                        f"argument `{param}` of `{callee.qualname}` "
                        f"expects the {expected} stream but receives a "
                        f"generator of stream "
                        f"{'/'.join(sorted(foreign))}",
                        ctx=ctx,
                    )
