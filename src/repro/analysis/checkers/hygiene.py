"""API-hygiene checker — the classic Python traps, simulator edition.

* ``H001`` — mutable default arguments.  A shared default list/dict is
  per-*process* state, which breaks the "two simulations in one process
  are independent" assumption the benchmark harness relies on.
* ``H002`` — ``except:`` / overly broad ``except Exception`` that
  swallows the error.  The library's contract (see
  :mod:`repro.errors`) is that genuine bugs propagate; a handler this
  broad must re-raise or it converts crashes into silently wrong
  Table-1 numbers.
* ``H003`` — shadowing a builtin (``len``, ``sum``, ``id``, ...) with a
  parameter or local.  In numeric code ``sum`` and ``max`` are load-
  bearing; rebinding them produces confusing late failures.
* ``H004`` — importing or calling a deprecated run entry point
  (``run_loadtest``, ``sweep_thresholds``, ...) outside the packages
  that own the compatibility shims.  New code goes through
  :class:`repro.api.Session`; the shims exist only so downstream users
  get a :class:`DeprecationWarning` instead of an ImportError.
"""

from __future__ import annotations

import ast

from ..base import Checker
from ..findings import Rule, Severity


def _body_reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body (re-)raise on every path it cares about?

    Conservative: any ``raise`` statement anywhere in the handler body
    counts as "the error is not swallowed".
    """
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


class ApiHygieneChecker(Checker):
    """Mutable defaults, swallowed exceptions, shadowed builtins."""

    name = "hygiene"
    rules = (
        Rule(
            "H001",
            "mutable default argument",
            Severity.ERROR,
            "Default values are evaluated once per process; a mutable "
            "default is hidden shared state between simulation runs.",
        ),
        Rule(
            "H002",
            "bare/broad except swallows errors",
            Severity.ERROR,
            "Catching Exception (or everything) without re-raising "
            "turns bugs into silently wrong results; catch the narrow "
            "ReproError subclass you mean, or re-raise.",
        ),
        Rule(
            "H003",
            "builtin shadowed by parameter or assignment",
            Severity.WARNING,
            "Rebinding len/sum/max/... in numeric code invites "
            "confusing failures far from the rebind.",
        ),
        Rule(
            "H004",
            "deprecated run entry point used internally",
            Severity.ERROR,
            "The legacy run_*/sweep_* functions are DeprecationWarning "
            "shims kept for downstream users; internal code must go "
            "through repro.api.Session (or the execute_*/evaluate_* "
            "engines the shims delegate to).",
        ),
    )

    _MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)
    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict",
                                "OrderedDict", "Counter", "deque"})

    # -- H001 ------------------------------------------------------------
    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef):
        args = node.args
        named = args.posonlyargs + args.args + args.kwonlyargs
        defaults = list(args.defaults) + list(args.kw_defaults)
        # Align defaults to the tail of the positional args, then the
        # kw-only args (kw_defaults is already 1:1 with kwonlyargs).
        positional = args.posonlyargs + args.args
        pos_defaults = args.defaults
        pairs = list(
            zip(positional[len(positional) - len(pos_defaults):], pos_defaults)
        ) + [
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        ]
        del named, defaults
        for arg, default in pairs:
            mutable = isinstance(default, self._MUTABLE_LITERALS)
            if isinstance(default, ast.Call):
                func = default.func
                callee = (
                    func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None
                )
                mutable = callee in self._MUTABLE_CALLS
            if mutable:
                self.report(
                    "H001",
                    default,
                    f"argument `{arg.arg}` of `{node.name}` has a mutable "
                    "default; use None and create the value inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check defaults (H001) and parameter names (H003)."""
        self._check_defaults(node)
        self._check_shadowed_params(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._check_defaults(node)
        self._check_shadowed_params(node)

    # -- H002 ------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """Flag bare/broad exception handlers that swallow errors (H002)."""
        if node.type is None:
            if not _body_reraises(node):
                self.report(
                    "H002",
                    node,
                    "bare `except:` swallows every error (including "
                    "KeyboardInterrupt); catch a specific exception or "
                    "re-raise",
                )
            return
        broad = {"Exception", "BaseException"}
        names: list[str] = []
        types = (
            node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        )
        for type_node in types:
            if isinstance(type_node, ast.Name):
                names.append(type_node.id)
        if any(name in broad for name in names) and not _body_reraises(node):
            self.report(
                "H002",
                node,
                f"`except {' / '.join(names)}` without re-raise swallows "
                "simulator bugs; catch the narrow ReproError subclass "
                "you expect, or add `raise`",
            )

    # -- H003 ------------------------------------------------------------
    def _check_shadowed_params(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        every = (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        for arg in every:
            if arg.arg in self.config.shadowed_builtins:
                self.report(
                    "H003",
                    arg,
                    f"parameter `{arg.arg}` of `{node.name}` shadows the "
                    f"builtin `{arg.arg}`",
                )

    # -- H004 ------------------------------------------------------------
    def _legacy_exempt(self) -> bool:
        """Is the current file allowed to touch the legacy entry points?

        Only the packages that own the shims (``repro.api``,
        ``repro.core``, ``repro.runtime`` by default) are; files outside
        the root package (benchmarks, examples) never are.
        """
        ctx = self.ctx
        assert ctx is not None
        module = ctx.module
        if module is None:
            return False
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.config.legacy_entry_allowed
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Flag imports of the deprecated run entry points (H004)."""
        if self._legacy_exempt():
            return
        for alias in node.names:
            if alias.name in self.config.legacy_entry_points:
                self.report(
                    "H004",
                    node,
                    f"`{alias.name}` is a deprecated shim; use "
                    "repro.api.Session instead (see docs/api.md)",
                )

    def visit_Call(self, node: ast.Call) -> None:
        """Flag attribute calls of the deprecated entry points (H004)."""
        if self._legacy_exempt():
            return
        func = node.func
        name = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name)
            else None
        )
        if name in self.config.legacy_entry_points:
            self.report(
                "H004",
                node,
                f"call to deprecated `{name}`; use repro.api.Session "
                "instead (see docs/api.md)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        """Flag assignments that shadow builtins (H003)."""
        for target in node.targets:
            elements = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for element in elements:
                if (
                    isinstance(element, ast.Name)
                    and element.id in self.config.shadowed_builtins
                ):
                    self.report(
                        "H003",
                        element,
                        f"assignment to `{element.id}` shadows a builtin",
                    )
