"""Checker registry for the ``repro lint`` framework.

Checkers register here by name; the engine instantiates every
registered checker (or a selected subset) per run.  Third-party or
experiment-local checkers can call :func:`register` before invoking
the engine programmatically.
"""

from __future__ import annotations

from ..base import Checker
from .concurrency import ConcurrencyChecker
from .determinism import DeterminismChecker
from .hygiene import ApiHygieneChecker
from .layering import LayeringChecker
from .numeric import NumericSafetyChecker
from .rngflow import RngStreamChecker
from .units import UnitsChecker

_REGISTRY: dict[str, type[Checker]] = {}


def register(checker_class: type[Checker]) -> type[Checker]:
    """Add a checker class to the registry (usable as a decorator)."""
    if not checker_class.name:
        raise ValueError(f"{checker_class.__name__} has no name")
    _REGISTRY[checker_class.name] = checker_class
    return checker_class


def registered_checkers() -> dict[str, type[Checker]]:
    """Name → class map of all registered checkers (copy)."""
    return dict(_REGISTRY)


def all_rules() -> list:
    """Every rule of every registered checker, sorted by rule id."""
    rules = [
        rule
        for checker_class in _REGISTRY.values()
        for rule in checker_class.rules
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)


for _checker in (
    DeterminismChecker,
    LayeringChecker,
    NumericSafetyChecker,
    ApiHygieneChecker,
    RngStreamChecker,
    UnitsChecker,
    ConcurrencyChecker,
):
    register(_checker)

__all__ = [
    "ApiHygieneChecker",
    "ConcurrencyChecker",
    "DeterminismChecker",
    "LayeringChecker",
    "NumericSafetyChecker",
    "RngStreamChecker",
    "UnitsChecker",
    "all_rules",
    "register",
    "registered_checkers",
]
