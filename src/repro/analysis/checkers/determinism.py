"""Determinism checker — no unseeded randomness, no wall-clock reads.

The paper's evaluation is trace-driven: the same trace, seed and
configuration must reproduce Table 1 bit-for-bit.  The codebase
therefore threads ``np.random.Generator`` instances (derived from
``config.seed``) through every stochastic component.  This checker
machine-checks that convention:

* ``D001`` — the stdlib ``random`` module is banned; its global state
  makes results depend on import order and on unrelated callers.
* ``D002`` — the legacy ``np.random.*`` global API (``np.random.rand``,
  ``np.random.seed``, ...) is banned; randomness must flow through an
  explicit ``Generator``.
* ``D003`` — ``np.random.default_rng()`` *without* a seed argument
  draws OS entropy; a seed (or ``SeedSequence``) must be passed.
* ``D004`` — wall-clock reads (``time.time()``, ``datetime.now()``,
  ...) leak real time into simulated time.  ``time.perf_counter``
  stays legal everywhere (it measures the *measurement*, not the
  simulation); ``time.monotonic`` is permitted only in the modules
  named by ``LintConfig.monotonic_modules`` — the real-socket
  transport, where wall durations are the thing being served.
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext
from ..findings import Rule, Severity

#: (penultimate, last) dotted-name components that read the wall clock.
_WALL_CLOCK = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "localtime"),
        ("time", "ctime"),
        ("time", "gmtime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Monotonic reads: wall-clock durations, allowed only in the modules
#: the config names (the real-I/O transport).
_MONOTONIC = frozenset(
    {
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
    }
)


def _dotted_name(node: ast.AST) -> list[str]:
    """Flatten ``a.b.c`` attribute chains into components ([] if dynamic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


class DeterminismChecker(Checker):
    """Forbid unseeded randomness and wall-clock leakage."""

    name = "determinism"
    rules = (
        Rule(
            "D001",
            "stdlib `random` is banned; pass an np.random.Generator instead",
            Severity.ERROR,
            "The global Mersenne state makes runs depend on import order "
            "and on every other caller of `random`.",
        ),
        Rule(
            "D002",
            "legacy global np.random API call; use an explicit Generator",
            Severity.ERROR,
            "np.random.seed/rand/choice mutate hidden global state, so two "
            "simulations sharing a process contaminate each other.",
        ),
        Rule(
            "D003",
            "np.random.default_rng() without a seed draws OS entropy",
            Severity.ERROR,
            "An unseeded Generator cannot reproduce Table 1; derive the "
            "seed from config.seed or accept a Generator parameter.",
        ),
        Rule(
            "D004",
            "wall-clock read in simulation code",
            Severity.ERROR,
            "time.time()/datetime.now() couple simulated time to real "
            "time; simulated clocks must come from the trace.",
        ),
    )

    def begin_file(self, ctx: FileContext) -> None:
        super().begin_file(ctx)
        # Aliases bound to the numpy module ("np", "numpy", ...) and to
        # the numpy.random submodule, collected up front so handler
        # order never matters.
        self._numpy_aliases: set[str] = set()
        self._np_random_aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        self._numpy_aliases.add(local)
                    if alias.name == "numpy.random":
                        self._np_random_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        self._np_random_aliases.add(alias.asname or "random")

    # -- imports ---------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        """Flag `import random` (D001)."""
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    "D001", node, "import of stdlib `random` is forbidden"
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Flag from-imports of stdlib `random` (D001) and `numpy.random` legacy names (D002)."""
        if node.level == 0 and node.module and (
            node.module == "random" or node.module.startswith("random.")
        ):
            self.report(
                "D001", node, "import from stdlib `random` is forbidden"
            )
        if node.level == 0 and node.module == "numpy.random":
            # `from numpy.random import rand` — same global-state trap.
            for alias in node.names:
                if alias.name not in self.config.allowed_np_random:
                    self.report(
                        "D002",
                        node,
                        f"`from numpy.random import {alias.name}` uses the "
                        "legacy global RNG; use np.random.default_rng",
                    )

    # -- calls -----------------------------------------------------------
    def _is_np_random_chain(self, parts: list[str]) -> bool:
        """True for ``np.random.X`` / ``numpy.random.X`` / ``nprand.X``."""
        if len(parts) >= 3 and parts[-3] in self._numpy_aliases:
            return parts[-2] == "random"
        if len(parts) == 2 and parts[0] in self._np_random_aliases:
            return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        """Flag legacy `np.random.*` calls (D002), unseeded `default_rng()` (D003) and wall-clock reads (D004)."""
        parts = _dotted_name(node.func)
        if not parts:
            return
        if self._is_np_random_chain(parts):
            attr = parts[-1]
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    self.report(
                        "D003",
                        node,
                        "np.random.default_rng() without a seed is "
                        "irreproducible; pass config.seed (or derive "
                        "a SeedSequence from it)",
                    )
            elif attr not in self.config.allowed_np_random:
                self.report(
                    "D002",
                    node,
                    f"np.random.{attr}() uses the legacy global RNG; "
                    "thread an np.random.Generator through instead",
                )
        elif len(parts) >= 2 and tuple(parts[-2:]) in _WALL_CLOCK:
            self.report(
                "D004",
                node,
                f"{'.'.join(parts)}() reads the wall clock; simulation "
                "time must come from the trace or the config",
            )
        elif len(parts) >= 2 and tuple(parts[-2:]) in _MONOTONIC:
            module = self.ctx.module if self.ctx is not None else None
            if module not in self.config.monotonic_modules:
                self.report(
                    "D004",
                    node,
                    f"{'.'.join(parts)}() measures wall durations; only "
                    "the real-I/O transport modules "
                    f"({', '.join(self.config.monotonic_modules)}) may",
                )
