"""Finding and rule data model for the ``repro lint`` framework.

A :class:`Finding` is one diagnostic produced by a checker at a source
location; a :class:`Rule` is the static description of what a checker
can report.  Both are plain frozen dataclasses so reporters, the
baseline store and tests can treat them as values.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum


class Severity(Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings break reproducibility or layering guarantees;
    ``WARNING`` findings are hygiene problems that merely invite bugs.
    Both make ``repro lint`` exit non-zero — the split exists so
    reporters and future gating can distinguish them.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Rule:
    """Static description of one diagnostic a checker can emit."""

    #: Stable identifier, e.g. ``D001``; used in suppressions/baselines.
    rule_id: str
    #: One-line summary shown by ``repro lint --list-rules``.
    summary: str
    #: Default severity for findings of this rule.
    severity: Severity = Severity.ERROR
    #: Longer rationale (used by the docs generator and ``--list-rules -v``).
    rationale: str = ""


@dataclass(frozen=True)
class Finding:
    """One diagnostic at a concrete source location."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    severity: Severity = Severity.ERROR
    #: Name of the checker that produced the finding.
    checker: str = ""
    #: Stripped text of the offending source line (for fingerprints).
    line_text: str = ""
    #: Disambiguates identical (path, rule, line_text) triples.
    occurrence: int = field(default=0, compare=False)

    @property
    def fingerprint(self) -> str:
        """Location-drift-tolerant identity used by the baseline store.

        Hashes the path, rule and offending line *text* (not the line
        number), so inserting code above a grandfathered finding does
        not invalidate the baseline entry.
        """
        payload = (
            f"{self.path}::{self.rule_id}::{self.line_text}::{self.occurrence}"
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by the JSON reporter)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "severity": self.severity.value,
            "checker": self.checker,
            "fingerprint": self.fingerprint,
        }


def assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Number findings that share (path, rule, line_text) so their
    fingerprints stay distinct and stable in file order."""
    seen: dict[tuple[str, str, str], int] = {}
    numbered: list[Finding] = []
    for finding in findings:
        key = (finding.path, finding.rule_id, finding.line_text)
        index = seen.get(key, 0)
        seen[key] = index + 1
        if index:
            finding = Finding(
                rule_id=finding.rule_id,
                path=finding.path,
                line=finding.line,
                column=finding.column,
                message=finding.message,
                severity=finding.severity,
                checker=finding.checker,
                line_text=finding.line_text,
                occurrence=index,
            )
        numbered.append(finding)
    return numbered
