"""Intra/inter-procedural provenance dataflow over ``ast``.

The determinism story of the live runtime rests on invariants that are
*flow* properties, not syntactic ones: a ``Generator`` seeded for the
fault stream must never end up jittering network latencies, and a
virtual-clock timestamp must never be added to a byte counter.  This
module provides the machinery the R/U checker families share:

* :func:`build_cfg` — a per-function control-flow graph over the raw
  AST (branches, loops, ``try``, ``break``/``continue``/``return``).
* :class:`ProvenanceAnalysis` — a forward worklist fixpoint over that
  CFG.  The abstract state maps variable references (locals and
  ``self.*`` attributes) to *label sets* drawn from a powerset lattice
  (join = union).  Checkers subclass it and override the labelling
  hooks; once the fixpoint converges a single observation pass re-runs
  every reachable block so hooks can report against stable states.
* :class:`ProgramIndex` — whole-program function records and call
  resolution, so checkers can build call-graph summaries (return-label
  and parameter-expectation maps) for ``repro.*`` modules.

The model is deliberately modest — single powerset lattice, strong
updates only for plain names and ``self.x`` targets, containers and
nested functions treated opaquely, call resolution by unambiguous
simple name — which keeps it fast enough to run on every lint pass and
predictable enough to document (see ``docs/static_analysis.md`` for
the known limitations).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Abstract value: a set of provenance labels, e.g. ``{"rng:faults"}``.
Labels = frozenset

EMPTY: frozenset[str] = frozenset()

#: Sentinel successor index meaning "function exit".
EXIT = -1


# ---------------------------------------------------------------------------
# Control-flow graph
# ---------------------------------------------------------------------------


@dataclass
class Block:
    """One basic block: a run of work items plus successor block ids.

    Items are either plain statements or ``(kind, node)`` markers for
    the evaluated parts of compound statements (``("test", expr)`` for
    branch/loop conditions, ``("for", node)`` / ``("with", node)`` for
    their binding headers, ``("return", node)`` for returns).
    """

    items: list = field(default_factory=list)
    successors: set[int] = field(default_factory=set)


class ControlFlowGraph:
    """Per-function CFG; block 0 is the entry."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []

    def new_block(self) -> int:
        """Append an empty basic block and return its index."""
        self.blocks.append(Block())
        return len(self.blocks) - 1

    def add_edge(self, source: int, target: int) -> None:
        """Record a control-flow edge from ``source`` to ``target``."""
        if source != EXIT:
            self.blocks[source].successors.add(target)

    def predecessors(self) -> dict[int, set[int]]:
        """Return the predecessor sets, keyed by block index."""
        preds: dict[int, set[int]] = {i: set() for i in range(len(self.blocks))}
        for index, block in enumerate(self.blocks):
            for successor in block.successors:
                if successor != EXIT:
                    preds[successor].add(index)
        return preds


_NO_DESCENT = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


class _CfgBuilder:
    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        # (continue_target, break_target) per enclosing loop
        self._loops: list[tuple[int, int]] = []

    def build(self, body: list[ast.stmt]) -> ControlFlowGraph:
        entry = self.cfg.new_block()
        exit_block = self._body(body, entry)
        if exit_block is not None:
            self.cfg.add_edge(exit_block, EXIT)
        return self.cfg

    def _body(self, statements: list[ast.stmt], current: int) -> int | None:
        """Thread ``statements`` from ``current``; None when all paths leave."""
        for statement in statements:
            if current is None:
                # unreachable code after return/raise/break — parse it
                # into a fresh floating block so bindings stay sane.
                current = self.cfg.new_block()
            current = self._statement(statement, current)
        return current

    def _statement(self, node: ast.stmt, current: int) -> int | None:
        cfg = self.cfg
        if isinstance(node, (ast.If,)):
            cfg.blocks[current].items.append(("test", node.test))
            after = cfg.new_block()
            then_entry = cfg.new_block()
            cfg.add_edge(current, then_entry)
            then_exit = self._body(node.body, then_entry)
            if then_exit is not None:
                cfg.add_edge(then_exit, after)
            if node.orelse:
                else_entry = cfg.new_block()
                cfg.add_edge(current, else_entry)
                else_exit = self._body(node.orelse, else_entry)
                if else_exit is not None:
                    cfg.add_edge(else_exit, after)
            else:
                cfg.add_edge(current, after)
            return after
        if isinstance(node, (ast.While,)):
            header = cfg.new_block()
            cfg.add_edge(current, header)
            cfg.blocks[header].items.append(("test", node.test))
            after = cfg.new_block()
            body_entry = cfg.new_block()
            cfg.add_edge(header, body_entry)
            cfg.add_edge(header, after)
            self._loops.append((header, after))
            body_exit = self._body(node.body, body_entry)
            self._loops.pop()
            if body_exit is not None:
                cfg.add_edge(body_exit, header)
            if node.orelse:
                else_exit = self._body(node.orelse, after)
                return else_exit
            return after
        if isinstance(node, (ast.For, ast.AsyncFor)):
            header = cfg.new_block()
            cfg.add_edge(current, header)
            cfg.blocks[header].items.append(("for", node))
            after = cfg.new_block()
            body_entry = cfg.new_block()
            cfg.add_edge(header, body_entry)
            cfg.add_edge(header, after)
            self._loops.append((header, after))
            body_exit = self._body(node.body, body_entry)
            self._loops.pop()
            if body_exit is not None:
                cfg.add_edge(body_exit, header)
            if node.orelse:
                return self._body(node.orelse, after)
            return after
        if isinstance(node, (ast.With, ast.AsyncWith)):
            cfg.blocks[current].items.append(("with", node))
            return self._body(node.body, current)
        if isinstance(node, ast.Try):
            entry = current
            body_entry = cfg.new_block()
            cfg.add_edge(entry, body_entry)
            after = cfg.new_block()
            body_exit = self._body(node.body, body_entry)
            tail = body_exit
            if node.orelse and tail is not None:
                tail = self._body(node.orelse, tail)
            if tail is not None:
                cfg.add_edge(tail, after)
            for handler in node.handlers:
                handler_entry = cfg.new_block()
                # A handler may fire with the state from anywhere inside
                # the body; approximate with edges from both ends.
                cfg.add_edge(entry, handler_entry)
                if body_exit is not None:
                    cfg.add_edge(body_exit, handler_entry)
                if handler.name:
                    cfg.blocks[handler_entry].items.append(
                        ("bindname", handler.name)
                    )
                handler_exit = self._body(handler.body, handler_entry)
                if handler_exit is not None:
                    cfg.add_edge(handler_exit, after)
            if node.finalbody:
                return self._body(node.finalbody, after)
            return after
        if isinstance(node, ast.Match):
            cfg.blocks[current].items.append(("test", node.subject))
            after = cfg.new_block()
            cfg.add_edge(current, after)  # no case may match
            for case in node.cases:
                case_entry = cfg.new_block()
                cfg.add_edge(current, case_entry)
                case_exit = self._body(case.body, case_entry)
                if case_exit is not None:
                    cfg.add_edge(case_exit, after)
            return after
        if isinstance(node, ast.Return):
            cfg.blocks[current].items.append(("return", node))
            cfg.add_edge(current, EXIT)
            return None
        if isinstance(node, ast.Raise):
            cfg.blocks[current].items.append(node)
            cfg.add_edge(current, EXIT)
            return None
        if isinstance(node, ast.Break):
            if self._loops:
                cfg.add_edge(current, self._loops[-1][1])
            return None
        if isinstance(node, ast.Continue):
            if self._loops:
                cfg.add_edge(current, self._loops[-1][0])
            return None
        if isinstance(node, _NO_DESCENT):
            # Nested definitions are separate scopes; bind the name only.
            cfg.blocks[current].items.append(("bindname", node.name))
            return current
        cfg.blocks[current].items.append(node)
        return current


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """Build the control-flow graph of one function body."""
    return _CfgBuilder().build(func.body)


# ---------------------------------------------------------------------------
# Reference naming
# ---------------------------------------------------------------------------


def ref_of(node: ast.expr) -> str | None:
    """Dotted reference of a name/attribute chain, else None.

    ``x`` → ``"x"``; ``self._rng`` → ``"self._rng"``; ``a.b.c`` →
    ``"a.b.c"``; anything with a non-name base (calls, subscripts)
    returns None.
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def terminal_name(ref: str | None) -> str:
    """Last component of a dotted reference ('' for None)."""
    if not ref:
        return ""
    return ref.rsplit(".", 1)[-1]


# ---------------------------------------------------------------------------
# Forward provenance fixpoint
# ---------------------------------------------------------------------------


class ProvenanceAnalysis:
    """Forward may-analysis of one function over the powerset lattice.

    Subclasses override the labelling hooks; :meth:`run` computes the
    fixpoint with observation disabled, then replays every reachable
    block once with :attr:`observing` set so hooks can report findings
    exactly once against converged states.

    Args:
        func: The function to analyze.
        initial_env: Seed environment (parameter/attribute labels).
    """

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        initial_env: dict[str, frozenset[str]] | None = None,
    ):
        self.func = func
        self.cfg = build_cfg(func)
        self.initial_env = dict(initial_env or {})
        self.return_labels: frozenset[str] = EMPTY
        #: Join of every reachable block's post-state (filled by the
        #: observation pass) — used to harvest ``self.*`` labels after
        #: analysing an ``__init__``.
        self.all_env: dict[str, frozenset[str]] = {}
        self.observing = False

    # -- hooks (override in subclasses) ---------------------------------
    def leaf_labels(self, node: ast.expr, ref: str | None) -> frozenset[str]:
        """Labels intrinsically carried by a name/attribute leaf."""
        return EMPTY

    def call_result(
        self,
        call: ast.Call,
        arg_labels: list[frozenset[str]],
        env: dict[str, frozenset[str]],
    ) -> frozenset[str]:
        """Labels of a call's result (sources are minted here)."""
        return EMPTY

    def observe_call(
        self,
        call: ast.Call,
        arg_labels: list[frozenset[str]],
        env: dict[str, frozenset[str]],
    ) -> None:
        """Sink hook; check :attr:`observing` before reporting."""

    def combine_binop(
        self, node: ast.BinOp, left: frozenset[str], right: frozenset[str]
    ) -> frozenset[str]:
        """Result labels of a binary operation (default: union)."""
        return left | right

    def observe_binop(
        self, node: ast.BinOp, left: frozenset[str], right: frozenset[str]
    ) -> None:
        """Arithmetic-mixing hook; check :attr:`observing`."""

    def observe_compare(
        self, node: ast.Compare, parts: list[frozenset[str]]
    ) -> None:
        """Comparison-mixing hook; check :attr:`observing`."""

    def bind(
        self,
        ref: str,
        labels: frozenset[str],
        value: ast.expr | None,
        node: ast.AST,
    ) -> frozenset[str]:
        """Binding hook; may adjust the labels stored for ``ref``.

        Must be deterministic and monotone in ``labels`` or the
        fixpoint may not converge.
        """
        return labels

    # -- driver ----------------------------------------------------------
    def run(self) -> None:
        """Fixpoint, then one observation pass per reachable block."""
        blocks = self.cfg.blocks
        if not blocks:
            return
        in_envs: list[dict[str, frozenset[str]] | None] = [None] * len(blocks)
        in_envs[0] = dict(self.initial_env)
        worklist = [0]
        iterations = 0
        limit = 50 * max(1, len(blocks))
        while worklist and iterations < limit:
            iterations += 1
            index = worklist.pop()
            env = dict(in_envs[index] or {})
            for item in blocks[index].items:
                self._exec(item, env)
            for successor in blocks[index].successors:
                if successor == EXIT:
                    continue
                merged = self._join(in_envs[successor], env)
                if merged != in_envs[successor]:
                    in_envs[successor] = merged
                    if successor not in worklist:
                        worklist.append(successor)
        self.observing = True
        try:
            for index, block in enumerate(blocks):
                if in_envs[index] is None:
                    continue
                env = dict(in_envs[index])
                for item in block.items:
                    self._exec(item, env)
                self.all_env = self._join(self.all_env, env)
        finally:
            self.observing = False

    @staticmethod
    def _join(
        left: dict[str, frozenset[str]] | None, right: dict[str, frozenset[str]]
    ) -> dict[str, frozenset[str]]:
        if left is None:
            return dict(right)
        merged = dict(left)
        for key, labels in right.items():
            merged[key] = merged.get(key, EMPTY) | labels
        return merged

    # -- transfer functions ---------------------------------------------
    def _exec(self, item, env: dict[str, frozenset[str]]) -> None:
        if isinstance(item, tuple):
            kind, payload = item
            if kind == "test":
                self.eval(payload, env)
            elif kind == "for":
                labels = self.eval(payload.iter, env)
                self._bind_target(payload.target, labels, None, payload, env)
            elif kind == "with":
                for with_item in payload.items:
                    labels = self.eval(with_item.context_expr, env)
                    if with_item.optional_vars is not None:
                        self._bind_target(
                            with_item.optional_vars, labels, None, payload, env
                        )
            elif kind == "return":
                if payload.value is not None:
                    self.return_labels |= self.eval(payload.value, env)
            elif kind == "bindname":
                env[payload] = EMPTY
            return
        statement = item
        if isinstance(statement, ast.Assign):
            labels = self.eval(statement.value, env)
            for target in statement.targets:
                self._bind_target(
                    target, labels, statement.value, statement, env
                )
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                labels = self.eval(statement.value, env)
                self._bind_target(
                    statement.target, labels, statement.value, statement, env
                )
        elif isinstance(statement, ast.AugAssign):
            labels = self.eval(statement.value, env)
            ref = ref_of(statement.target)
            if ref is not None:
                labels = labels | env.get(ref, EMPTY)
            self._bind_target(
                statement.target, labels, statement.value, statement, env
            )
        elif isinstance(statement, ast.Expr):
            self.eval(statement.value, env)
        elif isinstance(statement, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                ref = ref_of(target)
                if ref is not None:
                    env.pop(ref, None)
        # Import/Global/Nonlocal/Pass carry no labels.

    def _bind_target(
        self,
        target: ast.expr,
        labels: frozenset[str],
        value: ast.expr | None,
        node: ast.AST,
        env: dict[str, frozenset[str]],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, labels, value, node, env)
            return
        if isinstance(target, ast.Starred):
            self._bind_target(target.value, labels, value, node, env)
            return
        ref = ref_of(target)
        if ref is None:
            # Subscript or computed-attribute target: contents are
            # opaque; evaluate the pieces for their side hooks only.
            for child in ast.iter_child_nodes(target):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
            return
        env[ref] = self.bind(ref, labels, value, node)

    # -- expression evaluation -------------------------------------------
    def eval(
        self, node: ast.expr, env: dict[str, frozenset[str]]
    ) -> frozenset[str]:
        """Labels of one expression under ``env`` (fires hooks)."""
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY) | self.leaf_labels(node, node.id)
        if isinstance(node, ast.Attribute):
            ref = ref_of(node)
            labels = EMPTY
            if ref is not None:
                labels = env.get(ref, EMPTY)
            else:
                self.eval(node.value, env)
            return labels | self.leaf_labels(node, ref)
        if isinstance(node, ast.Call):
            self.eval(node.func, env)
            arg_labels = [self.eval(arg, env) for arg in node.args]
            keyword_labels = [
                self.eval(keyword.value, env) for keyword in node.keywords
            ]
            all_labels = arg_labels + keyword_labels
            self.observe_call(node, all_labels, env)
            return self.call_result(node, all_labels, env)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            self.observe_binop(node, left, right)
            return self.combine_binop(node, left, right)
        if isinstance(node, ast.BoolOp):
            labels = EMPTY
            for value in node.values:
                labels |= self.eval(value, env)
            return labels
        if isinstance(node, ast.Compare):
            parts = [self.eval(node.left, env)]
            parts.extend(self.eval(comp, env) for comp in node.comparators)
            self.observe_compare(node, parts)
            return EMPTY
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return self.eval(node.body, env) | self.eval(node.orelse, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            labels = EMPTY
            for element in node.elts:
                labels |= self.eval(element, env)
            return labels
        if isinstance(node, ast.Dict):
            labels = EMPTY
            for key in node.keys:
                if key is not None:
                    labels |= self.eval(key, env)
            for value in node.values:
                labels |= self.eval(value, env)
            return labels
        if isinstance(node, ast.Subscript):
            labels = self.eval(node.value, env)
            self.eval(node.slice, env)
            return labels
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part, env)
            return EMPTY
        if isinstance(node, (ast.UnaryOp,)):
            return self.eval(node.operand, env)
        if isinstance(node, (ast.Await, ast.YieldFrom, ast.Starred)):
            return self.eval(node.value, env)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.eval(node.value, env)
            return EMPTY
        if isinstance(node, ast.NamedExpr):
            labels = self.eval(node.value, env)
            self._bind_target(node.target, labels, node.value, node, env)
            return labels
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            scope = dict(env)
            for comprehension in node.generators:
                iter_labels = self.eval(comprehension.iter, scope)
                self._bind_target(
                    comprehension.target, iter_labels, None, node, scope
                )
                for condition in comprehension.ifs:
                    self.eval(condition, scope)
            if isinstance(node, ast.DictComp):
                return self.eval(node.key, scope) | self.eval(node.value, scope)
            return self.eval(node.elt, scope)
        if isinstance(node, ast.FormattedValue):
            self.eval(node.value, env)
            return EMPTY
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                self.eval(value, env)
            return EMPTY
        if isinstance(node, ast.Lambda):
            return EMPTY  # separate scope, evaluated later
        return EMPTY  # Constant and friends


# ---------------------------------------------------------------------------
# Whole-program function index (call-graph summaries)
# ---------------------------------------------------------------------------


@dataclass
class FunctionRecord:
    """One function/method definition somewhere in the linted program."""

    #: ``module.Class.method`` or ``module.function`` (display only).
    qualname: str
    #: Simple (unqualified) name used for call resolution.
    name: str
    #: Enclosing class name, None for module-level functions.
    class_name: str | None
    #: Dotted module of the defining file (None outside the package).
    module: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: The FileContext the function was found in (``repro.analysis.base``).
    ctx: object

    @property
    def param_names(self) -> list[str]:
        """Positional parameter names, ``self``/``cls`` stripped."""
        args = self.node.args
        names = [arg.arg for arg in args.posonlyargs + args.args]
        if self.class_name is not None and names and names[0] in (
            "self",
            "cls",
        ):
            names = names[1:]
        return names + [arg.arg for arg in args.kwonlyargs]


class ProgramIndex:
    """All function definitions across the linted files, by simple name.

    Call resolution is deliberately conservative: a call is resolved
    only when exactly one definition program-wide carries the simple
    name (method calls additionally prefer a match in the caller's own
    class).  Ambiguous names resolve to nothing rather than guessing.
    """

    def __init__(self, files: list) -> None:
        self.records: list[FunctionRecord] = []
        self._by_name: dict[str, list[FunctionRecord]] = {}
        for ctx in files:
            module = getattr(ctx, "module", None)
            prefix = module or getattr(ctx, "display_path", "?")
            for node in ast.walk(ctx.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                class_name = self._enclosing_class(node)
                qualname = ".".join(
                    part
                    for part in (prefix, class_name, node.name)
                    if part is not None
                )
                record = FunctionRecord(
                    qualname=qualname,
                    name=node.name,
                    class_name=class_name,
                    module=module,
                    node=node,
                    ctx=ctx,
                )
                self.records.append(record)
                self._by_name.setdefault(node.name, []).append(record)

    @staticmethod
    def _enclosing_class(node: ast.AST) -> str | None:
        parent = getattr(node, "_repro_parent", None)
        while parent is not None:
            if isinstance(parent, ast.ClassDef):
                return parent.name
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None
            parent = getattr(parent, "_repro_parent", None)
        return None

    def classes_of(self, ctx: object) -> list[ast.ClassDef]:
        """Return the class definitions recorded for ``ctx``'s file."""
        return [
            node
            for node in ast.walk(ctx.tree)  # type: ignore[attr-defined]
            if isinstance(node, ast.ClassDef)
        ]

    def resolve_call(
        self, call: ast.Call, caller_class: str | None = None
    ) -> FunctionRecord | None:
        """Resolve a call to its unique program-wide definition, if any."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return None
        candidates = self._by_name.get(name, [])
        if not candidates:
            return None
        if caller_class is not None and isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                own = [
                    record
                    for record in candidates
                    if record.class_name == caller_class
                ]
                if len(own) == 1:
                    return own[0]
        if len(candidates) == 1:
            return candidates[0]
        return None

    @staticmethod
    def bind_arguments(
        call: ast.Call, record: FunctionRecord
    ) -> list[tuple[str, ast.expr]]:
        """Map call arguments onto the callee's parameter names.

        Positional arguments map in order (``self`` already stripped
        for method records when the call is an attribute call);
        keywords map by name; ``*args``/``**kwargs`` are skipped.
        """
        params = record.param_names
        pairs: list[tuple[str, ast.expr]] = []
        positional = [
            arg for arg in call.args if not isinstance(arg, ast.Starred)
        ]
        offset = 0
        if record.class_name is not None:
            # Unbound calls pass the receiver explicitly: either the
            # resolved method is called by bare name, or the attribute
            # base names the defining class (``Class.method(obj, ..)``).
            if not isinstance(call.func, ast.Attribute):
                offset = 1
            elif (
                isinstance(call.func.value, ast.Name)
                and call.func.value.id == record.class_name
            ):
                offset = 1
        for index, arg in enumerate(positional[offset:]):
            if index >= len(params):
                break
            pairs.append((params[index], arg))
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                pairs.append((keyword.arg, keyword.value))
        return pairs
