"""Text, JSON and SARIF reporters for lint results.

Reporters are pure functions from results to strings, so the CLI, the
tests and any future tooling (e.g. a CI annotator) share one formatting
path.  The JSON document is stable and round-trips through
``json.loads``; its schema is part of the public contract and covered
by tests.  The SARIF document follows the 2.1.0 schema so CI can
upload it for code-scanning annotations.
"""

from __future__ import annotations

import json
from collections import Counter

from .checkers import all_rules
from .engine import LintResult
from .findings import Finding

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _summary_counts(findings: list[Finding]) -> dict[str, int]:
    return dict(sorted(Counter(f.rule_id for f in findings).items()))


def render_text(
    result: LintResult,
    stale_baseline: list[str],
    stale_reasons: dict[str, str] | None = None,
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [
        f"{finding.path}:{finding.line}:{finding.column + 1}: "
        f"{finding.rule_id} [{finding.severity.value}] {finding.message}"
        for finding in result.findings
    ]
    summary: list[str] = []
    if result.findings:
        counts = ", ".join(
            f"{rule}×{count}"
            for rule, count in _summary_counts(result.findings).items()
        )
        summary.append(
            f"{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} ({counts}) "
            f"in {result.files_checked} files"
        )
    else:
        summary.append(f"clean: {result.files_checked} files checked")
    if result.baselined:
        summary.append(
            f"{len(result.baselined)} finding(s) suppressed by baseline"
        )
    if result.suppression_directives:
        summary.append(
            f"{result.suppression_directives} inline suppression "
            "directive(s) in effect"
        )
    for fingerprint in stale_baseline:
        reason = (stale_reasons or {}).get(
            fingerprint, "finding no longer present"
        )
        summary.append(
            f"stale baseline entry {fingerprint}: {reason}; remove it "
            "with --update-baseline (or rerun --write-baseline)"
        )
    return "\n".join(lines + summary)


def render_json(
    result: LintResult,
    stale_baseline: list[str],
    stale_reasons: dict[str, str] | None = None,
) -> str:
    """Machine-readable report (``repro lint --format json``)."""
    document = {
        "version": 1,
        "files_checked": result.files_checked,
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [finding.as_dict() for finding in result.baselined],
        "stale_baseline": list(stale_baseline),
        "stale_baseline_detail": dict(stale_reasons or {}),
        "summary": {
            "total": len(result.findings),
            "by_rule": _summary_counts(result.findings),
            "suppression_directives": result.suppression_directives,
        },
        "exit_code": result.exit_code,
    }
    return json.dumps(document, indent=2)


def _sarif_result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule_id,
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reproLint/fingerprint/v1": finding.fingerprint
        },
    }


def render_sarif(
    result: LintResult,
    stale_baseline: list[str],
    stale_reasons: dict[str, str] | None = None,
) -> str:
    """SARIF 2.1.0 report (``repro lint --format sarif``) for CI upload.

    Baselined findings are included with ``"suppressions"`` marking
    them reviewed, so code-scanning UIs show them as dismissed rather
    than losing them entirely.  Stale-baseline bookkeeping is a
    repo-local concern and is not represented in SARIF.
    """
    rules = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": rule.severity.value},
        }
        for rule in all_rules()
    ]
    results = [_sarif_result(finding) for finding in result.findings]
    for finding in result.baselined:
        entry = _sarif_result(finding)
        entry["suppressions"] = [
            {"kind": "external", "justification": "grandfathered baseline"}
        ]
        results.append(entry)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


REPORTERS = {"text": render_text, "json": render_json, "sarif": render_sarif}
