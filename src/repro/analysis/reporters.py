"""Text and JSON reporters for lint results.

Reporters are pure functions from results to strings, so the CLI, the
tests and any future tooling (e.g. a CI annotator) share one formatting
path.  The JSON document is stable and round-trips through
``json.loads``; its schema is part of the public contract and covered
by tests.
"""

from __future__ import annotations

import json
from collections import Counter

from .engine import LintResult
from .findings import Finding


def _summary_counts(findings: list[Finding]) -> dict[str, int]:
    return dict(sorted(Counter(f.rule_id for f in findings).items()))


def render_text(result: LintResult, stale_baseline: list[str]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [
        f"{finding.path}:{finding.line}:{finding.column + 1}: "
        f"{finding.rule_id} [{finding.severity.value}] {finding.message}"
        for finding in result.findings
    ]
    summary: list[str] = []
    if result.findings:
        counts = ", ".join(
            f"{rule}×{count}"
            for rule, count in _summary_counts(result.findings).items()
        )
        summary.append(
            f"{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} ({counts}) "
            f"in {result.files_checked} files"
        )
    else:
        summary.append(f"clean: {result.files_checked} files checked")
    if result.baselined:
        summary.append(
            f"{len(result.baselined)} finding(s) suppressed by baseline"
        )
    if result.suppression_directives:
        summary.append(
            f"{result.suppression_directives} inline suppression "
            "directive(s) in effect"
        )
    for fingerprint in stale_baseline:
        summary.append(
            f"stale baseline entry {fingerprint}: finding no longer "
            "present; remove it (or rerun with --write-baseline)"
        )
    return "\n".join(lines + summary)


def render_json(result: LintResult, stale_baseline: list[str]) -> str:
    """Machine-readable report (``repro lint --format json``)."""
    document = {
        "version": 1,
        "files_checked": result.files_checked,
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [finding.as_dict() for finding in result.baselined],
        "stale_baseline": list(stale_baseline),
        "summary": {
            "total": len(result.findings),
            "by_rule": _summary_counts(result.findings),
            "suppression_directives": result.suppression_directives,
        },
        "exit_code": result.exit_code,
    }
    return json.dumps(document, indent=2)


REPORTERS = {"text": render_text, "json": render_json}
