"""Inline ``# repro-lint: disable=...`` suppression directives.

Two forms are recognised:

* line suppression — a trailing comment on the offending line::

      value = legacy_ratio / count  # repro-lint: disable=N001

* file suppression — a comment on a line of its own anywhere in the
  file's first block of comments/docstring (the first 10 lines)::

      # repro-lint: disable-file=D004

``disable=all`` (or ``disable-file=all``) suppresses every rule.  Rule
lists are comma-separated: ``disable=N001,H002``.
"""

from __future__ import annotations

import re

#: Rule lists are captured token-by-token so a trailing justification
#: ("disable=N001  weights are positive") cannot leak into the rule
#: set — only `X123`-shaped ids and the word `all` are recognised.
_RULES_PATTERN = r"((?:[A-Za-z]+\d+|all)(?:\s*,\s*(?:[A-Za-z]+\d+|all))*)"
_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=" + _RULES_PATTERN)
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=" + _RULES_PATTERN)

#: Lines scanned for ``disable-file`` directives.
_FILE_DIRECTIVE_WINDOW = 10


def _parse_rule_list(raw: str) -> frozenset[str]:
    return frozenset(
        token.strip() for token in raw.split(",") if token.strip()
    )


class SuppressionIndex:
    """Per-file index of suppression directives, queried by the engine."""

    def __init__(self, lines: list[str]):
        self._by_line: dict[int, frozenset[str]] = {}
        self._file_wide: frozenset[str] = frozenset()
        file_rules: set[str] = set()
        for number, text in enumerate(lines, start=1):
            match = _LINE_RE.search(text)
            if match:
                self._by_line[number] = _parse_rule_list(match.group(1))
            if number <= _FILE_DIRECTIVE_WINDOW:
                file_match = _FILE_RE.search(text)
                if file_match:
                    file_rules |= _parse_rule_list(file_match.group(1))
        self._file_wide = frozenset(file_rules)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is disabled at ``line`` (or file-wide)."""
        if "all" in self._file_wide or rule_id in self._file_wide:
            return True
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return "all" in rules or rule_id in rules

    @property
    def directive_count(self) -> int:
        """Number of lines carrying directives (reported in summaries)."""
        return len(self._by_line) + (1 if self._file_wide else 0)
