"""Inline ``# repro-lint: disable=...`` suppression directives.

Two forms are recognised:

* line suppression — a trailing comment on the offending line::

      value = legacy_ratio / count  # repro-lint: disable=N001

* file suppression — a comment on a line of its own anywhere in the
  file's first block of comments/docstring (the first 10 lines)::

      # repro-lint: disable-file=D004

``disable=all`` (or ``disable-file=all``) suppresses every rule.  Rule
lists are comma-separated: ``disable=N001,H002``.
"""

from __future__ import annotations

import ast
import re

#: Rule lists are captured token-by-token so a trailing justification
#: ("disable=N001  weights are positive") cannot leak into the rule
#: set — only `X123`-shaped ids and the word `all` are recognised.
_RULES_PATTERN = r"((?:[A-Za-z]+\d+|all)(?:\s*,\s*(?:[A-Za-z]+\d+|all))*)"
_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=" + _RULES_PATTERN)
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=" + _RULES_PATTERN)

#: Lines scanned for ``disable-file`` directives.
_FILE_DIRECTIVE_WINDOW = 10


def _parse_rule_list(raw: str) -> frozenset[str]:
    return frozenset(
        token.strip() for token in raw.split(",") if token.strip()
    )


#: Compound statements: a directive on their *header* lines covers the
#: header, never the (arbitrarily long) body.
_COMPOUND = (
    ast.If, ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith,
    ast.Try, ast.Match, ast.FunctionDef, ast.AsyncFunctionDef,
    ast.ClassDef,
)


class SuppressionIndex:
    """Per-file index of suppression directives, queried by the engine."""

    def __init__(self, lines: list[str]):
        self._by_line: dict[int, frozenset[str]] = {}
        self._file_wide: frozenset[str] = frozenset()
        file_rules: set[str] = set()
        for number, text in enumerate(lines, start=1):
            match = _LINE_RE.search(text)
            if match:
                self._by_line[number] = _parse_rule_list(match.group(1))
            if number <= _FILE_DIRECTIVE_WINDOW:
                file_match = _FILE_RE.search(text)
                if file_match:
                    file_rules |= _parse_rule_list(file_match.group(1))
        self._file_wide = frozenset(file_rules)
        self._directive_lines = len(self._by_line)

    def attach_tree(self, tree: ast.AST) -> None:
        """Expand line directives over multi-line statement spans.

        A finding is reported at the offending *node*'s line, which for
        a statement wrapped across several lines need not be the line
        carrying the trailing ``# repro-lint: disable=...`` comment.
        After attaching the parsed tree, a directive anywhere on a
        simple statement's span covers the whole span; for compound
        statements only the header (up to the first body statement) is
        covered, so one comment cannot blanket an entire function body.
        """
        for node in ast.walk(tree):
            if not isinstance(node, ast.stmt):
                continue
            start = node.lineno
            if isinstance(node, _COMPOUND):
                first_body = min(
                    (
                        child.lineno
                        for child in getattr(node, "body", [])
                        if isinstance(child, ast.stmt)
                    ),
                    default=None,
                )
                end = start if first_body is None else max(
                    start, first_body - 1
                )
            else:
                end = max(start, node.end_lineno or start)
            if end <= start:
                continue
            span = range(start, end + 1)
            rules: frozenset[str] = frozenset()
            for line in span:
                rules |= self._by_line.get(line, frozenset())
            if not rules:
                continue
            for line in span:
                self._by_line[line] = self._by_line.get(
                    line, frozenset()
                ) | rules

    @property
    def referenced_rules(self) -> frozenset[str]:
        """Every rule id named by a directive (``all`` excluded)."""
        referenced: set[str] = set(self._file_wide)
        for rules in self._by_line.values():
            referenced |= rules
        referenced.discard("all")
        return frozenset(referenced)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is disabled at ``line`` (or file-wide)."""
        if "all" in self._file_wide or rule_id in self._file_wide:
            return True
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return "all" in rules or rule_id in rules

    @property
    def directive_count(self) -> int:
        """Number of lines carrying directives (reported in summaries).

        Counts source lines that literally carry a directive comment;
        span expansion via :meth:`attach_tree` does not inflate it.
        """
        return self._directive_lines + (1 if self._file_wide else 0)
