"""Schedule-perturbation race gate (the dynamic half of `repro lint`).

The static checkers (A001–A003) prove the *absence of patterns* that
need interleaving luck; this module proves the *presence of results*
that do not depend on it.  A run under the virtual clock is
deterministic for a fixed tie-break order of same-timestamp timers —
but that order is an accident of the stock event loop's heap, not a
documented contract.  The sweep replays the same run under N seeded
shuffles of exactly those ties (every perturbation is a schedule a
conforming loop could have produced) and requires the paper's four
ratios — and everything else the runner chooses to report — to be
bit-identical across all of them.

Layering: ``repro.analysis`` must not import ``repro.runtime``, so the
sweep takes a *runner callable*; the CLI supplies a closure built on
``execute_loadtest`` with ``LiveSettings.schedule_seed`` set (see
``repro racecheck``).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from ..errors import RuntimeProtocolError

#: First tie-break seed used when the caller does not choose.
DEFAULT_BASE_SEED = 1

#: Default number of perturbed replays (the acceptance floor is 8).
DEFAULT_PERTURBATIONS = 8


def canonical_payload(payload: Mapping[str, Any]) -> str:
    """Canonical JSON encoding used for bit-identity comparison."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ScheduleRun:
    """One replay of the run under a (possibly perturbed) schedule."""

    #: Tie-break seed; None marks the unperturbed reference schedule.
    schedule_seed: int | None
    #: Whatever the runner reported (ratios, conservation flags, ...).
    payload: Mapping[str, Any]
    #: Canonical encoding of ``payload``.
    encoded: str


@dataclass(frozen=True)
class RaceCheckReport:
    """Outcome of one schedule-perturbation sweep."""

    reference: ScheduleRun
    runs: tuple[ScheduleRun, ...] = field(default_factory=tuple)

    @property
    def divergent(self) -> tuple[ScheduleRun, ...]:
        """Perturbed runs whose payload differs from the reference."""
        return tuple(
            run for run in self.runs if run.encoded != self.reference.encoded
        )

    @property
    def passed(self) -> bool:
        """True when every perturbed schedule reproduced the reference."""
        return not self.divergent

    def require_schedule_independence(self) -> None:
        """Raise unless all perturbed schedules were bit-identical.

        Raises:
            RuntimeProtocolError: At least one legal schedule produced
                different results — the run is racy.
        """
        divergent = self.divergent
        if divergent:
            seeds = ", ".join(
                str(run.schedule_seed) for run in divergent
            )
            raise RuntimeProtocolError(
                f"schedule-perturbation race: {len(divergent)} of "
                f"{len(self.runs)} perturbed schedules (tie seeds "
                f"{seeds}) diverged from the reference run; results "
                "depend on timer tie-break order"
            )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary (used by ``repro racecheck --json``)."""
        return {
            "version": 1,
            "perturbations": len(self.runs),
            "passed": self.passed,
            "divergent_seeds": [
                run.schedule_seed for run in self.divergent
            ],
            "seeds": [run.schedule_seed for run in self.runs],
            "reference": dict(self.reference.payload),
        }


def run_schedule_sweep(
    run_arm: Callable[[int | None], Mapping[str, Any]],
    *,
    perturbations: int = DEFAULT_PERTURBATIONS,
    base_seed: int = DEFAULT_BASE_SEED,
) -> RaceCheckReport:
    """Replay a run under N perturbed schedules and compare payloads.

    Args:
        run_arm: Executes the run under the given tie-break seed
            (``None`` = unperturbed reference) and returns a JSON-able
            payload of everything that must be schedule-independent.
        perturbations: Number of perturbed replays.
        base_seed: Seeds used are ``base_seed .. base_seed+N-1``.

    Returns:
        A :class:`RaceCheckReport`; call
        :meth:`~RaceCheckReport.require_schedule_independence` to gate.

    Raises:
        ValueError: ``perturbations`` is not positive.
    """
    if perturbations < 1:
        raise ValueError("perturbations must be >= 1")
    reference_payload = run_arm(None)
    reference = ScheduleRun(
        schedule_seed=None,
        payload=reference_payload,
        encoded=canonical_payload(reference_payload),
    )
    runs = []
    for offset in range(perturbations):
        seed = base_seed + offset
        payload = run_arm(seed)
        runs.append(
            ScheduleRun(
                schedule_seed=seed,
                payload=payload,
                encoded=canonical_payload(payload),
            )
        )
    return RaceCheckReport(reference=reference, runs=tuple(runs))
