"""Baseline store: grandfathered findings that do not fail the build.

The baseline is a committed JSON file mapping finding fingerprints to
the finding they grandfather.  Fingerprints hash the offending *line
text* rather than its line number, so unrelated edits above a
grandfathered finding do not invalidate the entry; editing the line
itself does — which is exactly when the grandfather clause should
expire.

Workflow:

* ``repro lint --write-baseline`` records the current findings.
* subsequent runs subtract baselined findings from the failure set and
  report how many were skipped.
* entries whose finding has disappeared are *stale*; ``repro lint``
  reports them (with a reason: fixed, file deleted, or rule removed)
  and ``repro lint --update-baseline`` prunes them, so the file
  shrinks monotonically toward empty.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

#: Default baseline filename, discovered next to pyproject.toml.
BASELINE_FILENAME = ".repro-lint-baseline.json"

_FORMAT_VERSION = 1


class BaselineError(Exception):
    """The baseline file exists but cannot be used."""


@dataclass
class Baseline:
    """In-memory view of the committed baseline file."""

    #: fingerprint → recorded entry (path/rule/justification).
    entries: dict[str, dict[str, object]] = field(default_factory=dict)
    path: Path | None = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (an absent file is an empty baseline)."""
        if not path.exists():
            return cls(path=path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise BaselineError(f"cannot parse {path}: {error}") from error
        if not isinstance(data, dict) or "findings" not in data:
            raise BaselineError(f"{path} is not a baseline file")
        if data.get("version") != _FORMAT_VERSION:
            raise BaselineError(
                f"{path} has unsupported version {data.get('version')!r}"
            )
        entries: dict[str, dict[str, object]] = {}
        for entry in data["findings"]:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise BaselineError(f"{path}: malformed baseline entry")
            entries[str(entry["fingerprint"])] = entry
        return cls(entries=entries, path=path)

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[str]]:
        """Partition findings into (new, baselined) plus stale fingerprints.

        Returns:
            ``(new, baselined, stale)`` where ``stale`` lists baseline
            fingerprints no current finding matches (fixed findings
            whose entries should be dropped from the file).
        """
        new: list[Finding] = []
        baselined: list[Finding] = []
        seen: set[str] = set()
        for finding in findings:
            fingerprint = finding.fingerprint
            if fingerprint in self.entries:
                baselined.append(finding)
                seen.add(fingerprint)
            else:
                new.append(finding)
        stale = sorted(set(self.entries) - seen)
        return new, baselined, stale

    def audit(
        self,
        findings: list[Finding],
        *,
        known_rules: frozenset[str] | set[str] | None = None,
        base_dir: Path | None = None,
    ) -> dict[str, str]:
        """Explain every stale entry: why does nothing match it?

        Returns:
            fingerprint → reason, for each entry no current finding
            matches.  Reasons distinguish entries whose *rule* was
            removed from the checker set, whose *file* no longer
            exists, and plain fixed findings — the first two can never
            match again and should always be pruned.
        """
        matched = {finding.fingerprint for finding in findings}
        reasons: dict[str, str] = {}
        for fingerprint, entry in self.entries.items():
            if fingerprint in matched:
                continue
            rule = str(entry.get("rule", ""))
            path = str(entry.get("path", ""))
            if known_rules is not None and rule and rule not in known_rules:
                reasons[fingerprint] = f"rule {rule} no longer exists"
            elif (
                base_dir is not None
                and path
                and not (base_dir / path).exists()
            ):
                reasons[fingerprint] = f"file {path} no longer exists"
            else:
                reasons[fingerprint] = "finding no longer present"
        return reasons

    def prune(self, fingerprints: list[str]) -> int:
        """Drop the given entries; returns how many were removed."""
        removed = 0
        for fingerprint in fingerprints:
            if self.entries.pop(fingerprint, None) is not None:
                removed += 1
        return removed

    def save(self) -> None:
        """Write the (possibly pruned) entries back to :attr:`path`."""
        if self.path is None:
            raise BaselineError("baseline has no backing path")
        entries = sorted(
            self.entries.values(),
            key=lambda entry: (
                str(entry.get("path", "")),
                int(entry.get("line", 0) or 0),
                str(entry.get("rule", "")),
            ),
        )
        payload = {"version": _FORMAT_VERSION, "findings": entries}
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    @staticmethod
    def write(path: Path, findings: list[Finding]) -> None:
        """Write ``findings`` as the new baseline (sorted, stable)."""
        entries = [
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "justification": "grandfathered at baseline creation",
            }
            for finding in sorted(
                findings, key=lambda f: (f.path, f.line, f.rule_id)
            )
        ]
        payload = {"version": _FORMAT_VERSION, "findings": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )


def default_baseline_path(start: Path | None = None) -> Path:
    """Locate the baseline next to the nearest ``pyproject.toml``.

    Falls back to ``<cwd>/.repro-lint-baseline.json`` when no project
    root is found, so ad-hoc runs still behave sensibly.
    """
    origin = (start or Path.cwd()).resolve()
    for candidate in [origin, *origin.parents]:
        if (candidate / "pyproject.toml").is_file() or (
            candidate / BASELINE_FILENAME
        ).is_file():
            return candidate / BASELINE_FILENAME
    return origin / BASELINE_FILENAME
