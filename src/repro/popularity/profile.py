"""Per-document popularity statistics and the empirical coverage curve.

The dissemination model needs two log-derivable quantities per home
server (section 2.2): the serviced byte rate ``R`` and the coverage
function ``H(b)`` — the probability that a request can be served from
the most popular ``b`` bytes.  :class:`PopularityProfile` computes both
from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..trace.records import Trace


@dataclass(frozen=True, slots=True)
class DocumentStats:
    """Access statistics of one document.

    Attributes:
        doc_id: Document identifier.
        size: Size in bytes.
        requests: Total accesses.
        remote_requests: Accesses from outside the organisation.
        bytes_served: Total bytes delivered for this document.
        remote_bytes: Bytes delivered to remote clients.
    """

    doc_id: str
    size: int
    requests: int
    remote_requests: int
    bytes_served: int
    remote_bytes: int

    @property
    def local_requests(self) -> int:
        return self.requests - self.remote_requests

    @property
    def remote_ratio(self) -> float:
        """Remote-to-total access ratio (0.0 for never-accessed docs)."""
        return self.remote_requests / self.requests if self.requests else 0.0


class PopularityProfile:
    """Popularity statistics of every document in a trace.

    Build with :meth:`from_trace`; documents in the catalog that were
    never accessed get zero-count entries (the paper's "only 656 of
    2000+ files were remotely accessed" observation needs them).
    """

    def __init__(self, stats: dict[str, DocumentStats]):
        if not stats:
            raise ReproError("popularity profile needs at least one document")
        self._stats = dict(stats)

    @classmethod
    def from_trace(cls, trace: Trace) -> "PopularityProfile":
        """Count accesses per document over a trace."""
        requests: dict[str, int] = {}
        remote: dict[str, int] = {}
        bytes_served: dict[str, int] = {}
        remote_bytes: dict[str, int] = {}
        for record in trace:
            requests[record.doc_id] = requests.get(record.doc_id, 0) + 1
            bytes_served[record.doc_id] = (
                bytes_served.get(record.doc_id, 0) + record.size
            )
            if record.remote:
                remote[record.doc_id] = remote.get(record.doc_id, 0) + 1
                remote_bytes[record.doc_id] = (
                    remote_bytes.get(record.doc_id, 0) + record.size
                )
        stats = {}
        for doc_id, document in trace.documents.items():
            stats[doc_id] = DocumentStats(
                doc_id=doc_id,
                size=document.size,
                requests=requests.get(doc_id, 0),
                remote_requests=remote.get(doc_id, 0),
                bytes_served=bytes_served.get(doc_id, 0),
                remote_bytes=remote_bytes.get(doc_id, 0),
            )
        return cls(stats)

    # -- lookups ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._stats)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._stats

    def get(self, doc_id: str) -> DocumentStats:
        """Statistics of one document (raises on unknown ids)."""
        try:
            return self._stats[doc_id]
        except KeyError:
            raise ReproError(f"unknown document {doc_id!r}") from None

    def all_stats(self) -> list[DocumentStats]:
        """All documents' statistics (unordered)."""
        return list(self._stats.values())

    def accessed_count(self, *, remote_only: bool = False) -> int:
        """How many documents were accessed at least once."""
        if remote_only:
            return sum(1 for s in self._stats.values() if s.remote_requests)
        return sum(1 for s in self._stats.values() if s.requests)

    def total_requests(self, *, remote_only: bool = False) -> int:
        """Total accesses counted in the profile."""
        if remote_only:
            return sum(s.remote_requests for s in self._stats.values())
        return sum(s.requests for s in self._stats.values())

    def total_bytes_served(self, *, remote_only: bool = False) -> int:
        """The paper's ``R``: bytes served (optionally remote only)."""
        if remote_only:
            return sum(s.remote_bytes for s in self._stats.values())
        return sum(s.bytes_served for s in self._stats.values())

    # -- derived curves ----------------------------------------------------------

    def ranked(self, *, remote_only: bool = True) -> list[DocumentStats]:
        """Documents sorted by decreasing popularity.

        Popularity is measured in requests (remote requests when
        ``remote_only``); ties break by doc id for determinism.
        """
        key = (
            (lambda s: (-s.remote_requests, s.doc_id))
            if remote_only
            else (lambda s: (-s.requests, s.doc_id))
        )
        return sorted(self._stats.values(), key=key)

    def coverage_curve(
        self, *, remote_only: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """The empirical coverage function ``H(b)``.

        Returns:
            ``(bytes, fraction)`` arrays: after disseminating the most
            popular documents totalling ``bytes[i]`` bytes, a fraction
            ``fraction[i]`` of (remote) requests hits the disseminated
            set.  Both arrays have one entry per document with at least
            one counted request, in decreasing popularity order, and the
            fractions are measured in **requests**, matching
            ``H_i(b)``'s definition as a request-hit probability.
        """
        ranked = self.ranked(remote_only=remote_only)
        counts = []
        sizes = []
        for stat in ranked:
            hits = stat.remote_requests if remote_only else stat.requests
            if hits <= 0:
                break
            counts.append(hits)
            sizes.append(stat.size)
        if not counts:
            return np.array([]), np.array([])
        cumulative_bytes = np.cumsum(np.array(sizes, dtype=np.float64))
        cumulative_hits = np.cumsum(np.array(counts, dtype=np.float64))
        return cumulative_bytes, cumulative_hits / cumulative_hits[-1]

    def hit_fraction(self, budget_bytes: float, *, remote_only: bool = True) -> float:
        """Empirical ``H(budget)``: request fraction covered by the most
        popular documents that fit in ``budget_bytes``.

        Documents are packed greedily in popularity order; a document
        that does not fit whole is skipped (documents are atomic).
        """
        if budget_bytes <= 0:
            return 0.0
        used = 0.0
        hits = 0
        total = 0
        for stat in self.ranked(remote_only=remote_only):
            count = stat.remote_requests if remote_only else stat.requests
            total += count
            if count > 0 and used + stat.size <= budget_bytes:
                used += stat.size
                hits += count
        return hits / total if total else 0.0
