"""Document popularity analysis (paper section 2).

* :mod:`repro.popularity.profile` — per-document access statistics and
  the empirical byte-coverage curve ``H(b)``.
* :mod:`repro.popularity.blocks` — the 256 KB block analysis behind
  Figure 1 (block popularity and cumulative bandwidth saved).
* :mod:`repro.popularity.expmodel` — the exponential popularity model
  ``H(b) = 1 − exp(−λ·b)`` and λ estimation from a trace.
* :mod:`repro.popularity.classify` — remotely/locally/globally popular
  classification and mutable-document detection.
"""

from .profile import DocumentStats, PopularityProfile
from .blocks import BlockAnalysis, BlockStats, analyze_blocks
from .expmodel import ExponentialPopularityModel, fit_lambda
from .classify import (
    ClassCounts,
    PopularityClass,
    classify_documents,
    count_classes,
    find_mutable_documents,
)

__all__ = [
    "DocumentStats",
    "PopularityProfile",
    "BlockAnalysis",
    "BlockStats",
    "analyze_blocks",
    "ExponentialPopularityModel",
    "fit_lambda",
    "PopularityClass",
    "ClassCounts",
    "classify_documents",
    "count_classes",
    "find_mutable_documents",
]
