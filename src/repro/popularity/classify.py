"""Document classification (paper section 2).

Two classifications steer dissemination decisions:

* By **where** a document is popular — the remote-to-total access ratio
  splits documents into *remotely popular* (ratio > 85%), *locally
  popular* (ratio < 15%) and *globally popular* (in between).  Only
  remotely/globally popular documents are worth disseminating.
* By **update behaviour** — the small, frequently-updated *mutable*
  subset should not be disseminated (stale copies would proliferate).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ReproError
from ..workload.updates import UpdateEvent
from .profile import PopularityProfile

#: The paper's class boundaries on the remote-to-total access ratio.
REMOTE_THRESHOLD = 0.85
LOCAL_THRESHOLD = 0.15


class PopularityClass(str, Enum):
    """Where a document's audience lives."""

    REMOTE = "remote"
    GLOBAL = "global"
    LOCAL = "local"


def classify_documents(
    profile: PopularityProfile,
    *,
    remote_threshold: float = REMOTE_THRESHOLD,
    local_threshold: float = LOCAL_THRESHOLD,
    include_unaccessed: bool = False,
) -> dict[str, PopularityClass]:
    """Classify accessed documents by remote-to-total access ratio.

    Args:
        profile: Popularity statistics of the trace.
        remote_threshold: Ratio above which a document is remotely
            popular (paper: 0.85).
        local_threshold: Ratio below which it is locally popular
            (paper: 0.15).
        include_unaccessed: Also classify never-accessed documents
            (they get ``LOCAL`` — nothing argues for disseminating
            them); by default they are omitted, matching the paper's
            "974 documents accessed during the analysis period".

    Returns:
        Mapping of document id to :class:`PopularityClass`.
    """
    if not 0.0 <= local_threshold <= remote_threshold <= 1.0:
        raise ReproError("need 0 <= local_threshold <= remote_threshold <= 1")
    classes: dict[str, PopularityClass] = {}
    for stat in profile.all_stats():
        if stat.requests == 0:
            if include_unaccessed:
                classes[stat.doc_id] = PopularityClass.LOCAL
            continue
        ratio = stat.remote_ratio
        if ratio > remote_threshold:
            classes[stat.doc_id] = PopularityClass.REMOTE
        elif ratio < local_threshold:
            classes[stat.doc_id] = PopularityClass.LOCAL
        else:
            classes[stat.doc_id] = PopularityClass.GLOBAL
    return classes


@dataclass(frozen=True)
class ClassCounts:
    """Sizes of the three popularity classes (paper: 99/365/510)."""

    remote: int
    global_: int
    local: int

    @property
    def total(self) -> int:
        return self.remote + self.global_ + self.local


def count_classes(classes: dict[str, PopularityClass]) -> ClassCounts:
    """Tally a classification into :class:`ClassCounts`."""
    remote = sum(1 for c in classes.values() if c is PopularityClass.REMOTE)
    global_ = sum(1 for c in classes.values() if c is PopularityClass.GLOBAL)
    local = sum(1 for c in classes.values() if c is PopularityClass.LOCAL)
    return ClassCounts(remote=remote, global_=global_, local=local)


def find_mutable_documents(
    events: list[UpdateEvent],
    observation_days: float,
    *,
    rate_threshold: float = 0.05,
) -> set[str]:
    """Identify the frequently-updated ("mutable") documents.

    The paper observed that frequent updates are confined to a very
    small subset; a server can detect that subset from modification
    dates.  A document is mutable when its observed update rate exceeds
    ``rate_threshold`` updates per day.

    Args:
        events: Update events over the observation window.
        observation_days: Length of the window in days (paper: 186).
        rate_threshold: Updates/day above which a document is mutable.

    Raises:
        ReproError: If the observation window is not positive.
    """
    if observation_days <= 0:
        raise ReproError("observation_days must be positive")
    counts: dict[str, int] = {}
    for event in events:
        counts[event.doc_id] = counts.get(event.doc_id, 0) + 1
    return {
        doc_id
        for doc_id, count in counts.items()
        if count / observation_days > rate_threshold
    }
