"""The 256 KB block analysis of Figure 1.

The paper groups a server's documents, sorted by decreasing remote
popularity, into 256 KB blocks, and reports (a) the request frequency of
each block and (b) the server bandwidth saved if the most popular blocks
are serviced at an earlier stage (a proxy at the edge of the
organisation).  :func:`analyze_blocks` reproduces both series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..trace.records import Trace
from .profile import PopularityProfile

#: The paper's block granularity.
DEFAULT_BLOCK_BYTES = 256 * 1024


@dataclass(frozen=True, slots=True)
class BlockStats:
    """One block of documents in decreasing-popularity order.

    Attributes:
        index: Block rank (0 = most popular block).
        n_documents: Documents packed into this block.
        bytes: Total document bytes in the block (≈ the block size).
        requests: Accesses landing on the block's documents.
        request_fraction: Block requests over all counted requests.
    """

    index: int
    n_documents: int
    bytes: int
    requests: int
    request_fraction: float


@dataclass(frozen=True)
class BlockAnalysis:
    """Result of the Figure-1 analysis.

    Attributes:
        blocks: Per-block statistics, most popular first.
        bandwidth_saved: ``bandwidth_saved[k]`` is the fraction of
            server (remote) bandwidth saved when the ``k+1`` most
            popular blocks are serviced at an earlier stage — the second
            curve of Figure 1.
        block_bytes: Block granularity used.
    """

    blocks: tuple[BlockStats, ...]
    bandwidth_saved: np.ndarray
    block_bytes: int

    @property
    def top_block_request_share(self) -> float:
        """Request share of the most popular block (paper: 69%)."""
        return self.blocks[0].request_fraction if self.blocks else 0.0

    def share_of_top_fraction(self, fraction: float) -> float:
        """Request share of the most popular ``fraction`` of blocks
        (paper: the top 10% of blocks carried 91%)."""
        if not self.blocks:
            return 0.0
        top_n = max(1, int(np.ceil(len(self.blocks) * fraction)))
        return sum(b.request_fraction for b in self.blocks[:top_n])


def analyze_blocks(
    source: Trace | PopularityProfile,
    *,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    remote_only: bool = True,
) -> BlockAnalysis:
    """Run the Figure-1 block analysis.

    Args:
        source: A trace, or a prebuilt popularity profile.
        block_bytes: Block granularity (paper: 256 KB).
        remote_only: Rank and count remote accesses only, as the paper
            does for its edge-proxy question.

    Returns:
        A :class:`BlockAnalysis` with per-block frequencies and the
        cumulative bandwidth-saved curve.

    Raises:
        ReproError: If ``block_bytes`` is not positive.
    """
    if block_bytes <= 0:
        raise ReproError("block_bytes must be positive")
    profile = (
        source
        if isinstance(source, PopularityProfile)
        else PopularityProfile.from_trace(source)
    )

    ranked = profile.ranked(remote_only=remote_only)
    counted = [
        (
            stat,
            stat.remote_requests if remote_only else stat.requests,
            stat.remote_bytes if remote_only else stat.bytes_served,
        )
        for stat in ranked
    ]
    counted = [(stat, hits, served) for stat, hits, served in counted if hits > 0]
    total_requests = sum(hits for _, hits, _ in counted)
    total_served = sum(served for _, __, served in counted)

    blocks: list[BlockStats] = []
    saved: list[float] = []
    current_docs = 0
    current_bytes = 0
    current_requests = 0
    current_served = 0
    cumulative_served = 0

    def flush() -> None:
        nonlocal current_docs, current_bytes, current_requests, current_served
        nonlocal cumulative_served
        if current_docs == 0:
            return
        cumulative_served += current_served
        blocks.append(
            BlockStats(
                index=len(blocks),
                n_documents=current_docs,
                bytes=current_bytes,
                requests=current_requests,
                request_fraction=(
                    current_requests / total_requests if total_requests else 0.0
                ),
            )
        )
        saved.append(cumulative_served / total_served if total_served else 0.0)
        current_docs = current_bytes = current_requests = current_served = 0

    for stat, hits, served in counted:
        if current_bytes and current_bytes + stat.size > block_bytes:
            flush()
        current_docs += 1
        current_bytes += stat.size
        current_requests += hits
        current_served += served
    flush()

    return BlockAnalysis(
        blocks=tuple(blocks),
        bandwidth_saved=np.array(saved),
        block_bytes=block_bytes,
    )
