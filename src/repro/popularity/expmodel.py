"""The exponential popularity model of section 2.2.

The paper approximates the coverage function of server ``i`` as

    H_i(b) = 1 − exp(−λ_i · b)

with density ``h_i(b) = λ_i · exp(−λ_i · b)``.  λ is estimated from the
server's log: for ``cs-www.bu.edu`` the paper reports
λ = 6.247 × 10⁻⁷ per byte.

:func:`fit_lambda` recovers λ from an empirical coverage curve by
regressing ``−ln(1 − H(b))`` on ``b`` through the origin (the exact
linearization of the model), weighting points equally and discarding
the near-saturated tail where ``1 − H`` underflows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError

#: λ the paper estimated from the cs-www.bu.edu logs (per byte).
PAPER_LAMBDA = 6.247e-7


@dataclass(frozen=True)
class ExponentialPopularityModel:
    """The fitted model ``H(b) = 1 − exp(−λ b)``.

    Attributes:
        lam: The rate constant λ (per byte), > 0.
    """

    lam: float

    def __post_init__(self) -> None:
        if not self.lam > 0:
            raise ReproError("lambda must be positive")

    def coverage(self, budget_bytes: float) -> float:
        """``H(b)``: request-hit probability with ``b`` bytes duplicated."""
        if budget_bytes < 0:
            raise ReproError("budget must be non-negative")
        return 1.0 - math.exp(-self.lam * budget_bytes)

    def density(self, budget_bytes: float) -> float:
        """``h(b) = λ exp(−λ b)``, the marginal value of one more byte."""
        if budget_bytes < 0:
            raise ReproError("budget must be non-negative")
        return self.lam * math.exp(-self.lam * budget_bytes)

    def bytes_for_coverage(self, coverage: float) -> float:
        """Invert the model: bytes needed to reach a coverage level.

        This is equation 10's building block:
        ``b = (1/λ) · ln(1 / (1 − coverage))``.
        """
        if not 0.0 <= coverage < 1.0:
            raise ReproError("coverage must be in [0, 1)")
        return math.log(1.0 / (1.0 - coverage)) / self.lam

    @property
    def effectiveness(self) -> float:
        """``1/λ`` — the paper's "measure of duplication effectiveness"."""
        return 1.0 / self.lam


def fit_lambda(
    cumulative_bytes: np.ndarray,
    coverage: np.ndarray,
    *,
    saturation: float = 0.995,
) -> float:
    """Fit λ of ``H(b) = 1 − exp(−λ b)`` to an empirical curve.

    Args:
        cumulative_bytes: Increasing byte budgets ``b``.
        coverage: Empirical ``H(b)`` at those budgets, in [0, 1].
        saturation: Points with coverage above this are discarded — near
            saturation ``−ln(1−H)`` explodes and would dominate the fit.

    Returns:
        The least-squares λ of the origin-constrained regression
        ``−ln(1 − H) = λ·b``.

    Raises:
        ReproError: On empty/mismatched inputs or no usable points.
    """
    b = np.asarray(cumulative_bytes, dtype=np.float64)
    h = np.asarray(coverage, dtype=np.float64)
    if b.shape != h.shape or b.size == 0:
        raise ReproError("curves must be same-shaped and non-empty")
    if np.any(b < 0) or np.any((h < 0) | (h > 1)):
        raise ReproError("bytes must be >= 0 and coverage in [0, 1]")

    keep = (h < saturation) & (b > 0)
    if not np.any(keep):
        # Everything saturated: estimate from the first point alone.
        keep = b > 0
        if not np.any(keep):
            raise ReproError("no usable points to fit lambda")
        first = int(np.argmax(keep))
        h_first = min(h[first], saturation)
        return float(-np.log(1.0 - h_first) / b[first])

    x = b[keep]
    y = -np.log1p(-np.clip(h[keep], 0.0, saturation))
    lam = float(np.dot(x, y) / np.dot(x, x))
    if lam <= 0:
        raise ReproError("fitted lambda is non-positive; curve is degenerate")
    return lam
