"""One front door for every way of running the reproduction.

``repro.api`` wraps the batch simulators, the live runtime and the
benchmark harness behind a single :class:`Session` object::

    from repro.api import Session
    from repro.obs import ObsConfig

    session = Session(seed=0, obs=ObsConfig.full())
    report = session.loadtest(smoke=True)
    print(report.format())
    print(report.trace_jsonl())

Every method — :meth:`Session.loadtest`, :meth:`Session.chaos`,
:meth:`Session.fleet`, :meth:`Session.deploy`, :meth:`Session.sweep`,
:meth:`Session.sensitivity`, :meth:`Session.sample`,
:meth:`Session.bench` — takes its inputs from one normalised
:class:`RunSpec` and returns one :class:`RunReport` shape, replacing
the five keyword dialects the legacy entry points grew over time.
Execution shape (process topology, origin shards, wire codec) lives in
one :class:`~repro.config.DeploySpec` threaded as ``RunSpec.deploy``.
"""

from ..config import DeploySpec
from .session import RunReport, RunSpec, Session

__all__ = ["DeploySpec", "RunReport", "RunSpec", "Session"]
