"""`RunSpec` / `Session` / `RunReport` — the one front door for runs.

Before this module existed, every way of running the reproduction had
its own shape: ``run_loadtest(workload, settings, verify_batch=)``,
``run_chaos(workload, chaos_settings)``, ``run_smoke(seed, tolerance=)``,
``sweep_thresholds(experiment, thresholds, workers=)``,
``workload_sensitivity(parameter, values, train_fraction=, workers=)``
— five keyword dialects for one underlying idea (seeded workload +
knobs + cost model → ratios).  :class:`RunSpec` normalises the shared
inputs once, :class:`Session` exposes one method per run kind, and
every method returns the same :class:`RunReport` (ratios + time-series
+ trace handle), with a single :class:`~repro.obs.ObsConfig` threaded
through all of them.

The legacy functions remain as thin :class:`DeprecationWarning` shims;
the ``H004`` lint rule keeps new internal code off them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..config import BASELINE, LOCAL_DEPLOY, BaselineConfig, DeploySpec
from ..core.experiment import Experiment, SweepPoint, evaluate_thresholds
from ..core.sensitivity import SensitivityPoint, sweep_workload
from ..deploy.service import (
    DeployFaultPlan,
    execute_deploy,
    execute_deploy_smoke,
)
from ..fleet.service import (
    FleetSettings,
    execute_fleet,
    execute_fleet_smoke,
    fleet_smoke_settings,
)
from ..obs import ObsConfig, RunObservations
from ..perf.bench import build_report, run_scale
from ..runtime.faults import FaultPlan
from ..runtime.service import (
    ChaosSettings,
    LiveSettings,
    chaos_smoke_settings,
    execute_chaos,
    execute_chaos_smoke,
    execute_loadtest,
    execute_smoke,
    smoke_workload,
)
from ..core.sampling import estimate_ratios
from ..speculation.metrics import SpeculationRatios
from ..speculation.policies import SpeculationPolicy
from ..trace.records import Trace
from ..trace.sampling import SamplingConfig
from ..workload.generator import GeneratorConfig, SyntheticTraceGenerator


@dataclass(frozen=True)
class RunSpec:
    """Normalised inputs shared by every kind of run.

    Attributes:
        seed: The one seed behind workload generation, transport
            jitter, fault scheduling and retry backoff.
        workload: Synthetic workload; None means the standard smoke
            workload at ``seed``.
        settings: Live-run knobs; None means :class:`LiveSettings`
            seeded with ``seed``.
        chaos: Chaos knobs; None derives them from ``settings`` (or the
            smoke chaos script when those are defaulted too).
        fleet: Fleet-run knobs; None means the standard fleet preset
            seeded with ``seed``.
        config: The paper's cost model.
        tolerance: Divergence tolerance for the smoke self-checks.
        workers: Process count for sweep sharding (None stays serial).
        deploy: Deployment shape (:class:`~repro.config.DeploySpec`):
            process topology, origin shards, replication, wire codec
            and bus path.  None means the local single-loop default —
            ``DeploySpec(processes=1)`` — so every run kind reads its
            execution shape from this one object.
        obs: Observability channels threaded through every run.
        sampling: Client-sampling knobs
            (:class:`~repro.trace.sampling.SamplingConfig`).  When set,
            loadtest and fleet runs replay only the hash-selected
            client fraction and attach Horvitz–Thompson ratio estimates
            with bootstrap intervals; None replays the full population.
    """

    seed: int = 0
    workload: GeneratorConfig | None = None
    settings: LiveSettings | None = None
    chaos: ChaosSettings | None = None
    fleet: FleetSettings | None = None
    config: BaselineConfig = BASELINE
    tolerance: float = 0.05
    workers: int | None = None
    deploy: DeploySpec | None = None
    obs: ObsConfig = field(default_factory=ObsConfig)
    sampling: SamplingConfig | None = None

    def resolved_workload(self) -> GeneratorConfig:
        """The workload to run: the given one, or the seeded smoke one."""
        return (
            self.workload
            if self.workload is not None
            else smoke_workload(self.seed)
        )

    def resolved_settings(self) -> LiveSettings:
        """The live knobs to run with, seeded consistently."""
        return (
            self.settings
            if self.settings is not None
            else LiveSettings(seed=self.seed)
        )

    def resolved_chaos(self) -> ChaosSettings:
        """The chaos knobs: explicit, derived from settings, or smoke."""
        if self.chaos is not None:
            return self.chaos
        if self.settings is not None:
            return ChaosSettings(live=self.settings)
        return chaos_smoke_settings(self.seed)

    def resolved_fleet(self) -> FleetSettings:
        """The fleet knobs: explicit, or the seeded fleet preset."""
        return (
            self.fleet
            if self.fleet is not None
            else fleet_smoke_settings(self.seed)
        )

    def resolved_deploy(self) -> DeploySpec:
        """The deployment shape: explicit, or the local single-loop one."""
        return self.deploy if self.deploy is not None else LOCAL_DEPLOY


@dataclass(frozen=True)
class RunReport:
    """The common result shape every :class:`Session` method returns.

    Attributes:
        kind: ``"loadtest"``, ``"chaos"``, ``"fleet"``, ``"deploy"``,
            ``"sweep"``, ``"sensitivity"``, ``"sample"`` or
            ``"bench"``.
        ratios: The paper's four ratios, when the run produces a single
            headline set (loadtest and chaos); None otherwise.
        observed: Traces, time-series and the provenance manifest, when
            the spec's :class:`~repro.obs.ObsConfig` enabled a channel.
        detail: The full underlying report (a
            :class:`~repro.runtime.service.LiveReport`,
            :class:`~repro.runtime.service.ChaosReport`, sweep point
            list, or bench report dict).
    """

    kind: str
    ratios: SpeculationRatios | None = None
    observed: RunObservations | None = None
    detail: Any = None

    @property
    def manifest(self) -> dict[str, Any]:
        """The run's provenance manifest; empty when unobserved."""
        return dict(self.observed.manifest) if self.observed else {}

    def trace_jsonl(self) -> str:
        """Deterministic JSONL trace of the speculative arm ('' if none)."""
        return self.observed.trace_jsonl() if self.observed else ""

    def ratio_curve(self) -> list[tuple[float, SpeculationRatios]]:
        """Per-window four-ratio curve (empty without time-series)."""
        return self.observed.ratio_curve() if self.observed else []

    def format(self) -> str:
        """One-line human rendering of the headline result."""
        if self.ratios is not None:
            return f"{self.kind}: {self.ratios.format()}"
        return f"{self.kind}: see detail"


class Session:
    """The front door: one object, one method per kind of run.

    Args:
        spec: The normalised inputs; defaults to :class:`RunSpec`.
        **overrides: Convenience field overrides applied on top of
            ``spec`` (``Session(seed=3, obs=ObsConfig.full())``).

    Every method threads the spec's seed, cost model and
    :class:`~repro.obs.ObsConfig` through the underlying engine and
    wraps the outcome in a :class:`RunReport`.
    """

    def __init__(self, spec: RunSpec | None = None, **overrides: Any):
        base = spec if spec is not None else RunSpec()
        self.spec = replace(base, **overrides) if overrides else base

    def loadtest(
        self, *, smoke: bool = False, verify_batch: bool | None = None
    ) -> RunReport:
        """Run the live baseline/speculative pair and report the ratios.

        Args:
            smoke: Run the standard smoke workload *and* assert live ↔
                batch convergence within the spec's tolerance (what
                ``repro loadtest --smoke`` and CI do).
            verify_batch: Attach batch-replay ratios for comparison;
                defaults to True when ``smoke`` is set.

        Raises:
            RuntimeProtocolError: In smoke mode, when live and batch
                ratios diverge beyond the spec's tolerance.
        """
        spec = self.spec
        if smoke:
            report = execute_smoke(
                spec.seed,
                tolerance=spec.tolerance,
                obs=spec.obs,
                deploy=spec.deploy,
            )
        else:
            report = execute_loadtest(
                spec.resolved_workload(),
                spec.resolved_settings(),
                config=spec.config,
                verify_batch=bool(verify_batch),
                obs=spec.obs,
                sampling=spec.sampling,
                deploy=spec.deploy,
            )
        return RunReport(
            kind="loadtest",
            ratios=report.ratios,
            observed=report.observed,
            detail=report,
        )

    def chaos(
        self, *, smoke: bool = False, fault_plan: FaultPlan | None = None
    ) -> RunReport:
        """Run the pair fault-free and again under faults; report ratios.

        Args:
            smoke: Run the standard smoke chaos script and assert the
                faulted ratios stay within the spec's tolerance of the
                clean ones (what ``repro chaos --smoke`` and CI do).
            fault_plan: Explicit fault plan in absolute virtual
                seconds; overrides the spec's fractional chaos knobs.

        Raises:
            RuntimeProtocolError: On conservation violations, or (in
                smoke mode) ratio divergence beyond the tolerance.
        """
        spec = self.spec
        if smoke:
            report = execute_chaos_smoke(
                spec.seed, tolerance=spec.tolerance, obs=spec.obs
            )
        else:
            report = execute_chaos(
                spec.resolved_workload(),
                spec.resolved_chaos(),
                config=spec.config,
                fault_plan=fault_plan,
                obs=spec.obs,
            )
        return RunReport(
            kind="chaos",
            ratios=report.faulted.ratios,
            observed=report.faulted.observed,
            detail=report,
        )

    def fleet(
        self, *, smoke: bool = False, fault_plan: FaultPlan | None = None
    ) -> RunReport:
        """Run the proxy fleet against the single tier; report the ratios.

        Args:
            smoke: Run the standard fleet smoke — the run twice, assert
                bit-identical counters, and require every ratio to beat
                the single-tier deployment (what ``repro fleet --smoke``
                and CI do).
            fault_plan: Scripted faults applied to the fleet arm only.

        Returns:
            A :class:`RunReport` whose ``ratios`` compare the fleet to
            the no-speculation demand baseline and whose ``detail`` is
            the full :class:`~repro.fleet.service.FleetReport`
            (including the single-tier ratios at equal total storage).

        Raises:
            RuntimeProtocolError: On conservation violations, or (in
                smoke mode) non-determinism or a ratio the fleet fails
                to improve.
        """
        spec = self.spec
        if smoke:
            report = execute_fleet_smoke(spec.seed, obs=spec.obs)
        else:
            report = execute_fleet(
                spec.resolved_workload(),
                spec.resolved_fleet(),
                config=spec.config,
                fault_plan=fault_plan,
                obs=spec.obs,
                sampling=spec.sampling,
                deploy=spec.deploy,
            )
        return RunReport(
            kind="fleet",
            ratios=report.ratios,
            observed=report.observed,
            detail=report,
        )

    def deploy(
        self,
        *,
        smoke: bool = False,
        fault_plan: DeployFaultPlan | None = None,
    ) -> RunReport:
        """Run the pair under the spec's deployment shape; report ratios.

        A local spec (the default) runs in-process exactly like
        :meth:`loadtest`; a distributed spec forks sharded origins and
        proxy hosts wired over TCP and an event bus, merges every
        process's exact counters, and gates the merged snapshots on
        cross-process conservation and anti-entropy digests.

        Args:
            smoke: Run the standard deploy smoke — a 2-shard/2-proxy-
                host deployment whose four ratios must match the
                single-loop reference bit for bit, then the same
                deployment under a scripted crash/partition plan held
                to the spec's tolerance (what ``repro deploy --smoke``
                and CI do).
            fault_plan: Scripted request-count faults
                (:class:`~repro.deploy.DeployFaultPlan`) for a
                distributed run.

        Returns:
            A :class:`RunReport` of kind ``"deploy"`` whose ``detail``
            is the full :class:`~repro.deploy.DeployReport` (or
            :class:`~repro.deploy.DeploySmokeReport` in smoke mode).

        Raises:
            RuntimeProtocolError: On conservation/anti-entropy failure
                or (in smoke mode) any ratio gate violation.
            SimulationError: On an unusable spec or worker startup
                failure.
        """
        spec = self.spec
        if smoke:
            report = execute_deploy_smoke(spec.seed, tolerance=spec.tolerance)
            return RunReport(
                kind="deploy", ratios=report.deploy.ratios, detail=report
            )
        result = execute_deploy(
            spec.resolved_workload(),
            spec.resolved_settings(),
            config=spec.config,
            spec=spec.resolved_deploy(),
            fault_plan=fault_plan,
        )
        return RunReport(kind="deploy", ratios=result.ratios, detail=result)

    def sweep(
        self,
        thresholds: list[float],
        *,
        trace: Trace | None = None,
        experiment: Experiment | None = None,
        policy_factory: Callable[[float], SpeculationPolicy] | None = None,
    ) -> RunReport:
        """The Figure-5 threshold sweep over the spec's workload.

        Args:
            thresholds: ``T_p`` values to sweep.
            trace: Replay this trace instead of generating the spec's
                workload.
            experiment: A fully prepared experiment (overrides both
                ``trace`` and the generated workload).
            policy_factory: Policy constructor per threshold.

        Returns:
            A :class:`RunReport` whose ``detail`` is the
            :class:`~repro.core.experiment.SweepPoint` list.
        """
        spec = self.spec
        if experiment is None:
            if trace is None:
                trace = SyntheticTraceGenerator(
                    spec.resolved_workload()
                ).generate()
            train_fraction = spec.resolved_settings().train_fraction
            train_days = trace.duration / 86_400.0 * train_fraction
            experiment = Experiment(
                trace, spec.config, train_days=train_days
            )
        points: list[SweepPoint] = evaluate_thresholds(
            experiment,
            thresholds,
            policy_factory=policy_factory,
            workers=spec.workers,
        )
        return RunReport(kind="sweep", detail=points)

    def sensitivity(
        self,
        parameter: str,
        values: list,
        *,
        policy: SpeculationPolicy | None = None,
    ) -> RunReport:
        """Sweep one workload-generator knob; ratios per swept value.

        Args:
            parameter: A :class:`~repro.workload.generator.GeneratorConfig`
                field name.
            values: Values to sweep.
            policy: Speculation policy (defaults to the cost model's
                threshold policy).

        Returns:
            A :class:`RunReport` whose ``detail`` is the
            :class:`~repro.core.sensitivity.SensitivityPoint` list.
        """
        spec = self.spec
        points: list[SensitivityPoint] = sweep_workload(
            parameter,
            values,
            base_config=spec.workload,
            policy=policy,
            sim_config=spec.config,
            train_fraction=spec.resolved_settings().train_fraction,
            workers=spec.workers,
        )
        return RunReport(kind="sensitivity", detail=points)

    def sample(
        self,
        *,
        trace: Trace | None = None,
        policy: SpeculationPolicy | None = None,
    ) -> RunReport:
        """Estimate the four ratios from a client-sampled batch replay.

        Uses the spec's :class:`~repro.trace.sampling.SamplingConfig`
        (or its defaults when the spec leaves ``sampling`` unset): the
        trace is split, the dependency model is estimated on the full
        history, and only the hash-selected client fraction of the
        serving half is replayed — the cheap preview of a full run.

        Args:
            trace: Estimate over this trace instead of generating the
                spec's workload.
            policy: Speculation policy (defaults to the cost model's
                threshold policy).

        Returns:
            A :class:`RunReport` of kind ``"sample"`` whose ``detail``
            is the :class:`~repro.trace.sampling.SampledRatioReport`.
        """
        spec = self.spec
        sampling = spec.sampling or SamplingConfig()
        if trace is None:
            trace = SyntheticTraceGenerator(spec.resolved_workload()).generate()
        train_fraction = spec.resolved_settings().train_fraction
        train_days = trace.duration / 86_400.0 * train_fraction
        report = estimate_ratios(
            trace,
            sampling,
            config=spec.config,
            train_days=train_days,
            policy=policy,
        )
        return RunReport(kind="sample", detail=report)

    def bench(
        self, *, smoke: bool = True, repeats: int | None = None
    ) -> RunReport:
        """Run the performance benchmark trajectory.

        Args:
            smoke: Use the small smoke scale (the full scale takes
                minutes).
            repeats: Timing repeats per section; None uses the scale's
                default.

        Returns:
            A :class:`RunReport` whose ``detail`` is the bench report
            dict (medians, speedups, machine fingerprint, git sha).
        """
        scale = "smoke" if smoke else "full"
        section = run_scale(scale, repeats=repeats)
        report = build_report({scale: section})
        return RunReport(kind="bench", detail=report)
