"""``python -m repro`` entry point.

Dispatches to the command-line interface; see ``repro --help``.
"""

import sys

from .cli import main

sys.exit(main())
